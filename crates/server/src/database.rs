//! The multimedia database of one multimedia (Hermes) server.
//!
//! "The internal structural presentation of a hypermedia object is stored in
//! a multimedia server, while the inline data that compose the document may
//! reside on their own media servers attached to the multimedia server"
//! (§2). Documents are stored as markup text plus the lowered scenario;
//! topics group documents into the list presented after connection.

use hermes_core::{DocumentId, MediaKind, Scenario, ServerId, ServiceError, ServiceResult};
use hermes_hml::scenario_from_markup;
use hermes_media::MediaStore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A topic entry in the service's contents list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopicEntry {
    /// The document presenting the topic/lesson.
    pub document: DocumentId,
    /// Display title.
    pub title: String,
    /// Short description shown in the topic list.
    pub description: String,
}

/// One stored hypermedia document.
#[derive(Debug, Clone)]
pub struct StoredDocument {
    /// The markup source text ("the representation of a document by the
    /// markup language is actually a text file").
    pub markup: String,
    /// The lowered presentation scenario.
    pub scenario: Scenario,
}

/// A multimedia server's database: documents, topics and the media stores of
/// its attached media servers (one per media kind).
#[derive(Debug)]
pub struct MultimediaDb {
    /// This server's id (relative SOURCE keys resolve against it).
    pub server: ServerId,
    /// Documents are shared out as `Arc` handles: the delivery path holds a
    /// document across admission + media activation without deep-copying the
    /// markup and scenario per request.
    documents: BTreeMap<DocumentId, Arc<StoredDocument>>,
    topics: Vec<TopicEntry>,
    /// Media stores keyed by kind — "for every media object (e.g., text,
    /// image, audio, video, etc) a media server is associated" (§6.1).
    stores: BTreeMap<MediaKind, MediaStore>,
}

impl MultimediaDb {
    /// An empty database for a server.
    pub fn new(server: ServerId) -> Self {
        let mut stores = BTreeMap::new();
        for k in MediaKind::ALL {
            stores.insert(k, MediaStore::new());
        }
        MultimediaDb {
            server,
            documents: BTreeMap::new(),
            topics: Vec::new(),
            stores,
        }
    }

    /// Ingest a document from markup text; lowers it to a scenario, stores
    /// both and registers the topic entry.
    pub fn add_document(
        &mut self,
        id: DocumentId,
        markup: impl Into<String>,
        description: impl Into<String>,
    ) -> ServiceResult<&StoredDocument> {
        let markup = markup.into();
        let scenario = scenario_from_markup(&markup, id, self.server)
            .map_err(|e| ServiceError::ParseError(e.to_string()))?;
        if !scenario.is_well_formed() {
            return Err(ServiceError::MalformedScenario(format!(
                "{:?}",
                scenario.validate()
            )));
        }
        self.topics.push(TopicEntry {
            document: id,
            title: scenario.title.clone(),
            description: description.into(),
        });
        self.documents
            .insert(id, Arc::new(StoredDocument { markup, scenario }));
        Ok(&**self.documents.get(&id).unwrap())
    }

    /// Retrieve a document as a cheap shared handle.
    pub fn document(&self, id: DocumentId) -> ServiceResult<&Arc<StoredDocument>> {
        self.documents
            .get(&id)
            .ok_or(ServiceError::DocumentNotFound(id))
    }

    /// Does the server hold this document?
    pub fn has_document(&self, id: DocumentId) -> bool {
        self.documents.contains_key(&id)
    }

    /// The topic list (the service contents presented after connection).
    pub fn topics(&self) -> &[TopicEntry] {
        &self.topics
    }

    /// The media store for a kind (the attached media server's storage).
    pub fn store(&self, kind: MediaKind) -> &MediaStore {
        &self.stores[&kind]
    }

    /// Mutable media store access (content ingestion).
    pub fn store_mut(&mut self, kind: MediaKind) -> &mut MediaStore {
        self.stores.get_mut(&kind).unwrap()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }
    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Scan all documents for a search token (case-insensitive), per §6.2.2:
    /// "all the text documents stored in that server are scanned ... only
    /// the lessons which contain the item of interest and the server
    /// location are transmitted". Returns matching (document, title) pairs.
    pub fn search(&self, token: &str) -> Vec<(DocumentId, String)> {
        let needle = token.to_lowercase();
        if needle.is_empty() {
            return Vec::new();
        }
        self.documents
            .iter()
            .filter(|(_, d)| d.markup.to_lowercase().contains(&needle))
            .map(|(id, d)| (*id, d.scenario.title.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{Encoding, MediaDuration};

    fn db() -> MultimediaDb {
        let mut db = MultimediaDb::new(ServerId::new(0));
        db.add_document(
            DocumentId::new(1),
            "<TITLE> Rivers of Europe </TITLE> <TEXT> The Danube flows east </TEXT>",
            "geography",
        )
        .unwrap();
        db.add_document(
            DocumentId::new(2),
            "<TITLE> Alps </TITLE> <TEXT> Mountain geography lesson </TEXT>
             <AU> SOURCE=narration.pcm STARTIME=0s DURATION=10s ID=1 </AU>",
            "geography",
        )
        .unwrap();
        db.store_mut(MediaKind::Audio).add(
            "narration.pcm",
            Encoding::Pcm,
            MediaDuration::from_secs(10),
            7,
        );
        db
    }

    #[test]
    fn ingest_and_retrieve() {
        let db = db();
        assert_eq!(db.len(), 2);
        let d = db.document(DocumentId::new(1)).unwrap();
        assert_eq!(d.scenario.title, "Rivers of Europe");
        assert!(db.has_document(DocumentId::new(2)));
        assert!(matches!(
            db.document(DocumentId::new(9)),
            Err(ServiceError::DocumentNotFound(_))
        ));
    }

    #[test]
    fn topics_registered_in_order() {
        let db = db();
        let t = db.topics();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].title, "Rivers of Europe");
        assert_eq!(t[1].document, DocumentId::new(2));
        assert_eq!(t[0].description, "geography");
    }

    #[test]
    fn malformed_markup_rejected() {
        let mut db = MultimediaDb::new(ServerId::new(0));
        let e = db
            .add_document(DocumentId::new(1), "<BLINK>", "x")
            .unwrap_err();
        assert!(matches!(e, ServiceError::ParseError(_)));
        assert!(db.is_empty());
        assert!(db.topics().is_empty());
    }

    #[test]
    fn duplicate_component_ids_rejected_as_malformed() {
        let mut db = MultimediaDb::new(ServerId::new(0));
        let e = db
            .add_document(
                DocumentId::new(1),
                "<TITLE>t</TITLE> <IMG> SOURCE=a ID=1 </IMG> <IMG> SOURCE=b ID=1 </IMG>",
                "x",
            )
            .unwrap_err();
        assert!(matches!(e, ServiceError::ParseError(_)), "{e:?}");
    }

    #[test]
    fn search_scans_markup_case_insensitively() {
        let db = db();
        let hits = db.search("danube");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, DocumentId::new(1));
        // Token present in both documents.
        assert_eq!(db.search("GEOGRAPHY").len(), 1); // only doc 2's body has it
        assert_eq!(db.search("lesson").len(), 1);
        assert!(db.search("volcano").is_empty());
        assert!(db.search("").is_empty());
    }

    #[test]
    fn media_store_per_kind() {
        let db = db();
        assert_eq!(db.store(MediaKind::Audio).len(), 1);
        assert_eq!(db.store(MediaKind::Video).len(), 0);
        assert!(db.store(MediaKind::Audio).get("narration.pcm").is_some());
    }
}

//! Spans: named sim-time intervals with parent/child links, modeling the
//! paper's session lifecycle (admission → placement → prefill → playout →
//! recovery → degradation/upgrade → teardown) so a session's full timeline
//! can be reconstructed from one run.

use crate::event::Labels;
use hermes_core::MediaTime;
use std::collections::BTreeMap;

/// Handle to a span inside a [`SpanStore`]. `SpanId::NONE` is the null
/// handle: returned when tracing is disabled and accepted (as a no-op
/// parent / end target) everywhere, so call sites never need to branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The null span handle.
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// True for the null handle.
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }
}

/// One lifecycle interval.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// This span's handle.
    pub id: SpanId,
    /// Parent span (`SpanId::NONE` for roots).
    pub parent: SpanId,
    /// Static span name.
    pub name: &'static str,
    /// Raw id of the node that opened the span.
    pub node: u64,
    /// Label set (the session id here drives per-session timelines).
    pub labels: Labels,
    /// Open time.
    pub start: MediaTime,
    /// Close time (`None` while still open).
    pub end: Option<MediaTime>,
}

/// Append-only span storage plus the per-session root index.
#[derive(Debug, Clone, Default)]
pub struct SpanStore {
    spans: Vec<Span>,
    session_roots: BTreeMap<u64, SpanId>,
}

impl SpanStore {
    /// Open a span. `parent` may be `SpanId::NONE` for a root.
    pub fn start(
        &mut self,
        at: MediaTime,
        node: u64,
        name: &'static str,
        labels: Labels,
        parent: SpanId,
    ) -> SpanId {
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(Span {
            id,
            parent,
            name,
            node,
            labels,
            start: at,
            end: None,
        });
        id
    }

    /// Close a span (idempotent; the null handle and unknown ids are
    /// ignored, and the first close wins).
    pub fn end(&mut self, id: SpanId, at: MediaTime) {
        if let Some(s) = self.get_mut(id) {
            if s.end.is_none() {
                s.end = Some(at);
            }
        }
    }

    /// The root span of `session`, created on first use: every actor that
    /// touches a session parents its lifecycle spans under the same root
    /// regardless of which side (client or server) reached it first.
    pub fn session_root(&mut self, session: u64, node: u64, at: MediaTime) -> SpanId {
        if let Some(&id) = self.session_roots.get(&session) {
            return id;
        }
        let id = self.start(at, node, "session", Labels::session(session), SpanId::NONE);
        self.session_roots.insert(session, id);
        id
    }

    /// Look up a span.
    pub fn get(&self, id: SpanId) -> Option<&Span> {
        if id.is_none() {
            return None;
        }
        self.spans.get(id.0 as usize)
    }

    fn get_mut(&mut self, id: SpanId) -> Option<&mut Span> {
        if id.is_none() {
            return None;
        }
        self.spans.get_mut(id.0 as usize)
    }

    /// All spans in creation order.
    pub fn all(&self) -> &[Span] {
        &self.spans
    }

    /// Spans labelled with `session`, in creation (= start-time) order.
    pub fn for_session(&self, session: u64) -> Vec<&Span> {
        self.spans
            .iter()
            .filter(|s| s.labels.session == Some(session))
            .collect()
    }

    /// Nesting depth of a span (roots are 0).
    pub fn depth(&self, id: SpanId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(s) = self.get(cur) {
            if s.parent.is_none() {
                break;
            }
            d += 1;
            cur = s.parent;
        }
        d
    }

    /// Number of spans stored.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_links_and_depth() {
        let mut st = SpanStore::default();
        let root = st.session_root(7, 1, MediaTime::from_millis(10));
        let child = st.start(
            MediaTime::from_millis(20),
            1,
            "prefill",
            Labels::session(7),
            root,
        );
        let grand = st.start(
            MediaTime::from_millis(25),
            1,
            "fetch",
            Labels::session(7),
            child,
        );
        assert_eq!(st.depth(root), 0);
        assert_eq!(st.depth(child), 1);
        assert_eq!(st.depth(grand), 2);
        st.end(child, MediaTime::from_millis(40));
        assert_eq!(st.get(child).unwrap().end, Some(MediaTime::from_millis(40)));
        // First close wins.
        st.end(child, MediaTime::from_millis(99));
        assert_eq!(st.get(child).unwrap().end, Some(MediaTime::from_millis(40)));
        assert_eq!(st.for_session(7).len(), 3);
    }

    #[test]
    fn session_root_is_get_or_create() {
        let mut st = SpanStore::default();
        let a = st.session_root(1, 10, MediaTime::from_millis(1));
        let b = st.session_root(1, 99, MediaTime::from_millis(50));
        assert_eq!(a, b);
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn null_handle_is_inert() {
        let mut st = SpanStore::default();
        st.end(SpanId::NONE, MediaTime::from_millis(1));
        assert!(st.get(SpanId::NONE).is_none());
        assert!(st.is_empty());
    }
}

#![allow(clippy::field_reassign_with_default)]
//! EXP-SCALE — claim: stream sharing makes server cost sublinear in the
//! audience size.
//!
//! An open-loop Poisson stream of session requests over a Zipf(s, N)
//! lesson catalog drives one server at rates that reach hundreds of
//! concurrent sessions. The sweep crosses arrival rate × Zipf skew ×
//! sharing policy (off / batching / batching+patching) and reports server
//! trunk egress, SAN-link utilization, startup latency, admission
//! rejections and the playout-gap rate. Without sharing, egress grows
//! linearly with the audience; batching merges same-window requests for a
//! title onto one multicast flow, and patching additionally absorbs late
//! arrivals, so egress flattens as skew concentrates requests on hot
//! titles.
//!
//! `--smoke` runs a reduced grid (two low rates, two seeds) for the CI
//! determinism gate; `--seed`/`--out` as in every experiment binary.

use hermes_bench::{session_arrivals, ExpOpts, Table, ZipfCatalog};
use hermes_core::{MediaDuration, MediaTime, NodeId, ServerId};
use hermes_server::{SharingMode, SharingPolicy};
use hermes_service::{
    install_course, ClientConfig, LessonShape, ServerConfig, ServiceMsg, ServiceWorld, WorldBuilder,
};
use hermes_simnet::{LinkSpec, Sim, SimRng};

/// Sweep dimensions (full vs `--smoke`).
struct Grid {
    rates: Vec<f64>,
    skews: Vec<f64>,
    seeds: Vec<u64>,
    arrival_horizon: MediaTime,
    pool: usize,
    catalog: usize,
    clip_secs: i64,
}

impl Grid {
    fn new(opts: &ExpOpts) -> Self {
        if opts.smoke {
            Grid {
                rates: vec![3.0, 6.0],
                skews: vec![1.2],
                seeds: opts.seeds(&[1, 2]),
                arrival_horizon: MediaTime::from_secs(20),
                pool: 90,
                catalog: 8,
                clip_secs: 8,
            }
        } else {
            Grid {
                rates: vec![12.0, 50.0],
                skews: vec![0.6, 1.2],
                seeds: opts.seeds(&[1]),
                arrival_horizon: MediaTime::from_secs(45),
                pool: 800,
                catalog: 16,
                clip_secs: 10,
            }
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Point {
    arrivals: usize,
    completed: usize,
    rejected: usize,
    unserved: usize,
    peak_concurrent: usize,
    egress_bytes: u64,
    san_util: f64,
    mean_startup_ms: f64,
    gap_per_kframe: f64,
    groups: u64,
    mcast_frames: u64,
}

fn mode_label(mode: SharingMode) -> &'static str {
    match mode {
        SharingMode::Off => "off",
        SharingMode::Batching => "batch",
        SharingMode::BatchingPatching => "batch+patch",
    }
}

fn run_point(seed: u64, rate: f64, skew: f64, mode: SharingMode, g: &Grid) -> Point {
    let mut b = WorldBuilder::new(seed);
    let mut cfg = ServerConfig::default();
    cfg.sharing = SharingPolicy {
        mode,
        window: MediaDuration::from_millis(2_000),
        max_patch: MediaDuration::from_secs(4),
        hot_rank: 4,
    };
    let srv = b.add_server(ServerId::new(0), LinkSpec::lan(2_000_000_000), cfg);
    let nodes: Vec<NodeId> = (0..g.pool)
        .map(|_| b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default()))
        .collect();
    let media: Vec<NodeId> = (0..4)
        .map(|_| b.add_media_node(LinkSpec::san(1_000_000_000)))
        .collect();
    let mut sim: Sim<ServiceMsg, ServiceWorld> = b.build(seed);
    let mut rng = SimRng::seed_from_u64(seed ^ 0xC0FFEE);
    // Clip-at-zero lessons: the continuous flow starts the moment a group
    // opens, so sharing covers the whole lesson and patches are meaningful.
    let lessons = install_course(
        sim.app_mut().server_mut(srv),
        "Scale",
        &["load"],
        1,
        g.catalog,
        LessonShape {
            images: 0,
            image_secs: 0,
            narrated_clip_secs: Some(g.clip_secs),
            closing_audio_secs: None,
        },
        &mut rng,
    );
    sim.app_mut().distribute_media();

    // The same seed gives the same schedule for every sharing mode, so
    // mode columns are directly comparable.
    let catalog = ZipfCatalog::new(g.catalog, skew);
    let arrivals = session_arrivals(seed, rate, g.arrival_horizon, &catalog);

    // Open-loop driver over a fixed client pool: each arrival claims an
    // idle client (one whose previous session completed or was rejected),
    // detaches it and reconnects it to the newly requested lesson.
    // `slots[i]` holds the (completed, errors) counts at assignment; a
    // later count means the session resolved and the client is free again.
    let mut slots: Vec<Option<(usize, usize)>> = vec![None; g.pool];
    let mut p = Point {
        arrivals: arrivals.len(),
        ..Point::default()
    };
    let mut glitches = 0u64;
    let mut frames = 0u64;
    let harvest = |c: &hermes_service::ClientActor, glitches: &mut u64, frames: &mut u64| {
        if let Some(pres) = &c.presentation {
            let s = pres.engine.total_stats();
            *glitches += s.glitches;
            *frames += s.frames_played;
        }
    };
    for a in &arrivals {
        sim.run_until(a.at);
        let mut active = 0usize;
        let mut free = None;
        for i in 0..g.pool {
            match slots[i] {
                None => {
                    if free.is_none() {
                        free = Some(i);
                    }
                }
                Some((c0, e0)) => {
                    let c = sim.app().client(nodes[i]);
                    if c.completed.len() > c0 || c.errors.len() > e0 {
                        harvest(c, &mut glitches, &mut frames);
                        slots[i] = None;
                        if free.is_none() {
                            free = Some(i);
                        }
                    } else {
                        active += 1;
                    }
                }
            }
        }
        let Some(i) = free else {
            p.unserved += 1;
            p.peak_concurrent = p.peak_concurrent.max(active);
            continue;
        };
        let node = nodes[i];
        let doc = lessons[a.rank];
        let c = sim.app().client(node);
        slots[i] = Some((c.completed.len(), c.errors.len()));
        sim.with_api(|w, api| {
            let cl = w.client_mut(node);
            cl.disconnect(api);
            cl.connect(api, srv, Some(doc));
        });
        p.peak_concurrent = p.peak_concurrent.max(active + 1);
    }
    // Drain: let every in-flight session play out.
    let end = g.arrival_horizon + MediaDuration::from_secs(g.clip_secs + 15);
    sim.run_until(end);
    for (i, s) in slots.iter().enumerate() {
        if s.is_some() {
            harvest(sim.app().client(nodes[i]), &mut glitches, &mut frames);
        }
    }

    let mut startup_us = 0f64;
    for &node in &nodes {
        let c = sim.app().client(node);
        p.completed += c.completed.len();
        p.rejected += c.errors.len();
        for (_, startup, _) in &c.completed {
            startup_us += startup.as_micros() as f64;
        }
    }
    if p.completed > 0 {
        p.mean_startup_ms = startup_us / p.completed as f64 / 1_000.0;
    }
    if frames > 0 {
        p.gap_per_kframe = glitches as f64 * 1_000.0 / frames as f64;
    }
    p.egress_bytes = sim
        .net()
        .link(srv, NodeId::new(0))
        .expect("server trunk")
        .stats
        .bytes_sent;
    let secs = (end - MediaTime::ZERO).as_micros() as f64 / 1e6;
    p.san_util = media
        .iter()
        .map(|&m| {
            let l = sim.net().link(m, NodeId::new(0)).expect("SAN link");
            l.stats.bytes_sent as f64 * 8.0 / (l.spec.bandwidth_bps as f64 * secs)
        })
        .sum::<f64>()
        / media.len() as f64;
    let stats = sim.app().server(srv).sharing_stats;
    p.groups = stats.groups_opened;
    p.mcast_frames = stats.mcast_frames;
    p
}

fn main() {
    let opts = ExpOpts::parse();
    let g = Grid::new(&opts);
    let mut out = opts.sink();
    out.line(&format!(
        "workload: open-loop Poisson arrivals over a Zipf catalog of {} clip lessons\n\
         ({} s each, clip at scenario zero), client pool {}, 4-node media tier,\n\
         2 Gbps server trunk; arrivals for {} s plus drain; batching window 2 s,\n\
         patch bound 4 s, hot rank 4",
        g.catalog,
        g.clip_secs,
        g.pool,
        (g.arrival_horizon - MediaTime::ZERO).as_micros() / 1_000_000,
    ));
    let modes = [
        SharingMode::Off,
        SharingMode::Batching,
        SharingMode::BatchingPatching,
    ];
    let mut t = Table::new(vec![
        "rate/s",
        "zipf s",
        "policy",
        "seed",
        "arrivals",
        "peak",
        "done",
        "rej",
        "unserved",
        "egress MB",
        "SAN util",
        "startup ms",
        "gaps/kframe",
        "groups",
        "mcast",
    ]);
    // (rate, skew, mode) → egress summed over seeds, gap rate worst-case.
    let mut egress = std::collections::BTreeMap::new();
    let mut gaps = std::collections::BTreeMap::new();
    for &rate in &g.rates {
        for &skew in &g.skews {
            for &mode in &modes {
                for &seed in &g.seeds {
                    let p = run_point(seed, rate, skew, mode, &g);
                    t.row(vec![
                        format!("{rate:.0}"),
                        format!("{skew:.1}"),
                        mode_label(mode).to_string(),
                        seed.to_string(),
                        p.arrivals.to_string(),
                        p.peak_concurrent.to_string(),
                        p.completed.to_string(),
                        p.rejected.to_string(),
                        p.unserved.to_string(),
                        format!("{:.1}", p.egress_bytes as f64 / 1e6),
                        format!("{:.3}", p.san_util),
                        format!("{:.0}", p.mean_startup_ms),
                        format!("{:.2}", p.gap_per_kframe),
                        p.groups.to_string(),
                        p.mcast_frames.to_string(),
                    ]);
                    let key = (rate.to_bits(), skew.to_bits(), mode_label(mode));
                    *egress.entry(key).or_insert(0u64) += p.egress_bytes;
                    let worst: &mut f64 = gaps.entry(key).or_insert(0f64);
                    *worst = worst.max(p.gap_per_kframe);
                }
            }
        }
    }
    out.table(
        "EXP-SCALE — egress & quality vs arrival rate × Zipf skew × sharing policy",
        &t,
    );
    out.line(
        "expected shape: with sharing off, egress grows linearly with the arrival\n\
         rate; batching flattens it on skewed catalogs (hot titles batch well) and\n\
         patching flattens it further by absorbing late joiners; startup and the\n\
         gap rate stay level because members ride the shared flow from a buffer.",
    );

    // The headline claim: at the highest rate on the skewed catalog,
    // batching+patching cuts server egress ≥ 40% versus sharing-off without
    // worsening the playout-gap rate.
    let top_rate = g.rates.iter().cloned().fold(f64::MIN, f64::max);
    for &skew in g.skews.iter().filter(|&&s| s >= 1.0) {
        let k = |m: &'static str| (top_rate.to_bits(), skew.to_bits(), m);
        let off = egress[&k("off")] as f64;
        let patched = egress[&k("batch+patch")] as f64;
        let cut = 1.0 - patched / off;
        out.line(&format!(
            "claim @ rate {top_rate:.0}/s, s={skew:.1}: egress cut {:.0}% \
             (off {:.1} MB → batch+patch {:.1} MB), gap rate {:.2} → {:.2} per kframe",
            cut * 100.0,
            off / 1e6,
            patched / 1e6,
            gaps[&k("off")],
            gaps[&k("batch+patch")],
        ));
        if opts.smoke {
            assert!(
                patched < off,
                "sharing failed to reduce egress: {patched} vs {off}"
            );
        } else {
            assert!(
                cut >= 0.40,
                "egress cut below 40%: off {off} vs batch+patch {patched}"
            );
        }
        assert!(
            gaps[&k("batch+patch")] <= gaps[&k("off")] + 0.5,
            "sharing worsened the gap rate: {} vs {}",
            gaps[&k("batch+patch")],
            gaps[&k("off")],
        );
    }
}

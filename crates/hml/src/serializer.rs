//! Serializer: render a document AST back to markup text.
//!
//! The output re-parses to an equal AST (round-trip property, checked by
//! proptest in `tests/roundtrip.rs`).

use crate::ast::*;
use crate::values::SourceRef;
use hermes_core::{HeadingLevel, LinkKind, MediaDuration, MediaTime, Region, TextStyle};
use std::fmt::Write;

fn fmt_time(t: MediaTime) -> String {
    fmt_dur(t - MediaTime::ZERO)
}

fn fmt_dur(d: MediaDuration) -> String {
    let us = d.as_micros();
    if us % 1_000_000 == 0 {
        format!("{}s", us / 1_000_000)
    } else if us % 1_000 == 0 {
        format!("{}ms", us / 1_000)
    } else {
        format!("{us}us")
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_source(s: &SourceRef) -> String {
    match s {
        SourceRef::Absolute(m) => format!("srv{}:{}", m.server.raw(), m.object),
        SourceRef::Relative(o) => o.clone(),
    }
}

fn push_timing(out: &mut String, t: &Timing) {
    if let Some(s) = t.start {
        write!(out, " STARTIME={}", fmt_time(s)).unwrap();
    }
    if let Some(d) = t.duration {
        write!(out, " DURATION={}", fmt_dur(d)).unwrap();
    }
}

fn push_region(out: &mut String, r: &Option<Region>) {
    if let Some(r) = r {
        write!(out, " WHERE={},{}", r.x, r.y).unwrap();
        if r.width > 0 {
            write!(out, " WIDTH={}", r.width).unwrap();
        }
        if r.height > 0 {
            write!(out, " HEIGHT={}", r.height).unwrap();
        }
    }
}

fn push_note(out: &mut String, n: &Option<String>) {
    if let Some(n) = n {
        write!(out, " NOTE={}", quote(n)).unwrap();
    }
}

fn push_encoding(out: &mut String, e: &Option<String>) {
    if let Some(e) = e {
        write!(out, " ENCODING={e}").unwrap();
    }
}

fn serialize_runs(out: &mut String, runs: &[AstTextRun]) {
    // Emit runs with minimal style spans: open/close tags whenever the style
    // changes between consecutive runs.
    let mut cur = TextStyle::PLAIN;
    let close_all = |out: &mut String, s: TextStyle| {
        // close in reverse nesting order U, I, B
        if s.underline {
            out.push_str(" </U>");
        }
        if s.italic {
            out.push_str(" </I>");
        }
        if s.bold {
            out.push_str(" </B>");
        }
    };
    for r in runs {
        if r.style != cur {
            close_all(out, cur);
            if r.style.bold {
                out.push_str(" <B>");
            }
            if r.style.italic {
                out.push_str(" <I>");
            }
            if r.style.underline {
                out.push_str(" <U>");
            }
            cur = r.style;
        }
        out.push(' ');
        out.push_str(&r.text);
    }
    close_all(out, cur);
}

/// Serialize an AST to markup text.
pub fn serialize(doc: &HmlDocument) -> String {
    let mut out = String::new();
    writeln!(out, "<TITLE> {} </TITLE>", doc.title).unwrap();
    for s in &doc.sentences {
        for h in &s.headings {
            let tag = match h.level {
                HeadingLevel::H1 => "H1",
                HeadingLevel::H2 => "H2",
                HeadingLevel::H3 => "H3",
            };
            writeln!(out, "<{tag}> {} </{tag}>", h.text).unwrap();
        }
        for item in &s.body {
            match item {
                BodyItem::Paragraph => out.push_str("<PAR>\n"),
                BodyItem::Text(t) => {
                    out.push_str("<TEXT>");
                    push_timing(&mut out, &t.timing);
                    if let Some(id) = t.id {
                        write!(out, " ID={id}").unwrap();
                    }
                    serialize_runs(&mut out, &t.runs);
                    out.push_str(" </TEXT>\n");
                }
                BodyItem::Image(img) => {
                    out.push_str("<IMG>");
                    write!(out, " SOURCE={}", fmt_source(&img.source)).unwrap();
                    push_timing(&mut out, &img.timing);
                    push_region(&mut out, &img.region);
                    if let Some(id) = img.id {
                        write!(out, " ID={id}").unwrap();
                    }
                    push_encoding(&mut out, &img.encoding);
                    push_note(&mut out, &img.note);
                    out.push_str(" </IMG>\n");
                }
                BodyItem::Audio(au) => {
                    out.push_str("<AU>");
                    write!(out, " SOURCE={}", fmt_source(&au.source)).unwrap();
                    push_timing(&mut out, &au.timing);
                    if let Some(id) = au.id {
                        write!(out, " ID={id}").unwrap();
                    }
                    push_encoding(&mut out, &au.encoding);
                    if let Some(sync) = &au.sync {
                        write!(out, " SYNC={sync}").unwrap();
                    }
                    push_note(&mut out, &au.note);
                    out.push_str(" </AU>\n");
                }
                BodyItem::Video(vi) => {
                    out.push_str("<VI>");
                    write!(out, " SOURCE={}", fmt_source(&vi.source)).unwrap();
                    push_timing(&mut out, &vi.timing);
                    push_region(&mut out, &vi.region);
                    if let Some(id) = vi.id {
                        write!(out, " ID={id}").unwrap();
                    }
                    push_encoding(&mut out, &vi.encoding);
                    if let Some(sync) = &vi.sync {
                        write!(out, " SYNC={sync}").unwrap();
                    }
                    push_note(&mut out, &vi.note);
                    out.push_str(" </VI>\n");
                }
                BodyItem::AudioVideo(av) => {
                    out.push_str("<AU_VI>");
                    if let Some(s) = av.audio.timing.start {
                        write!(out, " STARTIME={}", fmt_time(s)).unwrap();
                    }
                    if let Some(d) = av.audio.timing.duration {
                        write!(out, " DURATION={}", fmt_dur(d)).unwrap();
                    }
                    write!(out, " SOURCE={}", fmt_source(&av.audio.source)).unwrap();
                    write!(out, " SOURCE={}", fmt_source(&av.video.source)).unwrap();
                    if let Some(id) = av.audio.id {
                        write!(out, " ID={id}").unwrap();
                    }
                    if let Some(id) = av.video.id {
                        write!(out, " ID={id}").unwrap();
                    }
                    if let Some(e) = &av.audio.encoding {
                        write!(out, " ENCODING={e}").unwrap();
                    }
                    if let Some(e) = &av.video.encoding {
                        write!(out, " ENCODING={e}").unwrap();
                    }
                    push_note(&mut out, &av.note);
                    out.push_str(" </AU_VI>\n");
                }
                BodyItem::Link(l) => {
                    out.push_str("<HLINK>");
                    if let Some(at) = l.at {
                        write!(out, " AT={}", fmt_time(at)).unwrap();
                    }
                    write!(out, " TO=doc{}", l.to.raw()).unwrap();
                    if let Some(h) = l.host {
                        write!(out, " HOST=srv{}", h.raw()).unwrap();
                    }
                    let kind = match l.kind {
                        LinkKind::Sequential => "SEQ",
                        LinkKind::Explorational => "EXP",
                    };
                    write!(out, " KIND={kind}").unwrap();
                    push_note(&mut out, &l.note);
                    out.push_str(" </HLINK>\n");
                }
            }
        }
        if s.separator {
            out.push_str("<SEP>\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let doc1 = parse(src).expect("first parse");
        let text = serialize(&doc1);
        let doc2 = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        assert_eq!(doc1, doc2, "round trip mismatch\n---\n{text}");
    }

    #[test]
    fn round_trip_simple() {
        round_trip("<TITLE> t </TITLE> <H1> h </H1> <TEXT> hello world </TEXT> <PAR> <SEP>");
    }

    #[test]
    fn round_trip_media() {
        round_trip(
            r#"<TITLE>t</TITLE>
<IMG> SOURCE=srv0:a.jpg STARTIME=0s DURATION=5s WHERE=10,20 WIDTH=320 HEIGHT=200 ID=1 NOTE="n" </IMG>
<AU> SOURCE=a.pcm STARTIME=1500ms DURATION=2s ID=2 ENCODING=pcm </AU>
<VI> SOURCE=v.mpg STARTIME=2s ID=3 </VI>
<AU_VI> STARTIME=6s DURATION=8s SOURCE=a SOURCE=v ID=4 ID=5 </AU_VI>
<HLINK> AT=19s TO=doc2 KIND=SEQ NOTE="next" </HLINK>"#,
        );
    }

    #[test]
    fn round_trip_styles() {
        round_trip("<TITLE>t</TITLE> <TEXT> a <B> b <I> c </I> </B> <U> d </U> </TEXT>");
    }

    #[test]
    fn round_trip_quoted_note() {
        round_trip(r#"<TITLE>t</TITLE> <IMG> SOURCE=x NOTE="has \"quotes\" and \\ slash" </IMG>"#);
    }

    #[test]
    fn round_trip_sync_labels() {
        round_trip(
            "<TITLE>t</TITLE>
             <AU> SOURCE=a.pcm STARTIME=0s DURATION=5s ID=1 SYNC=scene </AU>
             <VI> SOURCE=v.mpg STARTIME=0s DURATION=5s ID=2 SYNC=scene </VI>",
        );
    }

    #[test]
    fn serializes_sub_second_times() {
        let doc = parse("<TITLE>t</TITLE> <AU> SOURCE=a STARTIME=1250ms </AU>").unwrap();
        let text = serialize(&doc);
        assert!(text.contains("STARTIME=1250ms"), "{text}");
        round_trip(&text);
    }
}

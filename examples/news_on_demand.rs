//! A multimedia news service / electronic magazine — one of the paper's
//! motivating applications ("multimedia news services, electronic
//! magazines"). Articles mix text, images and clips; explorational links
//! lead to related stories; the storyboard renderer shows the desktop over
//! time.
//!
//! ```sh
//! cargo run --example news_on_demand
//! ```

use hermes_od::client::storyboard;
use hermes_od::core::{DocumentId, MediaKind, MediaTime, PlayoutSchedule, ServerId};
use hermes_od::service::{ClientConfig, ServerConfig, WorldBuilder};
use hermes_od::simnet::{LinkSpec, SimRng};

fn front_page() -> &'static str {
    r#"
<TITLE> The Daily Hypermedia </TITLE>
<H1> Evening Edition </H1>
<TEXT> Tonight: the broadband rollout reaches the city archive, and the
orchestra streams its first on-demand concert. </TEXT>
<PAR>
<IMG> SOURCE=img/rollout.jpg STARTIME=0s DURATION=8s WHERE=20,60 WIDTH=320 HEIGHT=200 ID=1 NOTE="fiber rollout" </IMG>
<IMG> SOURCE=img/concert.jpg STARTIME=8s DURATION=8s WHERE=20,60 WIDTH=320 HEIGHT=200 ID=2 NOTE="concert hall" </IMG>
<AU_VI> STARTIME=16s DURATION=10s SOURCE=au/anchor.pcm SOURCE=vi/anchor.mpg ID=3 ID=4 NOTE="anchor segment" </AU_VI>
<HLINK> TO=doc2 KIND=EXP NOTE="full rollout story" </HLINK>
<HLINK> TO=doc3 KIND=EXP NOTE="concert review" </HLINK>
<HLINK> AT=26s TO=doc2 KIND=SEQ NOTE="continue to the lead story" </HLINK>
"#
}

fn lead_story() -> &'static str {
    r#"
<TITLE> Fiber Reaches the Archive </TITLE>
<H2> Infrastructure </H2>
<TEXT> The city archive connects at 155 Mbps, putting forty years of
newsreels a hyperlink away. <B> On-demand access begins Monday. </B> </TEXT>
<PAR>
<IMG> SOURCE=img/archive.jpg STARTIME=0s DURATION=6s ID=1 </IMG>
<AU> SOURCE=au/interview.pcm STARTIME=6s DURATION=8s ID=2 NOTE="archivist interview" </AU>
"#
}

fn review() -> &'static str {
    r#"
<TITLE> Concert Review </TITLE>
<H2> Culture </H2>
<TEXT> The orchestra's on-demand premiere survived a congested uplink with
one barely-noticeable quality dip. <I> Our critic approves. </I> </TEXT>
<AU> SOURCE=au/excerpt.pcm STARTIME=0s DURATION=6s ID=1 NOTE="excerpt" </AU>
"#
}

fn main() {
    let mut b = WorldBuilder::new(61);
    let server = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let reader = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(61);
    let mut rng = SimRng::seed_from_u64(62);

    // Install the newsroom's media objects + articles.
    {
        use hermes_od::core::{Encoding, MediaDuration};
        let srv = sim.app_mut().server_mut(server);
        let img = srv.db.store_mut(MediaKind::Image);
        for key in ["img/rollout.jpg", "img/concert.jpg", "img/archive.jpg"] {
            img.add(
                key,
                Encoding::Jpeg,
                MediaDuration::from_secs(8),
                rng.range_u64(0, 1 << 60),
            );
        }
        let au = srv.db.store_mut(MediaKind::Audio);
        for (key, secs) in [
            ("au/anchor.pcm", 10),
            ("au/interview.pcm", 8),
            ("au/excerpt.pcm", 6),
        ] {
            au.add(
                key,
                Encoding::Pcm,
                MediaDuration::from_secs(secs),
                rng.range_u64(0, 1 << 60),
            );
        }
        srv.db.store_mut(MediaKind::Video).add(
            "vi/anchor.mpg",
            Encoding::Mpeg,
            MediaDuration::from_secs(10),
            rng.range_u64(0, 1 << 60),
        );
        srv.db
            .add_document(DocumentId::new(1), front_page(), "front page")
            .unwrap();
        srv.db
            .add_document(DocumentId::new(2), lead_story(), "lead story")
            .unwrap();
        srv.db
            .add_document(DocumentId::new(3), review(), "review")
            .unwrap();
    }

    // Print the front page's storyboard (what the reader will see when).
    {
        let doc = sim
            .app()
            .server(server)
            .db
            .document(DocumentId::new(1))
            .unwrap();
        let schedule = PlayoutSchedule::from_scenario(&doc.scenario);
        println!("=== front page storyboard (sampled every 4 s) ===");
        println!("{}", storyboard(&doc.scenario, &schedule, 4_000));
    }

    // Read the front page; mid-anchor-segment, jump to the concert review
    // (an explorational link), then return via the topic list.
    sim.with_api(|w, api| {
        w.client_mut(reader)
            .connect(api, server, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(20));
    sim.with_api(|w, api| {
        w.client_mut(reader)
            .follow_link(api, hermes_od::core::LinkTarget::Local(DocumentId::new(3)));
    });
    sim.run_until(MediaTime::from_secs(35));

    let c = sim.app().client(reader);
    assert!(c.errors.is_empty(), "{:?}", c.errors);
    println!("=== reader session ===");
    for (at, line) in &c.log {
        println!("  {at}  {line}");
    }
    assert!(c.completed.iter().any(|(d, _, _)| *d == DocumentId::new(3)));
    println!("\nexplorational link followed mid-presentation; review completed ✓");
}

//! Criterion bench: client-side machinery — media buffers, schedule
//! computation and the playout engine's tick loop.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hermes_client::{BufferConfig, MediaBuffer, PlayoutConfig, PlayoutEngine};
use hermes_core::{
    ComponentContent, ComponentId, DocumentId, Encoding, GradeLevel, MediaComponent, MediaDuration,
    MediaSource, MediaTime, PlayoutSchedule, Scenario, ServerId, SyncGroup,
};
use hermes_media::MediaFrame;
use std::collections::BTreeMap;

fn frame(c: u64, seq: u64, pts_ms: i64) -> MediaFrame {
    MediaFrame {
        component: ComponentId::new(c),
        seq,
        pts: MediaTime::from_millis(pts_ms),
        size: 1_000,
        key: true,
        level: GradeLevel::NOMINAL,
        last: false,
    }
}

fn av_scenario(streams: u64, secs: i64) -> Scenario {
    let mut s = Scenario::new(DocumentId::new(1), "bench");
    for i in 0..streams {
        s.components.push(MediaComponent {
            id: ComponentId::new(i),
            content: ComponentContent::Stored {
                source: MediaSource::new(ServerId::new(0), format!("m{i}")),
                encoding: if i % 2 == 0 {
                    Encoding::Pcm
                } else {
                    Encoding::Mpeg
                },
            },
            start: MediaTime::ZERO,
            duration: Some(MediaDuration::from_secs(secs)),
            region: None,
            note: None,
        });
    }
    for pair in (0..streams).step_by(2) {
        if pair + 1 < streams {
            s.sync_groups.push(SyncGroup {
                members: vec![ComponentId::new(pair), ComponentId::new(pair + 1)],
            });
        }
    }
    s
}

fn bench_playout(c: &mut Criterion) {
    let mut g = c.benchmark_group("playout");
    const FRAMES: u64 = 1_000;

    g.throughput(Throughput::Elements(FRAMES));
    g.bench_function("buffer_push_pop_1k", |b| {
        b.iter(|| {
            let mut buf = MediaBuffer::new(
                ComponentId::new(1),
                BufferConfig::default(),
                MediaDuration::from_millis(40),
            );
            for i in 0..FRAMES {
                buf.push(frame(1, i, i as i64 * 40));
                if i % 2 == 1 {
                    buf.pop();
                    buf.pop();
                }
            }
            buf
        })
    });

    g.bench_function("schedule_from_scenario_32_streams", |b| {
        let s = av_scenario(32, 30);
        b.iter(|| PlayoutSchedule::from_scenario(&s))
    });

    // Full 8-stream, 10-second engine run at 20 ms ticks with paced delivery.
    g.bench_function("engine_run_8_streams_10s", |b| {
        let scenario = av_scenario(8, 10);
        let schedule = PlayoutSchedule::from_scenario(&scenario);
        let periods: BTreeMap<ComponentId, MediaDuration> = (0..8)
            .map(|i| {
                (
                    ComponentId::new(i),
                    MediaDuration::from_millis(if i % 2 == 0 { 20 } else { 40 }),
                )
            })
            .collect();
        b.iter_batched(
            || {
                PlayoutEngine::new(
                    &scenario,
                    &schedule,
                    BufferConfig::with_window(MediaDuration::from_millis(400)),
                    &periods,
                    PlayoutConfig::default(),
                )
            },
            |mut e| {
                let mut next: Vec<u64> = vec![0; 8];
                e.start(MediaTime::ZERO);
                for t in 0..520 {
                    let now = MediaTime::from_millis(t * 20);
                    for (i, nf) in next.iter_mut().enumerate() {
                        let period = if i % 2 == 0 { 20 } else { 40 };
                        while *nf * period < (t as u64 * 20).saturating_add(400)
                            && *nf * period < 10_000
                        {
                            e.deliver(frame(i as u64, *nf, (*nf * period) as i64));
                            *nf += 1;
                        }
                    }
                    e.tick(now);
                }
                e
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_playout);
criterion_main!(benches);

//! Lexer for the hypermedia markup language.
//!
//! The token stream distinguishes three things:
//! * opening tags `<NAME>` and closing tags `</NAME>`,
//! * attribute assignments `NAME=value` (value is a bare word or a
//!   double-quoted string with `\"` and `\\` escapes),
//! * free text runs.
//!
//! Attribute assignments are recognized only where the parser expects them
//! (inside media/link elements); lexically they are emitted whenever an
//! ALL-CAPS keyword is immediately followed by `=`, which matches the
//! paper's examples (`SOURCE=retrieval_options ID=component_id ...`).

use crate::keywords::{AttrKeyword, TagKeyword};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Source position (1-based line and column) for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TokenKind {
    /// `<NAME>`
    Open(TagKeyword),
    /// `</NAME>`
    Close(TagKeyword),
    /// `NAME=value`
    Attr(AttrKeyword, String),
    /// A run of free text (whitespace-normalized within the run).
    Text(String),
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it starts.
    pub pos: Pos,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// Where the problem was found.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
        }
    }
    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }
    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }
    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }
    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError {
            message: msg.into(),
            pos: self.pos(),
        }
    }

    fn lex_tag(&mut self) -> Result<Token, LexError> {
        let pos = self.pos();
        self.bump(); // '<'
        let closing = if self.peek() == Some(b'/') {
            self.bump();
            true
        } else {
            false
        };
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c == b'>' {
                break;
            }
            if c.is_ascii_alphanumeric() || c == b'_' {
                name.push(self.bump().unwrap() as char);
            } else {
                return Err(self.err(format!("unexpected byte {:?} in tag name", c as char)));
            }
        }
        if self.peek() != Some(b'>') {
            return Err(self.err("unterminated tag (missing '>')"));
        }
        self.bump();
        let kw = TagKeyword::from_spelling(&name)
            .ok_or_else(|| self.err(format!("unknown tag keyword '{name}'")))?;
        Ok(Token {
            kind: if closing {
                TokenKind::Close(kw)
            } else {
                TokenKind::Open(kw)
            },
            pos,
        })
    }

    fn lex_value(&mut self) -> Result<String, LexError> {
        if self.peek() == Some(b'"') {
            self.bump();
            let mut v = String::new();
            loop {
                match self.bump() {
                    None => return Err(self.err("unterminated quoted value")),
                    Some(b'"') => break,
                    Some(b'\\') => match self.bump() {
                        Some(b'"') => v.push('"'),
                        Some(b'\\') => v.push('\\'),
                        Some(b'n') => v.push('\n'),
                        other => {
                            return Err(self.err(format!(
                                "bad escape '\\{}'",
                                other.map(|c| c as char).unwrap_or('?')
                            )))
                        }
                    },
                    Some(c) => v.push(c as char),
                }
            }
            Ok(v)
        } else {
            let mut v = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_whitespace() || c == b'<' || c == b'>' {
                    break;
                }
                v.push(self.bump().unwrap() as char);
            }
            if v.is_empty() {
                return Err(self.err("empty attribute value"));
            }
            Ok(v)
        }
    }

    /// Try to lex a `NAME=value` attribute starting at the current position.
    /// Returns Ok(None) if the upcoming word is not an attribute assignment
    /// (caller treats it as text).
    fn try_lex_attr(&mut self) -> Result<Option<Token>, LexError> {
        let save = (self.i, self.line, self.col);
        let pos = self.pos();
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_uppercase() || c == b'_' {
                name.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        if name.is_empty() || self.peek() != Some(b'=') {
            (self.i, self.line, self.col) = save;
            return Ok(None);
        }
        let Some(kw) = AttrKeyword::from_spelling(&name) else {
            (self.i, self.line, self.col) = save;
            return Ok(None);
        };
        self.bump(); // '='
        let value = self.lex_value()?;
        Ok(Some(Token {
            kind: TokenKind::Attr(kw, value),
            pos,
        }))
    }

    fn lex_text(&mut self) -> Token {
        let pos = self.pos();
        let mut t = String::new();
        while let Some(c) = self.peek() {
            if c == b'<' {
                break;
            }
            // Stop if an attribute assignment begins at a word boundary.
            if (t.is_empty() || t.ends_with(char::is_whitespace))
                && c.is_ascii_uppercase()
                && self.looks_like_attr()
            {
                break;
            }
            t.push(self.bump().unwrap() as char);
        }
        // Normalize internal whitespace; keep single spaces.
        let norm = t.split_whitespace().collect::<Vec<_>>().join(" ");
        Token {
            kind: TokenKind::Text(norm),
            pos,
        }
    }

    /// Lookahead: does an `ATTRKEYWORD=` assignment start here?
    fn looks_like_attr(&self) -> bool {
        let mut j = self.i;
        let mut name = String::new();
        while let Some(&c) = self.src.get(j) {
            if c.is_ascii_uppercase() || c == b'_' {
                name.push(c as char);
                j += 1;
            } else {
                break;
            }
        }
        !name.is_empty()
            && self.src.get(j) == Some(&b'=')
            && AttrKeyword::from_spelling(&name).is_some()
    }

    fn run(&mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => break,
                Some(b'<') => {
                    if self.peek2() == Some(b'!') {
                        // Comment: <!-- ... --> (implementation convenience).
                        self.skip_comment()?;
                    } else {
                        out.push(self.lex_tag()?);
                    }
                }
                Some(_) => {
                    if let Some(tok) = self.try_lex_attr()? {
                        out.push(tok);
                    } else {
                        let tok = self.lex_text();
                        if let TokenKind::Text(t) = &tok.kind {
                            if !t.is_empty() {
                                out.push(tok);
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn skip_comment(&mut self) -> Result<(), LexError> {
        // assumes "<!"
        let start = self.pos();
        self.bump();
        self.bump();
        // expect "--"
        if self.peek() != Some(b'-') || self.peek2() != Some(b'-') {
            return Err(LexError {
                message: "malformed comment (expected '<!--')".into(),
                pos: start,
            });
        }
        self.bump();
        self.bump();
        loop {
            match self.bump() {
                None => {
                    return Err(LexError {
                        message: "unterminated comment".into(),
                        pos: start,
                    })
                }
                Some(b'-') => {
                    if self.peek() == Some(b'-') && self.peek2() == Some(b'>') {
                        self.bump();
                        self.bump();
                        return Ok(());
                    }
                }
                Some(_) => {}
            }
        }
    }
}

/// Tokenize a complete source text.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tags_and_text() {
        let toks = kinds("<TITLE> Hello world </TITLE>");
        assert_eq!(
            toks,
            vec![
                TokenKind::Open(TagKeyword::Title),
                TokenKind::Text("Hello world".into()),
                TokenKind::Close(TagKeyword::Title),
            ]
        );
    }

    #[test]
    fn case_insensitive_tags() {
        let toks = kinds("<title>x</TiTlE>");
        assert!(matches!(toks[0], TokenKind::Open(TagKeyword::Title)));
        assert!(matches!(toks[2], TokenKind::Close(TagKeyword::Title)));
    }

    #[test]
    fn attributes_bare_and_quoted() {
        let toks = kinds(r#"<IMG> SOURCE=srv0:/imgs/logo ID=3 NOTE="a \"quoted\" note" </IMG>"#);
        assert_eq!(
            toks,
            vec![
                TokenKind::Open(TagKeyword::Img),
                TokenKind::Attr(AttrKeyword::Source, "srv0:/imgs/logo".into()),
                TokenKind::Attr(AttrKeyword::Id, "3".into()),
                TokenKind::Attr(AttrKeyword::Note, "a \"quoted\" note".into()),
                TokenKind::Close(TagKeyword::Img),
            ]
        );
    }

    #[test]
    fn text_with_embedded_uppercase_not_attr() {
        // "NATO summit" starts with caps but has no '=': it is text.
        let toks = kinds("<TEXT> NATO summit </TEXT>");
        assert_eq!(toks[1], TokenKind::Text("NATO summit".into()));
    }

    #[test]
    fn attr_boundary_inside_text() {
        // An attribute starting mid-element cuts the text run.
        let toks = kinds("<VI> intro STARTIME=2s </VI>");
        assert_eq!(
            toks,
            vec![
                TokenKind::Open(TagKeyword::Vi),
                TokenKind::Text("intro".into()),
                TokenKind::Attr(AttrKeyword::Startime, "2s".into()),
                TokenKind::Close(TagKeyword::Vi),
            ]
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        let e = tokenize("<BLINK>").unwrap_err();
        assert!(e.message.contains("unknown tag keyword"));
    }

    #[test]
    fn unterminated_tag_rejected() {
        assert!(tokenize("<TITLE").is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(tokenize(r#"<IMG> NOTE="oops"#).is_err());
    }

    #[test]
    fn comments_skipped() {
        let toks = kinds("<PAR> <!-- ignore me --> <SEP>");
        assert_eq!(
            toks,
            vec![
                TokenKind::Open(TagKeyword::Par),
                TokenKind::Open(TagKeyword::Sep)
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("<PAR>\n  <SEP>").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn whitespace_normalized_in_text() {
        let toks = kinds("<TEXT>  a\n   b\t c  </TEXT>");
        assert_eq!(toks[1], TokenKind::Text("a b c".into()));
    }

    #[test]
    fn malformed_comment_rejected() {
        assert!(tokenize("<!oops>").is_err());
        assert!(tokenize("<!-- never ends").is_err());
    }
}

//! FIG4 — the application state transition diagram: enumerate the legal
//! transition function, then drive *real* service sessions through scripted
//! interactions until every transition has been exercised, and print the
//! coverage matrix.

use hermes_bench::{ExpOpts, Table};
use hermes_client::{all_legal_transitions, AppEvent, AppState, AppStateMachine};
use hermes_core::{DocumentId, LinkTarget, MediaTime, ServerId};
use hermes_service::{install_course, ClientConfig, LessonShape, ServerConfig, WorldBuilder};
use hermes_simnet::{LinkSpec, SimRng};
use std::collections::BTreeSet;

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let seed = opts.seed(9);
    // 1. The diagram itself.
    let legal = all_legal_transitions();
    let mut t = Table::new(vec!["from", "event", "to"]);
    for (s, e, to) in &legal {
        t.row(vec![s.to_string(), e.to_string(), to.to_string()]);
    }
    out.table(
        &format!(
            "Fig. 4 — application state transition diagram ({} transitions)",
            legal.len()
        ),
        &t,
    );

    // 2. Exercise transitions in live sessions.
    let mut covered: BTreeSet<(AppState, AppEvent)> = BTreeSet::new();

    // Session A: subscribe → browse → view → pause/resume → local link →
    // reload → end → disconnect.
    {
        let (mut sim, srv, cli, lessons) = world(seed);
        sim.with_api(|w, api| w.client_mut(cli).connect(api, srv, Some(lessons[0])));
        sim.run_until(MediaTime::from_secs(4));
        sim.with_api(|w, api| w.client_mut(cli).pause(api));
        sim.run_until(MediaTime::from_secs(5));
        sim.with_api(|w, api| w.client_mut(cli).resume(api));
        sim.run_until(MediaTime::from_secs(6)); // still Viewing (pause shifted the end)
        sim.with_api(|w, api| {
            w.client_mut(cli)
                .follow_link(api, LinkTarget::Local(lessons[1]))
        });
        sim.run_until(MediaTime::from_secs(30));
        sim.with_api(|w, api| w.client_mut(cli).disconnect(api));
        sim.run_until(MediaTime::from_secs(31));
        covered.extend(sim.app().client(cli).machine.covered());
    }

    // Session B: known user reconnect (AuthOk), failed request, remote
    // migration, disconnect mid-browse.
    {
        let (mut sim, srv, cli, lessons) = world(seed);
        // First connect subscribes; disconnect; reconnect hits AuthOk.
        sim.with_api(|w, api| w.client_mut(cli).connect(api, srv, None));
        sim.run_until(MediaTime::from_secs(1));
        sim.with_api(|w, api| w.client_mut(cli).disconnect(api));
        sim.run_until(MediaTime::from_secs(2));
        sim.with_api(|w, api| w.client_mut(cli).connect(api, srv, None));
        sim.run_until(MediaTime::from_secs(3));
        sim.with_api(|w, api| {
            w.client_mut(cli)
                .request_document(api, DocumentId::new(999))
        });
        sim.run_until(MediaTime::from_secs(4));
        // Remote link from Browsing to a second server.
        sim.with_api(|w, api| {
            w.client_mut(cli).follow_link(
                api,
                LinkTarget::Remote(ServerId::new(1), DocumentId::new(50)),
            )
        });
        sim.run_until(MediaTime::from_secs(30));
        let _ = lessons;
        covered.extend(sim.app().client(cli).machine.covered());
        let _ = srv;
    }

    // Session C: the synthetic-only edges (admission rejection, migration
    // failure, subscribing-state disconnect) driven on a bare machine — the
    // events exist in the live protocol but need contrived network states;
    // the machine-level check keeps the diagram total.
    {
        let mut m = AppStateMachine::new();
        m.apply(AppEvent::Connect).unwrap();
        m.apply(AppEvent::AdmissionRejected).unwrap();
        covered.extend(m.covered());
        let mut m = AppStateMachine::new();
        m.apply(AppEvent::Connect).unwrap();
        m.apply(AppEvent::AuthUnknownUser).unwrap();
        m.apply(AppEvent::Disconnect).unwrap();
        covered.extend(m.covered());
        for script in [
            vec![
                AppEvent::Connect,
                AppEvent::AuthOk,
                AppEvent::FollowRemoteLink,
                AppEvent::MigrationFailed,
            ],
            vec![
                AppEvent::Connect,
                AppEvent::AuthOk,
                AppEvent::RequestDocument,
                AppEvent::Disconnect,
            ],
            vec![
                AppEvent::Connect,
                AppEvent::AuthOk,
                AppEvent::RequestDocument,
                AppEvent::ScenarioReceived,
                AppEvent::Reload,
            ],
            vec![
                AppEvent::Connect,
                AppEvent::AuthOk,
                AppEvent::RequestDocument,
                AppEvent::ScenarioReceived,
                AppEvent::Pause,
                AppEvent::Reload,
            ],
            vec![
                AppEvent::Connect,
                AppEvent::AuthOk,
                AppEvent::RequestDocument,
                AppEvent::ScenarioReceived,
                AppEvent::Pause,
                AppEvent::FollowLocalLink,
            ],
            vec![
                AppEvent::Connect,
                AppEvent::AuthOk,
                AppEvent::RequestDocument,
                AppEvent::ScenarioReceived,
                AppEvent::Pause,
                AppEvent::FollowRemoteLink,
                AppEvent::Disconnect,
            ],
            vec![
                AppEvent::Connect,
                AppEvent::AuthOk,
                AppEvent::RequestDocument,
                AppEvent::ScenarioReceived,
                AppEvent::FollowRemoteLink,
                AppEvent::MigrationComplete,
                AppEvent::Disconnect,
            ],
            vec![
                AppEvent::Connect,
                AppEvent::AuthOk,
                AppEvent::RequestDocument,
                AppEvent::ScenarioReceived,
                AppEvent::Pause,
                AppEvent::Disconnect,
            ],
            vec![
                AppEvent::Connect,
                AppEvent::AuthOk,
                AppEvent::RequestDocument,
                AppEvent::ScenarioReceived,
                AppEvent::Disconnect,
            ],
            vec![
                AppEvent::Connect,
                AppEvent::AuthOk,
                AppEvent::FollowLocalLink,
            ],
            vec![
                AppEvent::Connect,
                AppEvent::AuthOk,
                AppEvent::RequestDocument,
                AppEvent::ScenarioReceived,
                AppEvent::FollowLocalLink,
            ],
        ] {
            let mut m = AppStateMachine::new();
            for e in script {
                m.apply(e).unwrap();
            }
            covered.extend(m.covered());
        }
    }

    // 3. Coverage matrix.
    let mut t = Table::new(vec!["from", "event", "to", "exercised"]);
    let mut missing = 0;
    for (s, e, to) in &legal {
        let hit = covered.contains(&(*s, *e));
        if !hit {
            missing += 1;
        }
        t.row(vec![
            s.to_string(),
            e.to_string(),
            to.to_string(),
            if hit { "yes".into() } else { "NO".to_string() },
        ]);
    }
    out.table("transition coverage", &t);
    out.line(&format!(
        "coverage: {}/{} transitions exercised",
        legal.len() - missing,
        legal.len()
    ));
    assert_eq!(missing, 0, "uncovered transitions remain");
    out.line("FIG4 reproduction ✓");
}

type World = (
    hermes_simnet::Sim<hermes_service::ServiceMsg, hermes_service::ServiceWorld>,
    hermes_core::NodeId,
    hermes_core::NodeId,
    Vec<DocumentId>,
);

fn world(seed: u64) -> World {
    let mut b = WorldBuilder::new(seed);
    let srv = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let srv2 = b.add_server(
        ServerId::new(1),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let cli = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(seed);
    let mut rng = SimRng::seed_from_u64(seed.wrapping_add(1));
    let shape = LessonShape {
        images: 1,
        image_secs: 2,
        narrated_clip_secs: Some(4),
        closing_audio_secs: None,
    };
    let lessons = install_course(
        sim.app_mut().server_mut(srv),
        "Course",
        &["x"],
        10,
        2,
        shape,
        &mut rng,
    );
    install_course(
        sim.app_mut().server_mut(srv2),
        "Remote",
        &["y"],
        50,
        1,
        shape,
        &mut rng,
    );
    (sim, srv, cli, lessons)
}

//! Property tests on the core temporal algebra: intervals/Allen relations,
//! time arithmetic, skew-repair planning and grading ladders.

use hermes_od::core::{
    plan_repair, AllenRelation, GradeLevel, Interval, LadderRung, MediaDuration, MediaTime,
    QualityLadder, Skew, SkewPolicy, SkewRepair,
};
use proptest::prelude::*;

fn time() -> impl Strategy<Value = MediaTime> {
    (-1_000_000i64..1_000_000).prop_map(MediaTime::from_micros)
}

fn interval() -> impl Strategy<Value = Interval> {
    (time(), 0i64..1_000_000)
        .prop_map(|(s, len)| Interval::new(s, s + MediaDuration::from_micros(len)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Exactly one Allen relation holds and inversion is involutive.
    #[test]
    fn allen_total_and_inverse(a in interval(), b in interval()) {
        let r = a.allen(&b);
        prop_assert_eq!(b.allen(&a), r.inverse());
        prop_assert_eq!(r.inverse().inverse(), r);
        // Equals is self-inverse and symmetric.
        if r == AllenRelation::Equals {
            prop_assert_eq!(a, b);
        }
    }

    /// Intersection is commutative, contained in both, and implies overlap.
    #[test]
    fn intersection_properties(a in interval(), b in interval()) {
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(a.overlaps(&b));
            prop_assert!(i.start >= a.start && i.end <= a.end);
            prop_assert!(i.start >= b.start && i.end <= b.end);
            prop_assert!(i.duration() <= a.duration());
            prop_assert!(i.duration() <= b.duration());
        }
    }

    /// The hull contains both intervals and any intersection.
    #[test]
    fn hull_contains(a in interval(), b in interval()) {
        let h = a.hull(&b);
        prop_assert!(h.start <= a.start && h.end >= a.end);
        prop_assert!(h.start <= b.start && h.end >= b.end);
        prop_assert!(h.duration() >= a.duration().max(b.duration()));
    }

    /// Time arithmetic: (a + d) - d == a, and subtraction inverts addition.
    #[test]
    fn time_arithmetic(a in time(), d in -1_000_000i64..1_000_000) {
        let d = MediaDuration::from_micros(d);
        prop_assert_eq!((a + d) - d, a);
        prop_assert_eq!((a + d) - a, d);
    }

    /// plan_repair never returns a zero-frame repair when out of tolerance,
    /// and never repairs within tolerance.
    #[test]
    fn repair_planning_sound(
        skew_us in -2_000_000i64..2_000_000,
        tol_ms in 1i64..500,
        period_ms in 1i64..100,
        policy in prop_oneof![Just(SkewPolicy::DropLeader), Just(SkewPolicy::DuplicateLaggard), Just(SkewPolicy::Both)],
    ) {
        let skew = Skew::new(MediaDuration::from_micros(skew_us));
        let tol = MediaDuration::from_millis(tol_ms);
        let period = MediaDuration::from_millis(period_ms);
        let (repair, _side) = plan_repair(skew, tol, period, policy);
        if skew.within(tol) {
            prop_assert_eq!(repair, SkewRepair::None);
        } else {
            match repair {
                SkewRepair::None => prop_assert!(false, "out-of-tolerance skew not repaired"),
                SkewRepair::DropFromLeader { frames } | SkewRepair::DuplicateInLaggard { frames } => {
                    prop_assert!(frames >= 1);
                    // The correction never exceeds the excess by more than
                    // one frame quantum.
                    let excess = skew.magnitude() - tol;
                    let corrected = period * frames as i64;
                    prop_assert!(corrected <= excess + period + period,
                        "overcorrection: {corrected} for excess {excess}");
                }
            }
        }
    }

    /// Grading ladders: degraded levels never cost more bandwidth; stepping
    /// down then up returns to the same level.
    #[test]
    fn ladder_monotone(rungs in proptest::collection::vec(1_000u64..10_000_000, 1..8)) {
        let mut sorted = rungs.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let ladder = QualityLadder::new(
            sorted.iter().enumerate()
                .map(|(i, bw)| LadderRung { label: format!("L{i}"), bandwidth_bps: *bw })
                .collect(),
        );
        let max = ladder.max_level();
        let mut level = GradeLevel::NOMINAL;
        let mut last_bw = ladder.bandwidth_at(level);
        for _ in 0..10 {
            level = level.degraded(max);
            let bw = ladder.bandwidth_at(level);
            prop_assert!(bw <= last_bw);
            last_bw = bw;
        }
        for _ in 0..10 {
            level = level.upgraded();
        }
        prop_assert_eq!(level, GradeLevel::NOMINAL);
        prop_assert_eq!(ladder.bandwidth_at(level), sorted[0]);
    }
}

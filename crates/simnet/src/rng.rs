//! Deterministic random-number support for the simulator.
//!
//! Every simulation run is seeded explicitly; identical seeds reproduce
//! identical packet traces, which the tests and experiments rely on.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The simulator's RNG: a seeded [`SmallRng`] plus the distribution helpers
/// the network models need (`rand_distr` is outside the approved dependency
/// set, so normal/exponential sampling is implemented here).
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    /// Cached second value from the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to \[0,1\]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal via Box–Muller (cached pairs).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(v) = self.spare_normal.take() {
            return v;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.f64();
            if u > 1e-12 {
                break u;
            }
        };
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Exponential with the given mean (inverse-transform sampling).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = loop {
            let u = self.f64();
            if u > 1e-12 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Pareto with shape `alpha` and scale `x_m` (heavy-tailed bursts).
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        assert!(x_m > 0.0 && alpha > 0.0);
        let u = loop {
            let u = self.f64();
            if u > 1e-12 {
                break u;
            }
        };
        x_m / u.powf(1.0 / alpha)
    }

    /// Split off an independent child RNG (for per-link streams), seeded
    /// deterministically from this one.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.f64() == b.f64()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn normal_moments_approximately_right() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean_approximately_right() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
        // Exponential samples are non-negative.
        assert!((0..100).all(|_| r.exponential(1.0) >= 0.0));
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::seed_from_u64(17);
        assert!((0..1000).all(|_| r.pareto(2.0, 1.5) >= 2.0));
    }

    #[test]
    fn split_is_deterministic() {
        let mut a = SimRng::seed_from_u64(99);
        let mut b = SimRng::seed_from_u64(99);
        let mut ca = a.split();
        let mut cb = b.split();
        for _ in 0..10 {
            assert_eq!(ca.f64().to_bits(), cb.f64().to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SimRng::seed_from_u64(1);
        let _ = r.range_u64(5, 5);
    }
}

//! Deterministic fault injection: node crashes/restarts, link partitions and
//! link flapping, scheduled as ordinary events on the simulator's timer
//! wheel.
//!
//! A [`FaultPlan`] is a declarative schedule built with the combinators
//! below and installed with [`crate::Sim::install_faults`]. Every fault is
//! applied at a deterministic simulation instant, so a run with a given
//! (topology seed, sim seed, fault plan) triple is exactly reproducible —
//! including runs that also use jitter/loss/congestion models, which keep
//! drawing from their own per-link RNG streams. Optional timing jitter on
//! the plan itself draws from a [`SimRng`], keeping perturbed schedules
//! seeded too.
//!
//! Semantics:
//!
//! * **Node crash** — the node's "process" dies: queued deliveries and
//!   timers addressed to it are discarded when they fire, and reliable
//!   channels touching the node are torn down (outstanding segments are
//!   abandoned rather than wedging the in-order release gate).
//! * **Node restart** — the node comes back with a fresh incarnation:
//!   timers and retransmission chains belonging to the crashed incarnation
//!   stay dead; the application is told so it can rebuild volatile state.
//! * **Link partition** — both directions of a link go down; packets
//!   offered to a down link are dropped (the reliable transport keeps
//!   retrying with backoff, so short partitions heal transparently).
//! * **Link flap** — a periodic down/up cycle, expanded at install time
//!   into plain partition/heal events.

use crate::rng::SimRng;
use hermes_core::{MediaDuration, MediaTime, NodeId};

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node's process dies; volatile state and in-flight work are lost.
    NodeCrash {
        /// The crashing node.
        node: NodeId,
    },
    /// The node's process comes back (a fresh incarnation).
    NodeRestart {
        /// The restarting node.
        node: NodeId,
    },
    /// Both directions of the `a`–`b` link go down.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Both directions of the `a`–`b` link come back up.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The node stays alive but serves `factor`× slower (a brownout:
    /// overloaded CPU, thrashing disk). The engine itself delivers and fires
    /// timers normally; the *application* is told and inflates its service
    /// times, so breakers and hedging — not the transport — must cover it.
    NodeSlow {
        /// The slowed node.
        node: NodeId,
        /// Service-time multiplier (≥ 1).
        factor: u32,
    },
    /// The node returns to nominal service speed (ends a `NodeSlow`).
    NodeNominal {
        /// The recovering node.
        node: NodeId,
    },
}

/// A fault scheduled at an absolute simulation instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault is applied.
    pub at: MediaTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A declarative, deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule a raw fault.
    pub fn at(mut self, at: MediaTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Crash `node` at `at` (no restart).
    pub fn crash(self, node: NodeId, at: MediaTime) -> Self {
        self.at(at, FaultKind::NodeCrash { node })
    }

    /// Restart `node` at `at`.
    pub fn restart(self, node: NodeId, at: MediaTime) -> Self {
        self.at(at, FaultKind::NodeRestart { node })
    }

    /// Crash `node` at `at` and restart it `down_for` later.
    pub fn crash_for(self, node: NodeId, at: MediaTime, down_for: MediaDuration) -> Self {
        self.crash(node, at).restart(node, at + down_for)
    }

    /// Partition the `a`–`b` link during `[from, until)`.
    pub fn partition(self, a: NodeId, b: NodeId, from: MediaTime, until: MediaTime) -> Self {
        self.at(from, FaultKind::LinkDown { a, b })
            .at(until, FaultKind::LinkUp { a, b })
    }

    /// Slow `node` down by `factor`× starting at `at` (no recovery).
    pub fn slow(self, node: NodeId, at: MediaTime, factor: u32) -> Self {
        self.at(at, FaultKind::NodeSlow { node, factor })
    }

    /// Brownout: slow `node` by `factor`× during `[at, at + lasting)`, then
    /// return it to nominal speed — alive throughout, never crashed.
    pub fn brownout(
        self,
        node: NodeId,
        at: MediaTime,
        lasting: MediaDuration,
        factor: u32,
    ) -> Self {
        self.slow(node, at, factor)
            .at(at + lasting, FaultKind::NodeNominal { node })
    }

    /// Flap the `a`–`b` link: starting at `start`, `cycles` periods of
    /// `period` each beginning with `down_for` of outage.
    pub fn flap(
        mut self,
        a: NodeId,
        b: NodeId,
        start: MediaTime,
        period: MediaDuration,
        down_for: MediaDuration,
        cycles: u32,
    ) -> Self {
        let down_for = down_for.min(period);
        for i in 0..cycles {
            let t = start + period * i as i64;
            self = self.partition(a, b, t, t + down_for);
        }
        self
    }

    /// Perturb every event time by a uniform draw from `[0, max_jitter)`.
    /// The draw comes from the supplied seeded RNG, so a jittered plan is
    /// still fully reproducible.
    pub fn jittered(mut self, rng: &mut SimRng, max_jitter: MediaDuration) -> Self {
        let span = max_jitter.as_micros().max(0) as u64;
        if span > 0 {
            for ev in &mut self.events {
                ev.at += MediaDuration::from_micros(rng.range_u64(0, span) as i64);
            }
        }
        self
    }

    /// The scheduled events, sorted by time (stable: ties keep plan order,
    /// so a `crash`+`restart` at the same instant applies in that order).
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at);
        evs
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u64) -> NodeId {
        NodeId::new(id)
    }

    #[test]
    fn builders_expand_to_events() {
        let plan = FaultPlan::new()
            .crash_for(n(1), MediaTime::from_secs(5), MediaDuration::from_secs(2))
            .partition(n(0), n(1), MediaTime::from_secs(1), MediaTime::from_secs(3));
        let evs = plan.events();
        assert_eq!(evs.len(), 4);
        // Sorted by time.
        assert!(evs.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(evs[0].kind, FaultKind::LinkDown { a: n(0), b: n(1) },);
        assert_eq!(evs[2].kind, FaultKind::NodeCrash { node: n(1) });
        assert_eq!(evs[3].at, MediaTime::from_secs(7));
    }

    #[test]
    fn flap_expands_cycles() {
        let plan = FaultPlan::new().flap(
            n(0),
            n(1),
            MediaTime::from_secs(1),
            MediaDuration::from_secs(10),
            MediaDuration::from_secs(2),
            3,
        );
        let evs = plan.events();
        assert_eq!(evs.len(), 6);
        assert_eq!(evs[0].at, MediaTime::from_secs(1));
        assert_eq!(evs[1].at, MediaTime::from_secs(3));
        assert_eq!(evs[4].at, MediaTime::from_secs(21));
        // Down/up alternate.
        assert!(matches!(evs[4].kind, FaultKind::LinkDown { .. }));
        assert!(matches!(evs[5].kind, FaultKind::LinkUp { .. }));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let base =
            FaultPlan::new().crash_for(n(2), MediaTime::from_secs(10), MediaDuration::from_secs(1));
        let j1 = base.clone().jittered(
            &mut SimRng::seed_from_u64(7),
            MediaDuration::from_millis(500),
        );
        let j2 = base.clone().jittered(
            &mut SimRng::seed_from_u64(7),
            MediaDuration::from_millis(500),
        );
        assert_eq!(j1, j2, "same seed, same perturbation");
        for (b, j) in base.events().iter().zip(j1.events()) {
            assert!(j.at >= b.at && j.at < b.at + MediaDuration::from_millis(500));
        }
    }

    #[test]
    fn brownout_expands_to_slow_then_nominal() {
        let plan = FaultPlan::new().brownout(
            n(3),
            MediaTime::from_secs(2),
            MediaDuration::from_secs(5),
            8,
        );
        let evs = plan.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[0].kind,
            FaultKind::NodeSlow {
                node: n(3),
                factor: 8
            }
        );
        assert_eq!(evs[1].at, MediaTime::from_secs(7));
        assert_eq!(evs[1].kind, FaultKind::NodeNominal { node: n(3) });
    }

    #[test]
    fn same_instant_keeps_plan_order() {
        let t = MediaTime::from_secs(4);
        let plan = FaultPlan::new().restart(n(1), t).crash(n(1), t);
        let evs = plan.events();
        assert!(matches!(evs[0].kind, FaultKind::NodeRestart { .. }));
        assert!(matches!(evs[1].kind, FaultKind::NodeCrash { .. }));
    }
}

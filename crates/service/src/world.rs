//! The service world: actors + topology over the simulated network, and the
//! `App` glue dispatching messages and timers to them.

use crate::client_actor::{ClientActor, ClientConfig};
use crate::media_actor::MediaActor;
use crate::protocol::{ServiceMsg, StackPath};
use crate::server_actor::{MediaTier, MediaTierConfig, ServerActor, ServerConfig};
use hermes_core::{MediaKind, NodeId, ServerId};
use hermes_media::MediaObject;
use hermes_server::PlacementMap;
use hermes_simnet::{App, FaultEvent, FaultKind, LinkSpec, Network, Sim, SimApi, SimRng, WireSize};
use std::collections::BTreeMap;

/// All actors of a running service deployment.
pub struct ServiceWorld {
    /// Multimedia servers by node.
    pub servers: BTreeMap<NodeId, ServerActor>,
    /// Browsers by node.
    pub clients: BTreeMap<NodeId, ClientActor>,
    /// Media-server nodes of the distributed media tier, by node.
    pub media_nodes: BTreeMap<NodeId, MediaActor>,
    /// Media-tier configuration ([`distribute_media`](Self::distribute_media)
    /// applies it).
    pub media_cfg: MediaTierConfig,
    /// Per-stack-path delivery accounting (packets, bytes) — the FIG5
    /// experiment's raw data.
    pub stack_bytes: BTreeMap<StackPath, (u64, u64)>,
    /// The service's server catalog: "a list of available Hermes servers is
    /// provided. For every Hermes server, a small description concerning the
    /// kind of lessons that are stored in it" (§6.2.1).
    pub catalog: Vec<(ServerId, NodeId, String)>,
}

impl ServiceWorld {
    /// The server actor on a node.
    pub fn server(&self, node: NodeId) -> &ServerActor {
        &self.servers[&node]
    }
    /// Mutable server access.
    pub fn server_mut(&mut self, node: NodeId) -> &mut ServerActor {
        self.servers.get_mut(&node).unwrap()
    }
    /// The client actor on a node.
    pub fn client(&self, node: NodeId) -> &ClientActor {
        &self.clients[&node]
    }
    /// Mutable client access.
    pub fn client_mut(&mut self, node: NodeId) -> &mut ClientActor {
        self.clients.get_mut(&node).unwrap()
    }
    /// The media actor on a node.
    pub fn media(&self, node: NodeId) -> &MediaActor {
        &self.media_nodes[&node]
    }
    /// Mutable media-node access.
    pub fn media_mut(&mut self, node: NodeId) -> &mut MediaActor {
        self.media_nodes.get_mut(&node).unwrap()
    }

    /// Distribute every server's media content over the media-tier nodes
    /// and switch the servers to tier-backed delivery.
    ///
    /// For each multimedia server: place its object keys on the media nodes
    /// by rendezvous hashing (`media_cfg.replication` replicas per object),
    /// install the replicas into the nodes' shards, and hand the server a
    /// [`MediaTier`] so its streams pull frames over the network instead of
    /// reading the local store. Call *after* content installation (content
    /// is ingested into the built sim) and before driving the run. A no-op
    /// without media nodes.
    pub fn distribute_media(&mut self) {
        let nodes: Vec<NodeId> = self.media_nodes.keys().copied().collect();
        if nodes.is_empty() {
            return;
        }
        let cfg = self.media_cfg.clone();
        for server in self.servers.values_mut() {
            let mut objects: Vec<MediaObject> = Vec::new();
            for kind in MediaKind::ALL {
                objects.extend(server.db.store(kind).iter().cloned());
            }
            let placement = PlacementMap::build(
                objects.iter().map(|o| o.key.as_str()),
                &nodes,
                cfg.replication,
            );
            for obj in objects {
                for &n in placement.replicas(&obj.key) {
                    self.media_nodes
                        .get_mut(&n)
                        .unwrap()
                        .install(server.server_id, obj.clone());
                }
            }
            server.media = Some(MediaTier::new(cfg.clone(), placement));
        }
    }

    /// Debug-build conservation audit over media transport parts: every
    /// part a media node put on the wire must either have been received by
    /// a multimedia server or died with an *accounted* fault (engine
    /// `fault_drops` — stale-incarnation deliveries, torn-down reliable
    /// holds — or exhausted retransmission budgets). Call after a run has
    /// drained; any imbalance beyond the fault ledger is accounting drift.
    pub fn audit_media_parts(&self, stats: &hermes_simnet::SimStats) {
        let sent: u64 = self.media_nodes.values().map(|m| m.stats.parts_sent).sum();
        let received: u64 = self
            .servers
            .values()
            .filter_map(|s| s.media.as_ref())
            .map(|t| t.stats.parts_received)
            .sum();
        debug_assert!(
            received <= sent,
            "servers received {received} media parts but only {sent} were sent"
        );
        debug_assert!(
            sent - received <= stats.fault_drops + stats.reliable_failures,
            "media parts leaked: sent {sent}, received {received}, \
             but only {} fault drops + {} reliable failures can explain losses",
            stats.fault_drops,
            stats.reliable_failures
        );
    }

    /// Snapshot every actor's counters into the unified metrics registry
    /// (call at end of run, after the engine's own
    /// [`hermes_simnet::Sim::publish_metrics`]).
    pub fn publish_metrics(&self, obs: &mut hermes_simnet::Obs) {
        for s in self.servers.values() {
            s.publish_metrics(obs);
        }
        for c in self.clients.values() {
            c.publish_metrics(obs);
        }
        for m in self.media_nodes.values() {
            m.publish_metrics(obs);
        }
    }

    /// Replicate freshly processed subscription forms to every server's
    /// user database ("this form is transmitted to every server of the
    /// service", §5).
    fn replicate_subscriptions(&mut self) {
        let mut pending = Vec::new();
        for s in self.servers.values_mut() {
            pending.append(&mut s.pending_replications);
        }
        for (user, form) in pending {
            for s in self.servers.values_mut() {
                s.accounts.register_replica(user, form.clone());
            }
        }
    }
}

impl App<ServiceMsg> for ServiceWorld {
    fn on_message(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        node: NodeId,
        from: NodeId,
        msg: ServiceMsg,
    ) {
        let e = self.stack_bytes.entry(msg.stack_path()).or_insert((0, 0));
        e.0 += 1;
        e.1 += msg.wire_size() as u64;
        if let Some(server) = self.servers.get_mut(&node) {
            server.on_message(api, from, msg);
            self.replicate_subscriptions();
        } else if let Some(client) = self.clients.get_mut(&node) {
            client.on_message(api, from, msg);
        } else if let Some(media) = self.media_nodes.get_mut(&node) {
            media.on_message(api, from, msg);
        }
    }

    fn on_timer(&mut self, api: &mut SimApi<'_, ServiceMsg>, node: NodeId, key: u64, payload: u64) {
        if let Some(server) = self.servers.get_mut(&node) {
            if key == crate::timers::TK_DISCRETE {
                let (session, component) = crate::timers::unpack(payload);
                server.send_discrete(api, session, component);
            } else {
                server.on_timer(api, key, payload);
            }
        } else if let Some(client) = self.clients.get_mut(&node) {
            client.on_timer(api, key, payload);
        } else if let Some(media) = self.media_nodes.get_mut(&node) {
            media.on_timer(api, key, payload);
        }
    }

    fn on_fault(&mut self, api: &mut SimApi<'_, ServiceMsg>, event: FaultEvent) {
        match event.kind {
            // A crashing server loses its volatile session state;
            // reservations and admission slots are returned to the network
            // so the restarted process starts from a clean (but
            // billing-preserving) slate.
            FaultKind::NodeCrash { node } => {
                if let Some(server) = self.servers.get_mut(&node) {
                    server.on_crash(api);
                } else if self.media_nodes.contains_key(&node) {
                    // A media node died: every multimedia server fails its
                    // streams over to surviving replicas. Content (shards)
                    // models disk and survives for the restart.
                    for server in self.servers.values_mut() {
                        server.on_media_node_event(api, node);
                    }
                }
            }
            // A restarted media node is a candidate replica again; streams
            // parked with every replica down re-point at it and resume.
            //
            // A restarted *multimedia server* is a fresh process: the engine
            // bumped its incarnation (dropping every timer the old process
            // armed), so whatever session state survived in the actor is
            // unreachable RAM — wipe it exactly as a crash would. Without
            // this, a restart not preceded by a crash (legal in a fault
            // plan) left sessions frozen forever: their heartbeat timers
            // died with the old incarnation, so not even the client-death
            // reaper could run. Found by the chaos harness's shrinker.
            FaultKind::NodeRestart { node } => {
                if self.servers.contains_key(&node) {
                    self.servers.get_mut(&node).unwrap().on_crash(api);
                } else if self.media_nodes.contains_key(&node) {
                    for server in self.servers.values_mut() {
                        server.on_media_node_event(api, node);
                    }
                }
            }
            // A brownout inflates the media node's service times; the
            // engine keeps delivering, so only breakers and hedging notice.
            FaultKind::NodeSlow { node, factor } => {
                if let Some(media) = self.media_nodes.get_mut(&node) {
                    media.set_slowdown(factor);
                }
            }
            FaultKind::NodeNominal { node } => {
                if let Some(media) = self.media_nodes.get_mut(&node) {
                    media.set_slowdown(1);
                }
            }
            _ => {}
        }
    }
}

/// Builder for service deployments over star/backbone topologies.
pub struct WorldBuilder {
    net: Network,
    world: ServiceWorld,
    rng: SimRng,
    next_node: u64,
    backbone: NodeId,
    server_nodes: Vec<NodeId>,
    directory: BTreeMap<ServerId, NodeId>,
}

impl WorldBuilder {
    /// Add a media-server node attached to the backbone by `link` (the
    /// storage-area side of the media tier). Placement and shard install
    /// happen later, in [`ServiceWorld::distribute_media`].
    pub fn add_media_node(&mut self, link: LinkSpec) -> NodeId {
        let node = self.alloc_node(&format!("media-{}", self.next_node));
        self.net
            .add_duplex(self.backbone, node, link, &mut self.rng);
        self.world.media_nodes.insert(node, MediaActor::new(node));
        node
    }

    /// Set the media-tier configuration the deployment will distribute
    /// content under.
    pub fn media_config(&mut self, cfg: MediaTierConfig) {
        self.world.media_cfg = cfg;
    }
}

impl WorldBuilder {
    /// Start a deployment: a backbone switch node everything hangs off.
    pub fn new(seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut net = Network::new();
        let backbone = NodeId::new(0);
        net.add_node(backbone, "backbone");
        let _ = &mut rng;
        WorldBuilder {
            net,
            world: ServiceWorld {
                servers: BTreeMap::new(),
                clients: BTreeMap::new(),
                media_nodes: BTreeMap::new(),
                media_cfg: MediaTierConfig::default(),
                stack_bytes: BTreeMap::new(),
                catalog: Vec::new(),
            },
            rng,
            next_node: 1,
            backbone,
            server_nodes: Vec::new(),
            directory: BTreeMap::new(),
        }
    }

    fn alloc_node(&mut self, name: &str) -> NodeId {
        let id = NodeId::new(self.next_node);
        self.next_node += 1;
        self.net.add_node(id, name);
        id
    }

    /// Add a multimedia server attached to the backbone by `link`.
    pub fn add_server(&mut self, server_id: ServerId, link: LinkSpec, cfg: ServerConfig) -> NodeId {
        self.add_server_described(server_id, link, cfg, "general hypermedia server")
    }

    /// Add a server with a catalog description ("the kind of lessons that
    /// are stored in it", §6.2.1).
    pub fn add_server_described(
        &mut self,
        server_id: ServerId,
        link: LinkSpec,
        cfg: ServerConfig,
        description: impl Into<String>,
    ) -> NodeId {
        let node = self.alloc_node(&format!("server-{}", server_id.raw()));
        self.net
            .add_duplex(self.backbone, node, link, &mut self.rng);
        let actor = ServerActor::new(node, server_id, cfg);
        self.world.servers.insert(node, actor);
        self.server_nodes.push(node);
        self.directory.insert(server_id, node);
        self.world
            .catalog
            .push((server_id, node, description.into()));
        node
    }

    /// Add a client attached to the backbone by `link` (the client's access
    /// link — congestion profiles on it drive most experiments).
    pub fn add_client(&mut self, link: LinkSpec, cfg: ClientConfig) -> NodeId {
        let node = self.alloc_node(&format!("client-{}", self.next_node));
        self.net
            .add_duplex(self.backbone, node, link, &mut self.rng);
        let actor = ClientActor::new(node, cfg);
        self.world.clients.insert(node, actor);
        node
    }

    /// Direct access to the network under construction (e.g. to set
    /// congestion profiles on specific links).
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The backbone node id.
    pub fn backbone(&self) -> NodeId {
        self.backbone
    }

    /// Finish: wire peer lists + directories, compute routes, build the Sim.
    pub fn build(mut self, seed: u64) -> Sim<ServiceMsg, ServiceWorld> {
        let peers: Vec<NodeId> = self.server_nodes.clone();
        for s in self.world.servers.values_mut() {
            s.peers = peers.iter().copied().filter(|n| *n != s.node).collect();
        }
        for c in self.world.clients.values_mut() {
            c.directory = self.directory.clone();
        }
        self.net.compute_routes();
        Sim::new(self.net, self.world, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_topology() {
        let mut b = WorldBuilder::new(1);
        let s1 = b.add_server(
            ServerId::new(0),
            LinkSpec::lan(10_000_000),
            ServerConfig::default(),
        );
        let s2 = b.add_server(
            ServerId::new(1),
            LinkSpec::lan(10_000_000),
            ServerConfig::default(),
        );
        let c = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
        let sim = b.build(1);
        // Routes exist between the client and both servers.
        assert!(sim.net().path(c, s1).is_some());
        assert!(sim.net().path(c, s2).is_some());
        // Peers exclude self.
        assert_eq!(sim.app().server(s1).peers, vec![s2]);
        assert_eq!(sim.app().server(s2).peers, vec![s1]);
        // Directory maps both servers.
        assert_eq!(sim.app().client(c).directory.len(), 2);
    }
}

//! Stream-sharing policy: batching and patching for popular content.
//!
//! The paper targets "a large number of users" on one service; a unicast
//! flow per session makes server egress grow linearly with the audience.
//! The classic VoD answer is to *share* delivery channels: requests for
//! the same object arriving within a batching window `W` ride one shared
//! (multicast) flow, and — in patching mode — a viewer arriving shortly
//! *after* a shared flow started still joins it, receiving the missed
//! prefix as a short unicast patch instead of a whole private stream
//! (Hua/Cai/Sheu's patching; Dan/Sitaram/Shahabuddin's batching).
//!
//! This module is pure policy: [`BatchingPolicy`] tracks per-object
//! popularity and answers, for each incoming request, *how* it should be
//! served ([`ShareDecision`]). The service layer owns the actual groups,
//! timers and patch streams.

use hermes_core::MediaDuration;
use std::collections::BTreeMap;

/// Which sharing mechanisms are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingMode {
    /// Every session gets a private unicast flow (the PR 2 behaviour).
    Off,
    /// Requests within the window batch onto one shared flow; the flow
    /// starts when the window closes.
    Batching,
    /// Batching, plus late joiners patch into an already-started flow.
    BatchingPatching,
}

/// Tunables of the sharing policy.
#[derive(Debug, Clone)]
pub struct SharingPolicy {
    /// Enabled mechanisms.
    pub mode: SharingMode,
    /// Batching window `W`: how long the first request of a batch waits
    /// for companions before the shared flow starts.
    pub window: MediaDuration,
    /// Longest missed prefix a patch may cover; a later request opens a
    /// fresh batch instead.
    pub max_patch: MediaDuration,
    /// Popularity-rank knob: objects ranked strictly below this (0 = most
    /// popular) start their shared flow immediately and rely on patching
    /// for followers, instead of holding the first viewer for the full
    /// window — hot content has followers soon anyway, so batch-wait
    /// latency buys nothing.
    pub hot_rank: usize,
}

impl Default for SharingPolicy {
    fn default() -> Self {
        SharingPolicy {
            mode: SharingMode::Batching,
            window: MediaDuration::from_millis(2_000),
            max_patch: MediaDuration::from_millis(4_000),
            hot_rank: 4,
        }
    }
}

/// Where an existing shared group for the requested object currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupPhase {
    /// The group exists but its batching window is still open.
    Pending,
    /// The shared flow started `elapsed` ago.
    Streaming {
        /// Time since the shared flow's first frame.
        elapsed: MediaDuration,
    },
}

/// How one incoming request should be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareDecision {
    /// A private unicast flow (sharing off).
    Unicast,
    /// Open a new shared group and start its flow after `wait`.
    OpenGroup {
        /// Batching delay before the shared flow starts (zero for hot
        /// objects in patching mode).
        wait: MediaDuration,
    },
    /// Join the object's pending group; the flow has not started yet.
    JoinPending,
    /// Join the streaming group and receive the missed `offset` of
    /// presentation time as a unicast patch.
    JoinWithPatch {
        /// Presentation-time length of the missed prefix.
        offset: MediaDuration,
    },
}

/// Per-object request accounting + the decision function.
#[derive(Debug, Clone, Default)]
pub struct BatchingPolicy {
    policy: SharingPolicy,
    requests: BTreeMap<String, u64>,
}

impl BatchingPolicy {
    /// A policy engine with the given tunables.
    pub fn new(policy: SharingPolicy) -> Self {
        BatchingPolicy {
            policy,
            requests: BTreeMap::new(),
        }
    }

    /// The policy tunables.
    pub fn policy(&self) -> &SharingPolicy {
        &self.policy
    }

    /// Record one request for `object` (call before [`decide`](Self::decide)).
    pub fn on_request(&mut self, object: &str) {
        *self.requests.entry(object.to_string()).or_insert(0) += 1;
    }

    /// Requests recorded for `object` so far.
    pub fn requests(&self, object: &str) -> u64 {
        *self.requests.get(object).unwrap_or(&0)
    }

    /// Popularity rank of `object`: the number of objects with strictly
    /// more recorded requests (0 = most popular). Unseen objects rank
    /// last.
    pub fn rank(&self, object: &str) -> usize {
        let own = self.requests(object);
        if own == 0 {
            return self.requests.len();
        }
        self.requests.values().filter(|&&c| c > own).count()
    }

    /// Is `object` popular enough for immediate-start + patching?
    fn is_hot(&self, object: &str) -> bool {
        self.rank(object) < self.policy.hot_rank
    }

    /// The batching wait a fresh group for `object` should use.
    fn open_wait(&self, object: &str) -> MediaDuration {
        if self.policy.mode == SharingMode::BatchingPatching && self.is_hot(object) {
            MediaDuration::ZERO
        } else {
            self.policy.window
        }
    }

    /// Decide how to serve a request for `object`, given the phase of the
    /// object's current shared group (if any). Pure and deterministic.
    pub fn decide(&self, object: &str, existing: Option<GroupPhase>) -> ShareDecision {
        if self.policy.mode == SharingMode::Off {
            return ShareDecision::Unicast;
        }
        match existing {
            None => ShareDecision::OpenGroup {
                wait: self.open_wait(object),
            },
            Some(GroupPhase::Pending) => ShareDecision::JoinPending,
            Some(GroupPhase::Streaming { elapsed }) => {
                if self.policy.mode == SharingMode::BatchingPatching
                    && elapsed <= self.policy.max_patch
                {
                    ShareDecision::JoinWithPatch { offset: elapsed }
                } else {
                    // Too far behind to patch (or patching disabled): the
                    // request seeds the next batch for this object.
                    ShareDecision::OpenGroup {
                        wait: self.open_wait(object),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(mode: SharingMode) -> BatchingPolicy {
        BatchingPolicy::new(SharingPolicy {
            mode,
            window: MediaDuration::from_millis(1_000),
            max_patch: MediaDuration::from_millis(3_000),
            hot_rank: 1,
        })
    }

    #[test]
    fn off_is_always_unicast() {
        let mut p = policy(SharingMode::Off);
        p.on_request("v");
        assert_eq!(p.decide("v", None), ShareDecision::Unicast);
        assert_eq!(
            p.decide("v", Some(GroupPhase::Pending)),
            ShareDecision::Unicast
        );
    }

    #[test]
    fn batching_opens_then_joins_within_window() {
        let mut p = policy(SharingMode::Batching);
        p.on_request("v");
        assert_eq!(
            p.decide("v", None),
            ShareDecision::OpenGroup {
                wait: MediaDuration::from_millis(1_000)
            }
        );
        p.on_request("v");
        assert_eq!(
            p.decide("v", Some(GroupPhase::Pending)),
            ShareDecision::JoinPending
        );
        // Batching alone cannot join a started flow: next batch.
        assert_eq!(
            p.decide(
                "v",
                Some(GroupPhase::Streaming {
                    elapsed: MediaDuration::from_millis(10)
                })
            ),
            ShareDecision::OpenGroup {
                wait: MediaDuration::from_millis(1_000)
            }
        );
    }

    #[test]
    fn patching_joins_started_flows_within_bound() {
        let mut p = policy(SharingMode::BatchingPatching);
        for _ in 0..3 {
            p.on_request("v");
        }
        let near = GroupPhase::Streaming {
            elapsed: MediaDuration::from_millis(2_000),
        };
        assert_eq!(
            p.decide("v", Some(near)),
            ShareDecision::JoinWithPatch {
                offset: MediaDuration::from_millis(2_000)
            }
        );
        // Beyond max_patch the request seeds a new batch instead.
        let far = GroupPhase::Streaming {
            elapsed: MediaDuration::from_millis(3_001),
        };
        assert_eq!(
            p.decide("v", Some(far)),
            ShareDecision::OpenGroup {
                wait: MediaDuration::ZERO // "v" is the top-ranked object
            }
        );
    }

    #[test]
    fn hot_objects_start_immediately_cold_ones_wait() {
        let mut p = policy(SharingMode::BatchingPatching);
        for _ in 0..5 {
            p.on_request("hot");
        }
        p.on_request("cold");
        assert_eq!(p.rank("hot"), 0);
        assert_eq!(p.rank("cold"), 1);
        assert_eq!(p.rank("never-seen"), 2);
        assert_eq!(
            p.decide("hot", None),
            ShareDecision::OpenGroup {
                wait: MediaDuration::ZERO
            }
        );
        assert_eq!(
            p.decide("cold", None),
            ShareDecision::OpenGroup {
                wait: MediaDuration::from_millis(1_000)
            }
        );
    }

    #[test]
    fn rank_counts_strictly_greater() {
        let mut p = policy(SharingMode::Batching);
        p.on_request("a");
        p.on_request("b");
        // Equal counts share the best rank rather than shadow each other.
        assert_eq!(p.rank("a"), 0);
        assert_eq!(p.rank("b"), 0);
        assert_eq!(p.requests("a"), 1);
    }
}

#![allow(clippy::field_reassign_with_default)]
//! Reusable experiment harness: a parameterized streaming session (one
//! server, one client, a congestible access link) with full metric
//! extraction, plus a parallel sweep runner.

use hermes_client::{BufferConfig, PlayoutConfig};
use hermes_core::{
    GradingHysteresis, GradingOrder, MediaDuration, MediaTime, PricingClass, ServerId,
};
use hermes_service::{
    install_course, ClientConfig, LessonShape, ServerConfig, ServiceMsg, ServiceWorld, WorldBuilder,
};
use hermes_simnet::{CongestionProfile, JitterModel, LinkSpec, LossModel, Sim, SimRng};

/// Parameters of one streaming-session run.
#[derive(Debug, Clone)]
pub struct StreamingParams {
    /// RNG seed (world + engine).
    pub seed: u64,
    /// Access-link capacity, bits/second.
    pub access_bps: u64,
    /// Access-link queue capacity, bytes.
    pub queue_bytes: u64,
    /// Background congestion on the access link.
    pub congestion: CongestionProfile,
    /// Per-packet jitter on the access link.
    pub jitter: JitterModel,
    /// Per-packet loss on the access link.
    pub loss: LossModel,
    /// Client media time window (buffer prefill target).
    pub time_window: MediaDuration,
    /// Client playout/recovery configuration.
    pub playout: PlayoutConfig,
    /// Server grading enabled?
    pub grading: bool,
    /// Grading order (video-first vs audio-first ablation).
    pub grading_order: GradingOrder,
    /// Feedback report interval.
    pub feedback_interval: MediaDuration,
    /// Narrated-clip length of the lesson, seconds.
    pub clip_secs: i64,
    /// How long to run the simulation.
    pub horizon: MediaTime,
    /// Pricing class of the client. Playout/grading experiments default to
    /// Premium so the admission controller stays out of the way; the
    /// EXP-ADMIT experiment studies admission separately.
    pub class: PricingClass,
}

impl Default for StreamingParams {
    fn default() -> Self {
        StreamingParams {
            seed: 1,
            access_bps: 4_000_000,
            queue_bytes: 64 << 10,
            congestion: CongestionProfile::idle(),
            jitter: JitterModel::None,
            loss: LossModel::None,
            time_window: MediaDuration::from_millis(1_000),
            playout: PlayoutConfig::default(),
            grading: true,
            grading_order: GradingOrder::VideoFirst,
            feedback_interval: MediaDuration::from_millis(1_000),
            clip_secs: 20,
            horizon: MediaTime::from_secs(45),
            class: PricingClass::Premium,
        }
    }
}

/// Metrics extracted from one run.
#[derive(Debug, Clone, Default)]
pub struct StreamingMetrics {
    /// The presentation completed within the horizon.
    pub completed: bool,
    /// Startup (prefill) delay.
    pub startup: MediaDuration,
    /// Maximum intermedia skew observed between the A/V pair.
    pub max_skew: MediaDuration,
    /// Real frames presented.
    pub frames_played: u64,
    /// Duplicates presented (underflow smoothing).
    pub duplicates: u64,
    /// Visible glitches.
    pub glitches: u64,
    /// Frames dropped by occupancy/skew repair.
    pub dropped: u64,
    /// Buffer underflow events across streams.
    pub underflows: u64,
    /// Buffer overflow events across streams.
    pub overflows: u64,
    /// Grading degrade actions.
    pub degrades: u64,
    /// Grading upgrade actions.
    pub upgrades: u64,
    /// Grading stop actions.
    pub stops: u64,
    /// Datagrams dropped by the network.
    pub net_dropped: u64,
    /// Total packets the network carried.
    pub net_packets: u64,
    /// Bytes delivered by media servers.
    pub bytes_sent: u64,
}

/// The standard one-lesson shape used across experiments: a synchronized
/// audio+video clip (the skew-sensitive workload the paper's mechanisms
/// target).
pub fn standard_lesson(clip_secs: i64) -> LessonShape {
    LessonShape {
        images: 1,
        image_secs: 2,
        narrated_clip_secs: Some(clip_secs),
        closing_audio_secs: None,
    }
}

/// Run one streaming session with the given parameters and extract metrics.
pub fn run_streaming_session(p: &StreamingParams) -> StreamingMetrics {
    run_streaming_session_inner(p, true).0
}

fn run_streaming_session_inner(
    p: &StreamingParams,
    trace_enabled: bool,
) -> (StreamingMetrics, Sim<ServiceMsg, ServiceWorld>) {
    let mut b = WorldBuilder::new(p.seed);
    let mut server_cfg = ServerConfig::default();
    server_cfg.flow.media_time_window = p.time_window;
    if !p.grading {
        // Disable the long-term mechanism by an unreachable threshold.
        server_cfg.hysteresis = GradingHysteresis {
            degrade_above: 1e18,
            upgrade_below: 0.5,
            upgrade_patience: 3,
        };
    }
    server_cfg.grading_order = p.grading_order;
    let server = b.add_server(ServerId::new(0), LinkSpec::lan(100_000_000), server_cfg);

    let mut access = LinkSpec::lan(p.access_bps);
    access.queue_capacity_bytes = p.queue_bytes;
    access.congestion = p.congestion.clone();
    access.jitter = p.jitter.clone();
    access.loss = p.loss.clone();
    #[allow(clippy::field_reassign_with_default)]
    let mut client_cfg = ClientConfig::default();
    client_cfg.class = p.class;
    client_cfg.form.class = p.class;
    client_cfg.buffer = BufferConfig::with_window(p.time_window);
    client_cfg.playout = p.playout;
    client_cfg.feedback.interval = p.feedback_interval;
    let client = b.add_client(access, client_cfg);

    let mut sim: Sim<ServiceMsg, ServiceWorld> = b.build(p.seed);
    sim.obs_mut().set_enabled(trace_enabled);
    let mut rng = SimRng::seed_from_u64(p.seed.wrapping_mul(0x9E37_79B9));
    let lessons = install_course(
        sim.app_mut().server_mut(server),
        "Workload",
        &["experiment"],
        1,
        1,
        standard_lesson(p.clip_secs),
        &mut rng,
    );
    sim.with_api(|w, api| {
        w.client_mut(client).connect(api, server, Some(lessons[0]));
    });
    sim.run_until(p.horizon);

    let mut m = StreamingMetrics::default();
    let c = sim.app().client(client);
    m.completed = !c.completed.is_empty();
    if let Some((_, startup, skew)) = c.completed.first() {
        m.startup = *startup;
        m.max_skew = *skew;
    }
    if let Some(pres) = &c.presentation {
        let stats = pres.engine.total_stats();
        m.frames_played = stats.frames_played;
        m.duplicates = stats.duplicates_played;
        m.glitches = stats.glitches;
        m.dropped = stats.frames_dropped;
        m.max_skew = m.max_skew.max(pres.engine.max_skew_observed);
        if !m.completed {
            m.startup = pres.startup_delay().unwrap_or(MediaDuration::ZERO);
        }
        for s in pres.engine.streams() {
            if let Some(b) = &s.buffer {
                m.underflows += b.stats.underflow_events;
                m.overflows += b.stats.overflow_events;
            }
        }
    }
    let srv = sim.app().server(server);
    for sess in srv.sessions.values() {
        m.degrades += sess.qos.degrades_issued;
        m.upgrades += sess.qos.upgrades_issued;
        m.stops += sess.qos.stops_issued;
        m.bytes_sent += sess.streams.values().map(|t| t.bytes_sent).sum::<u64>();
    }
    let net = sim.net().total_stats();
    m.net_dropped = net.packets_lost + net.packets_dropped_queue;
    m.net_packets = net.packets_sent;
    (m, sim)
}

/// Run the same parameter point over several seeds in parallel (crossbeam
/// scoped threads) and return all metrics.
pub fn run_seeds(base: &StreamingParams, seeds: &[u64]) -> Vec<StreamingMetrics> {
    let mut out: Vec<Option<StreamingMetrics>> = vec![None; seeds.len()];
    crossbeam::scope(|scope| {
        for (slot, &seed) in out.iter_mut().zip(seeds) {
            let mut p = base.clone();
            p.seed = seed;
            scope.spawn(move |_| {
                *slot = Some(run_streaming_session(&p));
            });
        }
    })
    .expect("sweep worker panicked");
    out.into_iter().map(|m| m.unwrap()).collect()
}

/// Run one streaming session and hand back the observability capture along
/// with the metrics: the engine + actor counters are published into the
/// capture's registry before it is detached. `enabled` drives the runtime
/// trace toggle (the overhead benchmark's control knob).
pub fn run_streaming_session_traced(
    p: &StreamingParams,
    enabled: bool,
) -> (StreamingMetrics, hermes_simnet::Obs) {
    let (m, mut sim) = run_streaming_session_inner(p, enabled);
    sim.publish_metrics();
    let mut obs = sim.take_obs();
    sim.app().publish_metrics(&mut obs);
    (m, obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_completes_without_anomalies() {
        let m = run_streaming_session(&StreamingParams {
            clip_secs: 6,
            horizon: MediaTime::from_secs(20),
            ..Default::default()
        });
        assert!(m.completed);
        assert_eq!(m.glitches, 0);
        assert!(m.frames_played > 200);
        assert!(m.startup > MediaDuration::ZERO);
    }

    #[test]
    fn loss_makes_things_worse() {
        let clean = run_streaming_session(&StreamingParams {
            clip_secs: 6,
            horizon: MediaTime::from_secs(20),
            ..Default::default()
        });
        let lossy = run_streaming_session(&StreamingParams {
            clip_secs: 6,
            horizon: MediaTime::from_secs(20),
            loss: LossModel::Bernoulli { p: 0.08 },
            playout: PlayoutConfig::no_recovery(),
            grading: false,
            ..Default::default()
        });
        assert!(lossy.net_dropped > 0);
        // Loss shows up as skipped content (fewer real frames presented)
        // and larger intermedia skew, not necessarily starvation glitches:
        // a gap in the buffer makes playout jump to the next frame.
        assert!(
            lossy.frames_played < clean.frames_played,
            "lossy {lossy:?} vs clean {clean:?}"
        );
        assert!(lossy.max_skew > clean.max_skew);
    }

    #[test]
    fn parallel_seeds_deterministic() {
        let p = StreamingParams {
            clip_secs: 4,
            horizon: MediaTime::from_secs(15),
            ..Default::default()
        };
        let a = run_seeds(&p, &[1, 2]);
        let b = run_seeds(&p, &[1, 2]);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

//! EXP-SKEW — claim: the short-term drop/duplicate mechanism bounds
//! intermedia skew under network load.
//!
//! Sweep background load on the client's access link from 0 to 60% with the
//! short-term recovery (underflow duplication, overflow dropping, sync
//! enforcement) on vs. off, and report max A/V skew, glitches and repairs.
//! Each point is averaged over three seeds; points run in parallel.

use hermes_bench::harness::run_seeds;
use hermes_bench::{fmt_dur_ms, ExpOpts, StreamingParams, Table};
use hermes_bench::{max_dur_of, mean_of};
use hermes_client::PlayoutConfig;
use hermes_core::{MediaDuration, MediaTime};
use hermes_simnet::{CongestionEpoch, CongestionProfile, JitterModel, LossModel};

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let loads = [0.0, 0.1, 0.2, 0.3, 0.4, 0.45];
    let seeds = opts.seeds(&[11, 22, 33]);
    let mut t = Table::new(vec![
        "load",
        "recovery",
        "max skew (ms)",
        "glitches",
        "duplicates",
        "dropped",
        "frames",
    ]);
    out.line("workload: 20 s synchronized A/V clip over a 4 Mbps access link (32 KiB queue)");
    for &load in &loads {
        for &(label, playout) in &[
            ("on", PlayoutConfig::default()),
            ("off", PlayoutConfig::no_recovery()),
        ] {
            let p = StreamingParams {
                access_bps: 4_000_000,
                queue_bytes: 32 << 10,
                congestion: if load > 0.0 {
                    // Load also brings loss, as real cross-traffic does.
                    CongestionProfile::new(vec![CongestionEpoch {
                        start: hermes_core::MediaTime::ZERO,
                        end: hermes_core::MediaTime::MAX,
                        load,
                        extra_loss: load * 0.05,
                    }])
                } else {
                    CongestionProfile::idle()
                },
                jitter: JitterModel::Exponential {
                    mean: MediaDuration::from_millis(2),
                },
                loss: LossModel::Bernoulli { p: 0.002 },
                playout,
                grading: false, // isolate the short-term mechanism
                clip_secs: 20,
                horizon: MediaTime::from_secs(50),
                ..Default::default()
            };
            let runs = run_seeds(&p, &seeds);
            t.row(vec![
                format!("{:.0}%", load * 100.0),
                label.to_string(),
                fmt_dur_ms(max_dur_of(&runs, |m| m.max_skew)),
                format!("{:.0}", mean_of(&runs, |m| m.glitches as f64)),
                format!("{:.0}", mean_of(&runs, |m| m.duplicates as f64)),
                format!("{:.0}", mean_of(&runs, |m| m.dropped as f64)),
                format!("{:.0}", mean_of(&runs, |m| m.frames_played as f64)),
            ]);
        }
    }
    out.table(
        "EXP-SKEW — intermedia skew vs load, short-term recovery on/off (3 seeds)",
        &t,
    );
    out.line(
        "expected shape: skew grows with load; with recovery ON the skew stays bounded\n\
         (repairs appear as duplicates/drops) while OFF it grows unchecked.\n\
         Beyond ~45% load the nominal-rate flows no longer fit the link: admission\n\
         rejects them (EXP-ADMIT) and the grading engine must shed rate (EXP-GRADE).",
    );
}

//! Subscription, authentication and pricing primitives (§5, §6.2.1).
//!
//! "If the user is not a member of the service, the application prompts the
//! user to fill in a subscription form. This form contains personal data
//! such as name and address, telephone, e-mail, etc. By transmitting the
//! form to the service's server, the user accepts the pricing policy ...
//! a database entry of authorized users is updated while the pricing
//! mechanism is initialized."

use hermes_core::{DocumentId, MediaDuration, MediaTime, PricingClass, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The subscription form of §5.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubscriptionForm {
    /// Real name.
    pub name: String,
    /// Postal address.
    pub address: String,
    /// Telephone number.
    pub telephone: String,
    /// E-mail address (also the key for tutor interaction).
    pub email: String,
    /// The pricing contract the user accepts.
    pub class: PricingClass,
}

/// One entry of the "coherent, centralized database of authorized users".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserRecord {
    /// The user's id.
    pub id: UserId,
    /// The subscription form on file.
    pub form: SubscriptionForm,
    /// "specific information about the exact time logged into the service"
    /// — login timestamps.
    pub logins: Vec<MediaTime>,
    /// "as well as the lessons that are retrieved" — retrieval history.
    pub retrieved: Vec<DocumentId>,
}

/// A pricing event on a user's ledger.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Charge {
    /// Session connect fee.
    Connection,
    /// Per-document retrieval fee.
    Retrieval(DocumentId),
    /// Connection-time charge.
    Duration(MediaDuration),
    /// Data-volume charge (bytes delivered).
    Volume(u64),
}

impl Charge {
    /// Price in milli-credits under a pricing class.
    pub fn amount_millis(&self, class: PricingClass) -> u64 {
        // Premium pays a higher rate for priority; economy is cheapest.
        let rate = match class {
            PricingClass::Economy => 10,
            PricingClass::Standard => 15,
            PricingClass::Premium => 25,
        };
        match self {
            Charge::Connection => 100 * rate,
            Charge::Retrieval(_) => 50 * rate,
            Charge::Duration(d) => (d.as_millis().max(0) as u64 / 1_000) * rate,
            Charge::Volume(bytes) => (bytes / 100_000) * rate,
        }
    }
}

/// The user database plus pricing ledger of the service.
#[derive(Debug, Default)]
pub struct AccountsDb {
    users: BTreeMap<UserId, UserRecord>,
    next_user: u64,
    ledger: BTreeMap<UserId, u64>,
}

impl AccountsDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is the user an authorized subscriber?
    pub fn is_authorized(&self, user: UserId) -> bool {
        self.users.contains_key(&user)
    }

    /// Process a subscription form: creates the user entry and initializes
    /// the pricing mechanism. Returns the new user id.
    pub fn subscribe(&mut self, form: SubscriptionForm) -> UserId {
        let id = UserId::new(self.next_user);
        self.next_user += 1;
        self.users.insert(
            id,
            UserRecord {
                id,
                form,
                logins: Vec::new(),
                retrieved: Vec::new(),
            },
        );
        self.ledger.insert(id, 0);
        id
    }

    /// Register a subscription replicated from another server under its
    /// existing id ("this form is transmitted to every server of the
    /// service", §5). Keeps the id allocator ahead of replicated ids.
    pub fn register_replica(&mut self, id: UserId, form: SubscriptionForm) {
        self.next_user = self.next_user.max(id.raw() + 1);
        self.users.entry(id).or_insert_with(|| UserRecord {
            id,
            form,
            logins: Vec::new(),
            retrieved: Vec::new(),
        });
        self.ledger.entry(id).or_insert(0);
    }

    /// Record a login ("whenever a user is connected ... the exact time
    /// logged into the service ... \[is\] captured").
    pub fn record_login(&mut self, user: UserId, at: MediaTime) -> bool {
        match self.users.get_mut(&user) {
            Some(u) => {
                u.logins.push(at);
                true
            }
            None => false,
        }
    }

    /// Record a document retrieval.
    pub fn record_retrieval(&mut self, user: UserId, doc: DocumentId) -> bool {
        match self.users.get_mut(&user) {
            Some(u) => {
                u.retrieved.push(doc);
                true
            }
            None => false,
        }
    }

    /// Apply a charge to the user's ledger; returns the amount charged in
    /// milli-credits (None for unknown users).
    pub fn charge(&mut self, user: UserId, charge: Charge) -> Option<u64> {
        let class = self.users.get(&user)?.form.class;
        let amount = charge.amount_millis(class);
        *self.ledger.get_mut(&user)? += amount;
        Some(amount)
    }

    /// Total accrued charges for a user, milli-credits.
    pub fn balance(&self, user: UserId) -> Option<u64> {
        self.ledger.get(&user).copied()
    }

    /// The user's record.
    pub fn user(&self, user: UserId) -> Option<&UserRecord> {
        self.users.get(&user)
    }

    /// Number of subscribers.
    pub fn len(&self) -> usize {
        self.users.len()
    }
    /// True when nobody is subscribed.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn form(class: PricingClass) -> SubscriptionForm {
        SubscriptionForm {
            name: "Ada Lovelace".into(),
            address: "12 St James Sq".into(),
            telephone: "+44 20 0000".into(),
            email: "ada@example.org".into(),
            class,
        }
    }

    #[test]
    fn subscribe_then_authorized() {
        let mut db = AccountsDb::new();
        assert!(db.is_empty());
        let u = db.subscribe(form(PricingClass::Standard));
        assert!(db.is_authorized(u));
        assert!(!db.is_authorized(UserId::new(99)));
        assert_eq!(db.balance(u), Some(0));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn login_and_retrieval_history() {
        let mut db = AccountsDb::new();
        let u = db.subscribe(form(PricingClass::Economy));
        assert!(db.record_login(u, MediaTime::from_secs(100)));
        assert!(db.record_retrieval(u, DocumentId::new(5)));
        assert!(db.record_retrieval(u, DocumentId::new(6)));
        let rec = db.user(u).unwrap();
        assert_eq!(rec.logins, vec![MediaTime::from_secs(100)]);
        assert_eq!(rec.retrieved, vec![DocumentId::new(5), DocumentId::new(6)]);
        // Unknown users are rejected.
        assert!(!db.record_login(UserId::new(42), MediaTime::ZERO));
    }

    #[test]
    fn replica_registration_preserves_id() {
        let mut a = AccountsDb::new();
        let mut b = AccountsDb::new();
        let u = a.subscribe(form(PricingClass::Standard));
        b.register_replica(u, a.user(u).unwrap().form.clone());
        assert!(b.is_authorized(u));
        // The replica's allocator skips past the replicated id.
        let next = b.subscribe(form(PricingClass::Economy));
        assert!(next.raw() > u.raw());
        // Idempotent.
        b.register_replica(u, a.user(u).unwrap().form.clone());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn charges_accumulate_by_class() {
        let mut db = AccountsDb::new();
        let eco = db.subscribe(form(PricingClass::Economy));
        let prm = db.subscribe(form(PricingClass::Premium));
        db.charge(eco, Charge::Connection);
        db.charge(prm, Charge::Connection);
        assert_eq!(db.balance(eco), Some(1_000));
        assert_eq!(db.balance(prm), Some(2_500));
        db.charge(eco, Charge::Duration(MediaDuration::from_secs(120)));
        assert_eq!(db.balance(eco), Some(1_000 + 1_200));
        db.charge(eco, Charge::Volume(1_000_000));
        assert_eq!(db.balance(eco), Some(1_000 + 1_200 + 100));
        assert_eq!(db.charge(UserId::new(77), Charge::Connection), None);
    }

    #[test]
    fn retrieval_charge_scales_with_class() {
        assert_eq!(
            Charge::Retrieval(DocumentId::new(1)).amount_millis(PricingClass::Standard),
            750
        );
        assert!(
            Charge::Retrieval(DocumentId::new(1)).amount_millis(PricingClass::Premium)
                > Charge::Retrieval(DocumentId::new(1)).amount_millis(PricingClass::Economy)
        );
    }
}

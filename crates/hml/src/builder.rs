//! Programmatic document builder — the authoring API used by examples,
//! tests and workload generators to construct documents without writing
//! markup by hand.

use crate::ast::*;
use crate::values::SourceRef;
use hermes_core::{
    DocumentId, HeadingLevel, LinkKind, MediaDuration, MediaSource, MediaTime, Region, ServerId,
    TextStyle,
};

/// Fluent builder for [`HmlDocument`].
#[derive(Debug, Clone)]
pub struct DocumentBuilder {
    title: String,
    sentences: Vec<HSentence>,
    current: HSentence,
    next_id: u64,
}

fn empty_sentence() -> HSentence {
    HSentence {
        headings: Vec::new(),
        body: Vec::new(),
        separator: false,
    }
}

impl DocumentBuilder {
    /// Start a document with a title.
    pub fn new(title: impl Into<String>) -> Self {
        DocumentBuilder {
            title: title.into(),
            sentences: Vec::new(),
            current: empty_sentence(),
            next_id: 0,
        }
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Add a heading to the current sentence.
    pub fn heading(mut self, level: HeadingLevel, text: impl Into<String>) -> Self {
        self.current.headings.push(Heading {
            level,
            text: text.into(),
        });
        self
    }

    /// Add plain text.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.current.body.push(BodyItem::Text(TextElem {
            runs: vec![AstTextRun {
                text: text.into(),
                style: TextStyle::PLAIN,
            }],
            timing: Timing::default(),
            id: None,
        }));
        self
    }

    /// Add styled text runs.
    pub fn styled_text(mut self, runs: Vec<(String, TextStyle)>) -> Self {
        self.current.body.push(BodyItem::Text(TextElem {
            runs: runs
                .into_iter()
                .map(|(text, style)| AstTextRun { text, style })
                .collect(),
            timing: Timing::default(),
            id: None,
        }));
        self
    }

    /// Add a paragraph break.
    pub fn paragraph(mut self) -> Self {
        self.current.body.push(BodyItem::Paragraph);
        self
    }

    /// Add an image with timing and optional placement.
    pub fn image(
        mut self,
        source: MediaSource,
        start: MediaTime,
        duration: MediaDuration,
        region: Option<Region>,
    ) -> Self {
        let id = self.take_id();
        self.current.body.push(BodyItem::Image(ImageElem {
            source: SourceRef::Absolute(source),
            timing: Timing {
                start: Some(start),
                duration: Some(duration),
            },
            region,
            id: Some(id),
            note: None,
            encoding: None,
        }));
        self
    }

    /// Add an audio clip.
    pub fn audio(mut self, source: MediaSource, start: MediaTime, duration: MediaDuration) -> Self {
        let id = self.take_id();
        self.current.body.push(BodyItem::Audio(AudioElem {
            source: SourceRef::Absolute(source),
            timing: Timing {
                start: Some(start),
                duration: Some(duration),
            },
            id: Some(id),
            note: None,
            encoding: None,
            sync: None,
        }));
        self
    }

    /// Add a video clip.
    pub fn video(mut self, source: MediaSource, start: MediaTime, duration: MediaDuration) -> Self {
        let id = self.take_id();
        self.current.body.push(BodyItem::Video(VideoElem {
            source: SourceRef::Absolute(source),
            timing: Timing {
                start: Some(start),
                duration: Some(duration),
            },
            region: None,
            id: Some(id),
            note: None,
            encoding: None,
            sync: None,
        }));
        self
    }

    /// Add a synchronized audio+video pair (the `AU_VI` construct).
    pub fn audio_video(
        mut self,
        audio_source: MediaSource,
        video_source: MediaSource,
        start: MediaTime,
        duration: MediaDuration,
    ) -> Self {
        let a_id = self.take_id();
        let v_id = self.take_id();
        let timing = Timing {
            start: Some(start),
            duration: Some(duration),
        };
        self.current.body.push(BodyItem::AudioVideo(AudioVideoElem {
            audio: AudioElem {
                source: SourceRef::Absolute(audio_source),
                timing,
                id: Some(a_id),
                note: None,
                encoding: None,
                sync: None,
            },
            video: VideoElem {
                source: SourceRef::Absolute(video_source),
                timing,
                region: None,
                id: Some(v_id),
                note: None,
                encoding: None,
                sync: None,
            },
            note: None,
        }));
        self
    }

    /// Add a local hyperlink.
    pub fn link(mut self, kind: LinkKind, to: DocumentId, at: Option<MediaTime>) -> Self {
        self.current.body.push(BodyItem::Link(LinkElem {
            kind,
            to,
            host: None,
            at,
            note: None,
        }));
        self
    }

    /// Add a remote hyperlink (another multimedia server).
    pub fn remote_link(
        mut self,
        kind: LinkKind,
        host: ServerId,
        to: DocumentId,
        at: Option<MediaTime>,
    ) -> Self {
        self.current.body.push(BodyItem::Link(LinkElem {
            kind,
            to,
            host: Some(host),
            at,
            note: None,
        }));
        self
    }

    /// Close the current sentence with a separator and start a new one.
    pub fn separator(mut self) -> Self {
        self.current.separator = true;
        let s = std::mem::replace(&mut self.current, empty_sentence());
        self.sentences.push(s);
        self
    }

    /// Finish and return the document AST.
    pub fn build(mut self) -> HmlDocument {
        if !self.current.headings.is_empty() || !self.current.body.is_empty() {
            self.sentences.push(self.current);
        }
        HmlDocument {
            title: self.title,
            sentences: self.sentences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::scenario_build::build_scenario;
    use crate::serializer::serialize;

    #[test]
    fn builder_round_trips_through_markup() {
        let srv = ServerId::new(0);
        let doc = DocumentBuilder::new("Lesson 1")
            .heading(HeadingLevel::H1, "Introduction")
            .text("Welcome to the course")
            .paragraph()
            .image(
                MediaSource::new(srv, "fig1.jpg"),
                MediaTime::ZERO,
                MediaDuration::from_secs(5),
                Some(Region::new(0, 0, 320, 200)),
            )
            .audio_video(
                MediaSource::new(srv, "nar.pcm"),
                MediaSource::new(srv, "clip.mpg"),
                MediaTime::from_secs(5),
                MediaDuration::from_secs(10),
            )
            .separator()
            .heading(HeadingLevel::H2, "Next")
            .link(
                LinkKind::Sequential,
                DocumentId::new(2),
                Some(MediaTime::from_secs(20)),
            )
            .build();
        assert_eq!(doc.sentences.len(), 2);
        let text = serialize(&doc);
        let reparsed = parse(&text).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn builder_output_lowers_to_well_formed_scenario() {
        let srv = ServerId::new(1);
        let doc = DocumentBuilder::new("x")
            .audio_video(
                MediaSource::new(srv, "a.pcm"),
                MediaSource::new(srv, "v.mpg"),
                MediaTime::ZERO,
                MediaDuration::from_secs(8),
            )
            .build();
        let s = build_scenario(&doc, DocumentId::new(1), srv).unwrap();
        assert!(s.is_well_formed(), "{:?}", s.validate());
        assert_eq!(s.sync_groups.len(), 1);
    }

    #[test]
    fn builder_ids_unique() {
        let srv = ServerId::new(0);
        let doc = DocumentBuilder::new("x")
            .image(
                MediaSource::new(srv, "a.jpg"),
                MediaTime::ZERO,
                MediaDuration::from_secs(1),
                None,
            )
            .video(
                MediaSource::new(srv, "v.mpg"),
                MediaTime::ZERO,
                MediaDuration::from_secs(1),
            )
            .build();
        let ids: Vec<_> = doc
            .body_items()
            .filter_map(|b| match b {
                BodyItem::Image(i) => i.id,
                BodyItem::Video(v) => v.id,
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![0, 1]);
    }
}

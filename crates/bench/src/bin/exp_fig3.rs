//! FIG3 — the general architecture, exercised end to end: one session over
//! a loaded WAN path, with every component of the figure reporting what it
//! did — connection establishment & admission, multimedia database
//! retrieval, flow scheduler, media servers, client/server QoS managers,
//! media stream quality converters, buffers and the presentation scheduler.

use hermes_bench::{fmt_dur_ms, ExpOpts, Table};
use hermes_core::MediaDuration;
use hermes_core::{MediaTime, ServerId};
use hermes_server::{compute_flow_scenario, FlowConfig};
use hermes_service::{install_course, ClientConfig, LessonShape, ServerConfig, WorldBuilder};
use hermes_simnet::{CongestionEpoch, CongestionProfile, JitterModel, LinkSpec, LossModel, SimRng};

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let seed = opts.seed(31);
    let mut b = WorldBuilder::new(seed);
    let server = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(50_000_000),
        ServerConfig::default(),
    );
    // Loaded WAN access path.
    let mut access = LinkSpec::wan(5_000_000, 12);
    access.queue_capacity_bytes = 96 << 10;
    access.jitter = JitterModel::Exponential {
        mean: MediaDuration::from_millis(3),
    };
    access.loss = LossModel::GilbertElliott {
        p_gb: 0.005,
        p_bg: 0.2,
        loss_good: 0.001,
        loss_bad: 0.15,
    };
    access.congestion = CongestionProfile::new(vec![CongestionEpoch {
        start: MediaTime::from_secs(10),
        end: MediaTime::from_secs(18),
        load: 0.65,
        extra_loss: 0.02,
    }]);
    let client = b.add_client(access, ClientConfig::default());
    let mut sim = b.build(seed);

    let mut rng = SimRng::seed_from_u64(seed.wrapping_add(1));
    let lessons = install_course(
        sim.app_mut().server_mut(server),
        "Architecture",
        &["components"],
        1,
        1,
        LessonShape {
            images: 2,
            image_secs: 3,
            narrated_clip_secs: Some(20),
            closing_audio_secs: Some(3),
        },
        &mut rng,
    );

    // Show the flow scheduler's output before running (Fig. 3's server half).
    {
        let doc = sim.app().server(server).db.document(lessons[0]).unwrap();
        let flow = compute_flow_scenario(&doc.scenario, FlowConfig::default());
        let mut t = Table::new(vec![
            "component",
            "kind",
            "send start",
            "duration",
            "rate kbps",
            "media server",
        ]);
        for p in &flow.plans {
            t.row(vec![
                p.component.to_string(),
                p.kind.to_string(),
                p.send_start.to_string(),
                p.duration.to_string(),
                (p.rate_bps / 1000).to_string(),
                format!("{}-server", p.kind),
            ]);
        }
        out.table("flow scheduler — computed flow scenario", &t);
        out.line(&format!(
            "aggregate reserved bandwidth: {} kbps (lead {})",
            flow.aggregate_bandwidth_bps() / 1000,
            flow.lead
        ));
    }

    sim.with_api(|w, api| {
        w.client_mut(client).connect(api, server, Some(lessons[0]));
    });
    sim.run_until(MediaTime::from_secs(45));

    // Per-component report.
    let c = sim.app().client(client);
    let srv = sim.app().server(server);
    assert!(c.errors.is_empty(), "{:?}", c.errors);

    let mut t = Table::new(vec!["architecture component", "activity"]);
    t.row(vec![
        "connection establishment".to_string(),
        format!(
            "1 connect, admission: {} admitted / {} rejected",
            srv.admission
                .stats
                .values()
                .map(|s| s.admitted)
                .sum::<u64>(),
            srv.admission
                .stats
                .values()
                .map(|s| s.rejected)
                .sum::<u64>()
        ),
    ]);
    t.row(vec![
        "multimedia database".to_string(),
        format!(
            "{} documents, {} topics",
            srv.db.len(),
            srv.db.topics().len()
        ),
    ]);
    let (_, sess) = srv.sessions.iter().next().unwrap();
    t.row(vec![
        "media servers".to_string(),
        format!(
            "{} streams activated, {} frames / {} KiB transmitted",
            sess.streams.len(),
            sess.streams.values().map(|s| s.frames_sent).sum::<u64>(),
            sess.streams.values().map(|s| s.bytes_sent).sum::<u64>() / 1024
        ),
    ]);
    t.row(vec![
        "client QoS manager".to_string(),
        format!("{} feedback reports sent", c.qos.reports_sent),
    ]);
    t.row(vec![
        "server QoS manager + quality converters".to_string(),
        format!(
            "{} degrades, {} upgrades, {} stops",
            sess.qos.degrades_issued, sess.qos.upgrades_issued, sess.qos.stops_issued
        ),
    ]);
    let p = c.presentation.as_ref().unwrap();
    let mut under = 0;
    let mut over = 0;
    for s in p.engine.streams() {
        if let Some(bf) = &s.buffer {
            under += bf.stats.underflow_events;
            over += bf.stats.overflow_events;
        }
    }
    t.row(vec![
        "media buffers (time windows)".to_string(),
        format!("{} underflow events, {} overflow events", under, over),
    ]);
    let stats = p.engine.total_stats();
    t.row(vec![
        "presentation scheduler".to_string(),
        format!(
            "{} frames played, {} duplicates, {} glitches, {} dropped, max skew {}",
            stats.frames_played,
            stats.duplicates_played,
            stats.glitches,
            stats.frames_dropped,
            fmt_dur_ms(p.engine.max_skew_observed) + " ms"
        ),
    ]);
    let net = sim.net().total_stats();
    t.row(vec![
        "broadband network".to_string(),
        format!(
            "{} packets / {} KiB carried, {} lost, {} queue-dropped",
            net.packets_sent,
            net.bytes_sent / 1024,
            net.packets_lost,
            net.packets_dropped_queue
        ),
    ]);
    out.table(
        "Fig. 3 — per-component activity over one loaded session",
        &t,
    );

    assert!(c.qos.reports_sent > 10, "feedback loop ran");
    assert!(
        sess.qos.degrades_issued > 0,
        "congestion epoch must drive the grading engine"
    );
    out.line("FIG3 reproduction ✓ (all architecture components active)");
}

//! CHAOS — randomized fault injection with global invariant checking and
//! failing-seed shrinking, FoundationDB-style: sweep N seeds, each
//! generating a random (but fully deterministic) fault plan — crash
//! storms, rolling restarts, partitions, link flaps, brownouts — against a
//! fixed two-server / three-media-node / six-client deployment; after each
//! run, judge the observability capture against the global invariant
//! catalog (epoch monotonicity, session lifecycle, frame discipline,
//! breaker legality, conservation of media-part accounting, bounded
//! recovery). Any violating seed is delta-debugged down to a minimal
//! fault plan, printed as a ready-to-paste `FaultPlan` literal alongside
//! the flight-recorder context.
//!
//! Flags: `--chaos-seeds N` (sweep width; smoke default 200, full 500),
//! `--chaos-intensity X` (incident-rate multiplier), `--seed N` (base of
//! the seed range).

use hermes_bench::chaos::{plan_for_seed, profile, run_chaos_seed, shrink_failing, FAULTS_END};
use hermes_bench::{ExpOpts, Table};

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let base = opts.seed(1);
    let seeds = opts.chaos_seeds(if opts.smoke { 200 } else { 500 });
    let intensity = opts.chaos_intensity();
    let p = profile(intensity);
    out.line(&format!(
        "workload: {seeds} seeded fault plans (base seed {base}, intensity {intensity}), \
         ~{:.1} incidents over a {} s injection window,\n\
         2 servers / 3 media nodes / 6 clients; every run judged against the \
         global invariant catalog",
        p.incident_rate * ((p.end - p.start).as_micros() as f64 / 1e6),
        (FAULTS_END.as_micros()) / 1_000_000,
    ));
    if !hermes_simnet::obs::TRACE_COMPILED {
        out.line(
            "trace feature compiled out — event-stream invariants are vacuous; \
             registry invariants (frame discipline, conservation) still checked",
        );
    }

    let mut t = Table::new(vec![
        "seeds",
        "faults",
        "done",
        "rebuilds",
        "abandoned",
        "expired",
        "violations",
    ]);
    let mut fault_events = 0usize;
    let mut completed = 0usize;
    let mut rebuilds = 0usize;
    let mut abandoned = 0usize;
    let mut expired = 0usize;
    let mut failing: Vec<u64> = Vec::new();
    for seed in base..base + seeds {
        let (plan, report) = run_chaos_seed(seed, intensity, false);
        fault_events += plan.raw_events().len();
        completed += report.completed;
        rebuilds += report.rebuilds;
        abandoned += report.abandoned;
        expired += report.expired;
        if !report.violations.is_empty() {
            failing.push(seed);
            out.line(&format!("\n!! seed {seed} violated invariants:"));
            for v in &report.violations {
                out.line(&format!("   {}", v.render()));
            }
        }
    }
    t.row(vec![
        seeds.to_string(),
        fault_events.to_string(),
        completed.to_string(),
        rebuilds.to_string(),
        abandoned.to_string(),
        expired.to_string(),
        failing.len().to_string(),
    ]);
    out.table(
        &format!("Chaos sweep, intensity {intensity} (totals across seeds)"),
        &t,
    );

    // Shrink every failing seed to a minimal reproducer before failing the
    // run: the literal below is the bug report.
    for &seed in &failing {
        let plan = plan_for_seed(seed, intensity);
        out.line(&format!(
            "\n== seed {seed}: shrinking {}-event plan ==",
            plan.raw_events().len()
        ));
        let (minimal, violations) = shrink_failing(seed, &plan, false);
        out.line(&format!(
            "minimal reproducer ({} events):",
            minimal.raw_events().len()
        ));
        out.line(&minimal.to_rust_literal());
        for v in &violations {
            out.line(&format!("   {}", v.render()));
        }
        let report = hermes_bench::chaos::run_chaos_plan(seed, &minimal, false);
        if !report.flight.is_empty() {
            out.line("flight-recorder context:");
            out.line(&report.flight);
        }
    }
    out.line("");
    out.line(&format!(
        "{} recoveries and {} clean client abandons rode out {} injected fault \
         events with every invariant holding",
        rebuilds, abandoned, fault_events
    ));
    assert!(
        failing.is_empty(),
        "{} of {} chaos seeds violated invariants: {:?}",
        failing.len(),
        seeds,
        failing
    );
}

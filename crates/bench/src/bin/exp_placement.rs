//! PLACEMENT — the distributed media tier under replication and cache
//! sweeps, plus a fault-injected failover cell.
//!
//! The paper's architecture (§2, §6.1) attaches dedicated media servers to
//! the multimedia server but never evaluates how content should be spread
//! across them. Here the Fig. 2 document is distributed over four media
//! nodes via rendezvous-hash placement and streamed to staggered shared
//! viewers, sweeping the replication factor and the segment-cache budget;
//! one extra cell crashes a live media node mid-playout and must fail over.

use hermes_bench::{ExpOpts, Table};
use hermes_core::{DocumentId, MediaDuration, MediaTime, ServerId};
use hermes_service::{install_figure2, ClientConfig, MediaTierConfig, ServerConfig, WorldBuilder};
use hermes_simnet::{FaultKind, LinkSpec, SimRng};

const MEDIA_NODES: usize = 4;
const CLIENTS: usize = 2;

struct Cell {
    label: &'static str,
    replication: usize,
    cache_bytes: u64,
    completed: usize,
    errors: usize,
    startup: MediaDuration,
    hit_rate: f64,
    fetches: u64,
    node_loads: Vec<u64>,
    failovers: u64,
}

fn run_cell(
    label: &'static str,
    replication: usize,
    cache_bytes: u64,
    crash: bool,
    seed: u64,
) -> Cell {
    let mut b = WorldBuilder::new(seed);
    let srv = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(50_000_000),
        ServerConfig::default(),
    );
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default()))
        .collect();
    for _ in 0..MEDIA_NODES {
        b.add_media_node(LinkSpec::san(100_000_000));
    }
    b.media_config(MediaTierConfig {
        replication,
        cache_bytes,
        ..Default::default()
    });
    let mut sim = b.build(seed);
    let mut rng = SimRng::seed_from_u64(seed.wrapping_add(1));
    install_figure2(sim.app_mut().server_mut(srv), DocumentId::new(1), &mut rng);
    sim.app_mut().distribute_media();

    // Staggered shared viewers: the second client arrives 500 ms behind the
    // first, so its fetches trail through segments the first viewer already
    // pulled — the interval-caching sharing window.
    for (i, &cli) in clients.iter().enumerate() {
        sim.run_until(MediaTime::from_millis(500 * i as i64));
        sim.with_api(|w, api| {
            w.client_mut(cli)
                .connect(api, srv, Some(DocumentId::new(1)));
        });
    }
    sim.run_until(MediaTime::from_secs(6));
    if crash {
        let victim = sim
            .app()
            .server(srv)
            .sessions
            .values()
            .flat_map(|s| s.streams.values())
            .filter(|tx| !tx.done && !tx.stopped && tx.plan.kind.is_continuous())
            .filter_map(|tx| tx.remote.as_ref().map(|r| r.replica))
            .next()
            .expect("no active tier-backed stream at 6 s");
        sim.inject_fault(
            MediaTime::from_secs(6),
            FaultKind::NodeCrash { node: victim },
        );
    }
    sim.run_until(MediaTime::from_secs(45));

    let mut completed = 0;
    let mut errors = 0;
    let mut startup_us = 0i64;
    for &cli in &clients {
        let c = sim.app().client(cli);
        completed += c.completed.len();
        errors += c.errors.len();
        startup_us += c
            .completed
            .first()
            .map(|&(_, s, _)| s.as_micros())
            .unwrap_or(0);
    }
    let server = sim.app().server(srv);
    let tier = server.media.as_ref().expect("media tier not deployed");
    let node_loads = sim
        .app()
        .media_nodes
        .values()
        .map(|m| m.stats.requests_served)
        .collect();
    Cell {
        label,
        replication,
        cache_bytes,
        completed,
        errors,
        startup: MediaDuration::from_micros(startup_us / CLIENTS as i64),
        hit_rate: tier.cache.stats.hit_rate(),
        fetches: tier.stats.fetches,
        node_loads,
        failovers: tier.stats.failovers,
    }
}

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let seed = opts.seed(31);
    let cells = [
        run_cell("no-replication, no-cache", 1, 0, false, seed),
        run_cell("paired replicas, 256 KB", 2, 256 * 1024, false, seed),
        run_cell("paired replicas, 1 MB", 2, 1024 * 1024, false, seed),
        run_cell("triple replicas, 1 MB", 3, 1024 * 1024, false, seed),
        run_cell("paired + node crash @6s", 2, 1024 * 1024, true, seed),
    ];

    let mut t = Table::new(vec![
        "cell",
        "repl",
        "cache",
        "completed",
        "startup",
        "hit rate",
        "fetches",
        "node load (req/node)",
        "failovers",
    ]);
    for c in &cells {
        t.row(vec![
            c.label.to_string(),
            c.replication.to_string(),
            if c.cache_bytes == 0 {
                "off".into()
            } else {
                format!("{} KB", c.cache_bytes / 1024)
            },
            format!("{}/{CLIENTS}", c.completed),
            format!("{:.1} ms", c.startup.as_micros() as f64 / 1000.0),
            format!("{:.0}%", c.hit_rate * 100.0),
            c.fetches.to_string(),
            c.node_loads
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join("/"),
            c.failovers.to_string(),
        ]);
    }
    out.table(
        &format!("Fig. 2 over {MEDIA_NODES} media nodes, {CLIENTS} staggered shared viewers"),
        &t,
    );
    out.line("");
    out.line(
        "Rendezvous placement spreads the catalog; the interval cache admits\n\
         only segments with concurrent readers, so the trailing viewer rides\n\
         the leader's fetches. A crashed replica re-points its live streams\n\
         at a survivor and playout completes without loss.",
    );

    for c in &cells {
        assert_eq!(
            c.completed, CLIENTS,
            "{}: only {}/{CLIENTS} presentations completed",
            c.label, c.completed
        );
        assert_eq!(c.errors, 0, "{}: client errors", c.label);
        assert!(c.fetches > 0, "{}: tier never fetched", c.label);
    }
    // No cache → every lookup misses; a shared-viewer cache must hit.
    assert_eq!(cells[0].hit_rate, 0.0, "cache disabled yet hits recorded");
    assert!(
        cells[2].hit_rate > 0.10,
        "shared viewers produced no cache sharing: {:.2}",
        cells[2].hit_rate
    );
    // Caching shrinks network fetch volume vs. the uncached cell.
    assert!(
        cells[2].fetches < cells[0].fetches,
        "cache did not reduce fetch volume"
    );
    // Only the crash cell fails over.
    assert!(cells[..4].iter().all(|c| c.failovers == 0));
    assert!(
        cells[4].failovers >= 1,
        "media-node crash triggered no failover"
    );
}

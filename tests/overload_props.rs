//! Property tests on the overload-control primitives: the circuit breaker
//! can never get stuck Open (recovery is always reachable through probes),
//! half-open probe traffic is strictly bounded, the retry budget matches a
//! token-bucket reference model exactly (storms are bounded, tokens never
//! exceed capacity), and the bounded request queue conserves every request
//! it accepts.

use hermes_od::core::{MediaDuration, MediaTime, PricingClass};
use hermes_od::server::{
    BreakerConfig, BreakerState, NodeHealth, OverloadQueue, QueuedRequest, RetryBudget,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// One randomly chosen interaction with a node's health record.
#[derive(Debug, Clone)]
enum BreakerOp {
    /// Advance time by this many microseconds, then try to admit a fetch.
    Admit(i64),
    /// Advance time, then record a success with the given latency (µs).
    Success(i64, i64),
    /// Advance time, then record a failure.
    Failure(i64),
    /// Abandon one outstanding fetch with no verdict.
    Abandon,
}

fn breaker_op() -> impl Strategy<Value = BreakerOp> {
    // Latencies straddle the default 250 ms threshold; time steps straddle
    // the 500 ms open timeout so sequences hit every state transition.
    prop_oneof![
        (0i64..700_000).prop_map(BreakerOp::Admit),
        ((0i64..700_000), (0i64..600_000)).prop_map(|(dt, l)| BreakerOp::Success(dt, l)),
        (0i64..700_000).prop_map(BreakerOp::Failure),
        Just(BreakerOp::Abandon),
    ]
}

fn drive(cfg: &BreakerConfig, ops: &[BreakerOp]) -> (NodeHealth, MediaTime) {
    let mut h = NodeHealth::default();
    let mut now = MediaTime::ZERO;
    for op in ops {
        match *op {
            BreakerOp::Admit(dt) => {
                now += MediaDuration::from_micros(dt);
                let _ = h.admit(cfg, now);
            }
            BreakerOp::Success(dt, lat) => {
                now += MediaDuration::from_micros(dt);
                h.record_success(cfg, now, MediaDuration::from_micros(lat));
            }
            BreakerOp::Failure(dt) => {
                now += MediaDuration::from_micros(dt);
                h.record_failure(cfg, now);
            }
            BreakerOp::Abandon => h.record_abandon(),
        }
    }
    (h, now)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// From any reachable breaker state, a healthy replica always recovers:
    /// waiting out the open timeout admits probes, and enough fast probe
    /// successes close the circuit. No sequence of outcomes can wedge the
    /// breaker Open forever.
    #[test]
    fn breaker_never_stuck_open(ops in proptest::collection::vec(breaker_op(), 0..80)) {
        let cfg = BreakerConfig::default();
        let (mut h, mut now) = drive(&cfg, &ops);
        // Recovery drive: resolve every admission instantly and favourably.
        let budget = cfg.close_successes + cfg.half_open_probes + 2;
        for _ in 0..budget {
            if h.state == BreakerState::Closed {
                break;
            }
            now += cfg.open_timeout;
            prop_assert!(
                h.admit(&cfg, now),
                "breaker refused a probe a full open_timeout after {:?}",
                h.state
            );
            h.record_success(&cfg, now, MediaDuration::ZERO);
        }
        prop_assert_eq!(h.state, BreakerState::Closed);
    }

    /// From any reachable state, a burst of admission attempts at one
    /// instant grants at most `half_open_probes` fetches unless the circuit
    /// is fully Closed — probe traffic to a sick replica is strictly
    /// bounded no matter what history preceded it.
    #[test]
    fn half_open_probe_burst_is_bounded(ops in proptest::collection::vec(breaker_op(), 0..80)) {
        let cfg = BreakerConfig::default();
        let (h, now) = drive(&cfg, &ops);
        if h.state == BreakerState::Closed {
            return Ok(()); // closed circuits meter nothing, by design
        }
        let mut probe = h.clone();
        let burst = now + cfg.open_timeout; // enough for Open → HalfOpen
        let mut granted = 0u32;
        for _ in 0..(cfg.half_open_probes + 5) {
            if probe.admit(&cfg, burst) {
                granted += 1;
            }
        }
        prop_assert!(
            granted <= cfg.half_open_probes,
            "{granted} probes admitted in one burst (cap {})",
            cfg.half_open_probes
        );
    }
}

// ---------------------------------------------------------------------------
// Retry budget
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The budget tracks a saturating token-bucket reference exactly: tokens
    /// never exceed capacity or go negative, every grant is backed by a
    /// token, and a pure retry storm is bounded by the initial fill.
    #[test]
    fn retry_budget_matches_reference(
        cap in 1u32..20,
        ops in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut b = RetryBudget::new(cap);
        let mut model = cap; // reference token count
        let mut granted = 0u64;
        let mut refills = 0u64;
        for &spend in &ops {
            if spend {
                let got = b.try_spend();
                prop_assert_eq!(got, model > 0, "grant must mirror token availability");
                if got {
                    model -= 1;
                    granted += 1;
                }
            } else {
                b.on_success();
                model = (model + 1).min(cap);
                refills += 1;
            }
            prop_assert_eq!(b.tokens(), model);
            prop_assert!(b.tokens() <= cap, "bucket overfilled");
            // A storm can never spend more than capacity plus refills.
            prop_assert!(granted <= cap as u64 + refills);
        }
        prop_assert_eq!(b.spent, granted);
        prop_assert_eq!(b.suppressed, ops.iter().filter(|&&s| s).count() as u64 - granted);
    }
}

// ---------------------------------------------------------------------------
// Bounded request queue
// ---------------------------------------------------------------------------

/// One randomly chosen interaction with the request queue.
#[derive(Debug, Clone)]
enum QueueOp {
    /// Advance time, then push a request with this deadline offset/class.
    Push(i64, i64, u8),
    /// Advance time, then expire + pop one request.
    Pop(i64),
    /// Advance time, then shed everything past its deadline.
    Expire(i64),
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    let class = 0u8..3;
    prop_oneof![
        ((0i64..5_000), (-2_000i64..20_000), class.clone())
            .prop_map(|(dt, dl, c)| QueueOp::Push(dt, dl, c)),
        (0i64..5_000).prop_map(QueueOp::Pop),
        (0i64..5_000).prop_map(QueueOp::Expire),
    ]
}

fn class_of(c: u8) -> PricingClass {
    match c {
        0 => PricingClass::Economy,
        1 => PricingClass::Standard,
        _ => PricingClass::Premium,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any interleaving of pushes, pops and expiries: the queue never
    /// exceeds its capacity, never serves a request whose deadline already
    /// passed at dispatch, and conserves every accepted request — enqueued
    /// equals served plus shed plus still-queued, always.
    #[test]
    fn queue_conserves_and_never_serves_dead_work(
        cap in 1usize..6,
        ops in proptest::collection::vec(queue_op(), 0..120),
    ) {
        let mut q: OverloadQueue<u64> = OverloadQueue::new(cap);
        let mut now = MediaTime::ZERO;
        let mut id = 0u64;
        for op in &ops {
            match *op {
                QueueOp::Push(dt, dl, c) => {
                    now += MediaDuration::from_micros(dt);
                    id += 1;
                    let req = QueuedRequest {
                        item: id,
                        enqueued_at: now,
                        deadline: now + MediaDuration::from_micros(dl),
                        class: class_of(c),
                    };
                    let _ = q.push(req, now);
                }
                QueueOp::Pop(dt) => {
                    now += MediaDuration::from_micros(dt);
                    let _ = q.expire(now);
                    if let Some(r) = q.pop() {
                        prop_assert!(
                            r.deadline >= now,
                            "served request {} was already dead at dispatch",
                            r.item
                        );
                    }
                }
                QueueOp::Expire(dt) => {
                    now += MediaDuration::from_micros(dt);
                    for shed in q.expire(now) {
                        prop_assert!(shed.deadline < now, "live request shed as expired");
                    }
                }
            }
            prop_assert!(q.len() <= cap, "queue over capacity");
            let s = q.stats;
            prop_assert_eq!(
                s.enqueued,
                s.served + s.shed_deadline + s.shed_capacity + q.len() as u64,
                "request conservation violated"
            );
        }
    }
}

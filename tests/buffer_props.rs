//! Property tests on the media buffer: pts ordering, accounting invariants
//! and repair-operation safety under arbitrary operation sequences.

use hermes_od::client::buffers::Popped;
use hermes_od::client::{BufferConfig, MediaBuffer};
use hermes_od::core::{ComponentId, GradeLevel, MediaDuration, MediaTime};
use hermes_od::media::MediaFrame;
use proptest::prelude::*;

fn frame(seq: u64, pts_ms: i64, last: bool) -> MediaFrame {
    MediaFrame {
        component: ComponentId::new(1),
        seq,
        pts: MediaTime::from_millis(pts_ms),
        size: 500,
        key: true,
        level: GradeLevel::NOMINAL,
        last,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Push(i64),
    Pop,
    Drop(u8),
    DropStale(i64, u8),
    Duplicate(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..10_000).prop_map(Op::Push),
        Just(Op::Pop),
        (0u8..10).prop_map(Op::Drop),
        ((0i64..10_000), (0u8..10)).prop_map(|(p, n)| Op::DropStale(p, n)),
        (0u8..6).prop_map(Op::Duplicate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any operation sequence the buffer's accounting balances:
    /// in == out + dropped + still-staged (for real frames), length never
    /// exceeds capacity, and real frames pop in pts order.
    #[test]
    fn accounting_balances(ops in proptest::collection::vec(op(), 0..120)) {
        let cfg = BufferConfig {
            time_window: MediaDuration::from_millis(400),
            low_watermark: 0.25,
            high_watermark: 1.75,
            capacity_frames: 32,
        };
        let mut b = MediaBuffer::new(ComponentId::new(1), cfg, MediaDuration::from_millis(40));
        let mut seq = 0u64;
        let mut popped_real = 0u64;
        let mut popped_dups = 0u64;
        for o in ops {
            match o {
                Op::Push(pts) => {
                    b.push(frame(seq, pts, false));
                    seq += 1;
                }
                Op::Pop => match b.pop() {
                    Some(Popped::Frame(f)) => {
                        // A popped frame is never later than anything still
                        // staged: the buffer serves the timeline in order.
                        if let Some(head) = b.peek() {
                            prop_assert!(
                                f.pts <= head.pts,
                                "pts order violated: popped {} ahead of staged {}",
                                f.pts,
                                head.pts
                            );
                        }
                        popped_real += 1;
                    }
                    Some(Popped::Duplicate) => popped_dups += 1,
                    None => prop_assert!(b.is_empty()),
                },
                Op::Drop(n) => {
                    b.drop_frames(n as u32);
                    // Dropping can skip pts forward; reset the order tracker
                    // conservatively (drops remove from the FRONT, so order
                    // for the remaining frames still holds — no reset needed).
                }
                Op::DropStale(pts, n) => {
                    b.drop_stale(MediaTime::from_millis(pts), n as u32);
                }
                Op::Duplicate(n) => {
                    b.duplicate_front(n as u32);
                }
            }
            prop_assert!(b.len() <= 32, "capacity exceeded: {}", b.len());
            prop_assert_eq!(
                b.staged_time(),
                MediaDuration::from_millis(40) * b.len() as i64
            );
        }
        let s = b.stats;
        // Unit conservation over real frames AND duplicates: everything that
        // entered (pushes + queued duplicates) is either popped (real or
        // dup), dropped (drop_frames / drop_stale, which may consume dups),
        // or still staged.
        prop_assert_eq!(
            s.frames_in + s.frames_duplicated,
            s.frames_out + popped_dups + s.frames_dropped + b.len() as u64,
            "in={} duplicated={} out={} dups_played={} dropped={} len={}",
            s.frames_in, s.frames_duplicated, s.frames_out, popped_dups,
            s.frames_dropped, b.len()
        );
        prop_assert_eq!(s.frames_out, popped_real);
        prop_assert!(s.frames_duplicated >= popped_dups);
    }
}

#[test]
fn priming_is_monotone_in_window() {
    // A stricter window never primes earlier than a looser one.
    for frames_needed in 1..20usize {
        let window = MediaDuration::from_millis(40 * frames_needed as i64);
        let mut b = MediaBuffer::new(
            ComponentId::new(1),
            BufferConfig::with_window(window),
            MediaDuration::from_millis(40),
        );
        for i in 0..frames_needed {
            assert!(
                !b.is_primed() || i == frames_needed,
                "primed after {i} of {frames_needed}"
            );
            b.push(frame(i as u64, i as i64 * 40, false));
        }
        assert!(b.is_primed());
    }
}

//! Robustness: stray, stale or malformed protocol traffic must never panic
//! an actor — sessions are torn down, clients crash, packets straggle.

use hermes_core::{
    ComponentId, DocumentId, MediaTime, PricingClass, QosMeasurement, ServerId, SessionId,
};
use hermes_rtp::{PayloadType, RtpPacket};
use hermes_service::{
    install_figure2, ClientConfig, MailMessage, ServerConfig, ServiceMsg, WorldBuilder,
};
use hermes_simnet::{LinkSpec, SimRng};

fn world() -> (
    hermes_simnet::Sim<ServiceMsg, hermes_service::ServiceWorld>,
    hermes_core::NodeId,
    hermes_core::NodeId,
) {
    let mut b = WorldBuilder::new(91);
    let srv = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let cli = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(91);
    let mut rng = SimRng::seed_from_u64(92);
    install_figure2(sim.app_mut().server_mut(srv), DocumentId::new(1), &mut rng);
    (sim, srv, cli)
}

#[test]
fn server_survives_messages_for_unknown_sessions() {
    let (mut sim, srv, cli) = world();
    let bogus = SessionId::new(999);
    sim.with_api(|_, api| {
        for msg in [
            ServiceMsg::DocRequest {
                session: bogus,
                document: DocumentId::new(1),
            },
            ServiceMsg::Pause { session: bogus },
            ServiceMsg::Resume { session: bogus },
            ServiceMsg::Disconnect { session: bogus },
            ServiceMsg::SuspendConnection { session: bogus },
            ServiceMsg::ResumeSuspended { session: bogus },
            ServiceMsg::DisableStream {
                session: bogus,
                component: ComponentId::new(1),
            },
            ServiceMsg::Feedback {
                session: bogus,
                measurements: vec![(ComponentId::new(1), QosMeasurement::idle(MediaTime::ZERO))],
                rtcp: vec![],
            },
            ServiceMsg::Subscribe {
                session: bogus,
                form: hermes_server::SubscriptionForm {
                    name: "x".into(),
                    address: "y".into(),
                    telephone: "z".into(),
                    email: "e".into(),
                    class: PricingClass::Economy,
                },
            },
            ServiceMsg::SearchRequest {
                session: bogus,
                token: "x".into(),
                query: 1,
            },
        ] {
            api.send_reliable(cli, srv, msg);
        }
    });
    sim.run_until(MediaTime::from_secs(2));
    // Nothing crashed; no sessions exist.
    assert_eq!(sim.app().server(srv).sessions.len(), 0);
}

#[test]
fn client_survives_unsolicited_media_and_control() {
    let (mut sim, srv, cli) = world();
    // Send media/control to a client with no presentation at all.
    sim.with_api(|_, api| {
        api.send(
            srv,
            cli,
            ServiceMsg::RtpData {
                session: SessionId::new(5),
                component: ComponentId::new(3),
                packet: RtpPacket::synthetic(PayloadType::Mpeg, true, 9, 9, 9, 100),
                sent_at: MediaTime::ZERO,
            },
        );
        api.send_reliable(
            srv,
            cli,
            ServiceMsg::DiscreteData {
                session: SessionId::new(5),
                component: ComponentId::new(9),
                size: 100,
                total: 100,
                last: true,
                sent_at: MediaTime::ZERO,
            },
        );
        api.send_reliable(
            srv,
            cli,
            ServiceMsg::StreamStopped {
                session: SessionId::new(5),
                component: ComponentId::new(1),
            },
        );
        api.send_reliable(
            srv,
            cli,
            ServiceMsg::SuspendExpired {
                session: SessionId::new(5),
            },
        );
        api.send_reliable(srv, cli, ServiceMsg::MailBox { messages: vec![] });
    });
    sim.run_until(MediaTime::from_secs(1));
    let c = sim.app().client(cli);
    assert!(c.presentation.is_none());
}

#[test]
fn rtp_for_wrong_component_is_ignored() {
    let (mut sim, srv, cli) = world();
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(2));
    // Inject RTP for a component id the scenario doesn't have.
    sim.with_api(|_, api| {
        api.send(
            srv,
            cli,
            ServiceMsg::RtpData {
                session: SessionId::new(1),
                component: ComponentId::new(77),
                packet: RtpPacket::synthetic(PayloadType::Pcm, true, 1, 1, 1, 100),
                sent_at: MediaTime::from_secs(2),
            },
        );
    });
    sim.run_until(MediaTime::from_secs(30));
    let c = sim.app().client(cli);
    assert!(c.errors.is_empty(), "{:?}", c.errors);
    assert_eq!(c.completed.len(), 1, "presentation unaffected by stray RTP");
}

#[test]
fn user_operations_in_wrong_states_are_noops() {
    let (mut sim, srv, cli) = world();
    // Pause/resume/reload/search/back before ever connecting.
    sim.with_api(|w, api| {
        let c = w.client_mut(cli);
        c.pause(api);
        c.resume(api);
        c.reload(api);
        assert!(!c.back(api));
        assert!(!c.forward(api));
        c.disconnect(api);
        assert_eq!(c.search(api, "x"), 0);
    });
    sim.run_until(MediaTime::from_secs(1));
    // Still able to run a normal session afterwards.
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(30));
    let c = sim.app().client(cli);
    assert_eq!(c.completed.len(), 1);
}

#[test]
fn mail_fetch_for_empty_mailbox() {
    let (mut sim, srv, cli) = world();
    sim.with_api(|w, api| {
        w.client_mut(cli).connect(api, srv, None);
    });
    sim.run_until(MediaTime::from_secs(1));
    sim.with_api(|w, api| {
        w.client_mut(cli).fetch_mail(api, "nobody@hermes");
        w.client_mut(cli).send_mail(
            api,
            MailMessage {
                from: "user@hermes".into(),
                to: "void@hermes".into(),
                subject: "".into(),
                body: "".into(),
                attachments: vec![],
            },
        );
    });
    sim.run_until(MediaTime::from_secs(2));
    assert!(sim.app().client(cli).mailbox.is_empty());
}

//! Hermetic stub of `parking_lot`: a `Mutex` with the poison-free API,
//! implemented over `std::sync::Mutex` (poisoning is swallowed, matching
//! parking_lot semantics where a panicked holder simply releases the lock).

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// Poison-free mutex.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    inner: StdGuard<'a, T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}

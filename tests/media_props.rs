//! Property tests on the media substrate: codec rate models, frame sources
//! and RTP packetization/reassembly.

use hermes_od::core::{ComponentId, Encoding, GradeLevel, MediaDuration, MediaTime};
use hermes_od::media::{CodecModel, FrameSource};
use hermes_od::rtp::{RtpPacket, RtpReceiver, RtpSender};
use proptest::prelude::*;

fn encoding() -> impl Strategy<Value = Encoding> {
    prop_oneof![
        Just(Encoding::Pcm),
        Just(Encoding::Adpcm),
        Just(Encoding::Vadpcm),
        Just(Encoding::Mpeg),
        Just(Encoding::Avi),
        Just(Encoding::Jpeg),
        Just(Encoding::Gif),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Frame sizes are positive, bounded and deterministic; frame pts are
    /// strictly increasing; exactly one frame carries `last`.
    #[test]
    fn frame_source_invariants(enc in encoding(), seed in any::<u64>(), secs in 1i64..12) {
        let frames = FrameSource::new(
            ComponentId::new(1), enc, seed, MediaDuration::from_secs(secs)
        ).collect_all();
        prop_assert!(!frames.is_empty());
        let model = CodecModel::for_encoding(enc);
        let mean = model.level(GradeLevel::NOMINAL).mean_frame_bytes as u64;
        for w in frames.windows(2) {
            prop_assert!(w[1].pts > w[0].pts);
            prop_assert_eq!(w[1].seq, w[0].seq + 1);
        }
        for f in &frames {
            prop_assert!(f.size >= 16);
            // Key frames may be up to key_scale × mean (+12.5% jitter).
            prop_assert!((f.size as u64) < mean * 4 + 1_000, "size {} vs mean {mean}", f.size);
        }
        prop_assert_eq!(frames.iter().filter(|f| f.last).count(), 1);
        prop_assert!(frames.last().unwrap().last);
        // Determinism.
        let again = FrameSource::new(
            ComponentId::new(1), enc, seed, MediaDuration::from_secs(secs)
        ).collect_all();
        prop_assert_eq!(frames, again);
    }

    /// Long-run mean frame size tracks the codec model's nominal mean.
    #[test]
    fn mean_rate_tracks_model(enc in encoding(), seed in any::<u64>()) {
        let model = CodecModel::for_encoding(enc);
        let level = model.level(GradeLevel::NOMINAL);
        let n = 2_000u64;
        let total: u64 = (0..n).map(|i| model.frame_size(seed, i, GradeLevel::NOMINAL) as u64).sum();
        let mean = total as f64 / n as f64;
        let nominal = level.mean_frame_bytes as f64;
        prop_assert!((mean - nominal).abs() / nominal < 0.10,
            "{enc:?}: mean {mean} vs nominal {nominal}");
    }

    /// RTP encode/decode round-trips arbitrary header fields.
    #[test]
    fn rtp_round_trip(
        seq in any::<u16>(),
        ts in any::<u32>(),
        ssrc in any::<u32>(),
        marker in any::<bool>(),
        len in 0usize..2_000,
    ) {
        let p = RtpPacket::synthetic(hermes_od::rtp::PayloadType::Mpeg, marker, seq, ts, ssrc, len);
        let q = RtpPacket::decode(p.encode()).unwrap();
        prop_assert_eq!(p, q);
    }

    /// Packetize→receive reassembles every frame exactly, for any encoding
    /// and duration, when no packets are lost.
    #[test]
    fn packetize_reassemble_lossless(enc in encoding(), seed in any::<u64>(), secs in 1i64..6) {
        let frames = FrameSource::new(
            ComponentId::new(1), enc, seed, MediaDuration::from_secs(secs)
        ).collect_all();
        let mut tx = RtpSender::new(42, enc);
        let mut rx = RtpReceiver::new(enc);
        let mut t = MediaTime::ZERO;
        for f in &frames {
            for p in tx.packetize(f) {
                rx.on_packet(&p, t);
                t += MediaDuration::from_micros(100);
            }
        }
        let got = rx.take_frames();
        prop_assert_eq!(got.len(), frames.len());
        for (g, f) in got.iter().zip(&frames) {
            prop_assert_eq!(g.size, f.size);
            // pts survives the clock conversion to within one clock tick.
            let err = (g.pts - f.pts).abs();
            prop_assert!(err <= MediaDuration::from_micros(200), "pts error {err}");
        }
        prop_assert_eq!(rx.stats.cumulative_lost(), 0);
    }
}

//! Robustness: the markup pipeline never panics on arbitrary input — it
//! either parses or returns a positioned error.

use hermes_od::core::{DocumentId, ServerId};
use hermes_od::hml::{parse, scenario_from_markup};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary ASCII soup never panics the lexer/parser.
    #[test]
    fn parser_total_on_ascii(s in "[ -~\\n\\t]{0,400}") {
        let _ = parse(&s);
    }

    /// Arbitrary bytes shaped like markup never panic either.
    #[test]
    fn parser_total_on_taglike(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<TITLE>".to_string()),
                Just("</TITLE>".to_string()),
                Just("<TEXT>".to_string()),
                Just("</TEXT>".to_string()),
                Just("<IMG>".to_string()),
                Just("</IMG>".to_string()),
                Just("<AU_VI>".to_string()),
                Just("</AU_VI>".to_string()),
                Just("<HLINK>".to_string()),
                Just("</HLINK>".to_string()),
                Just("<B>".to_string()),
                Just("</B>".to_string()),
                Just("<PAR>".to_string()),
                Just("<SEP>".to_string()),
                Just("SOURCE=x".to_string()),
                Just("STARTIME=1s".to_string()),
                Just("STARTIME=-5s".to_string()),
                Just("DURATION=99999999999s".to_string()),
                Just("ID=1".to_string()),
                Just("ID=1".to_string()),
                Just("NOTE=\"unterminated".to_string()),
                Just("WHERE=1,2".to_string()),
                Just("TO=doc1".to_string()),
                Just("AT=2s".to_string()),
                "[a-z ]{0,12}".prop_map(|s| s),
            ],
            0..30,
        )
    ) {
        let src = parts.join(" ");
        // Must not panic; errors are fine.
        let _ = scenario_from_markup(&src, DocumentId::new(1), ServerId::new(0));
    }

    /// Parse errors carry positions inside the input (or None at EOF).
    #[test]
    fn errors_positioned(s in "<TITLE>[a-z ]{1,10}</TITLE> <IMG> [A-Z]{1,8}=[a-z]{1,5} </IMG>") {
        if let Err(e) = parse(&s) {
            if let Some(pos) = e.pos {
                let lines = s.lines().count() as u32;
                prop_assert!(pos.line >= 1 && pos.line <= lines.max(1));
            }
        }
    }
}

#[test]
fn pathological_nesting_rejected_without_stack_overflow() {
    // Deeply nested style spans parse (recursion is bounded by input size;
    // 1000 levels is well within stack limits) or error cleanly.
    let mut src = String::from("<TITLE>t</TITLE> <TEXT> ");
    for _ in 0..1000 {
        src.push_str("<B> ");
    }
    src.push('x');
    for _ in 0..1000 {
        src.push_str(" </B>");
    }
    src.push_str(" </TEXT>");
    let doc = parse(&src).expect("deep nesting parses");
    // All 1000 levels collapse into one bold run.
    assert_eq!(doc.sentences[0].body.len(), 1);
}

#[test]
fn enormous_attribute_values_handled() {
    let big = "x".repeat(100_000);
    let src = format!("<TITLE>t</TITLE> <IMG> SOURCE={big} ID=1 </IMG>");
    let s = scenario_from_markup(&src, DocumentId::new(1), ServerId::new(0)).unwrap();
    match &s.components[0].content {
        hermes_od::core::ComponentContent::Stored { source, .. } => {
            assert_eq!(source.object.len(), 100_000);
        }
        other => panic!("{other:?}"),
    }
}

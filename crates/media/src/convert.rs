//! The Media Stream Quality Converter (paper §4, Fig. 3).
//!
//! The converter sits between a media server's frame source and its
//! transmitter. On instruction from the flow scheduler it regrades the
//! stream — stepping the encoder down the quality ladder under congestion,
//! back up when the network recovers — while respecting the user's
//! presentation floor ("degrading media quality may be done down to several
//! thresholds, taking into account the user's desired levels of presentation
//! quality").

use crate::codec::CodecModel;
use hermes_core::{GradeDecision, GradeLevel, MediaDuration};
use serde::Serialize;

/// One stream's grading state inside the converter.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QualityConverter {
    /// The codec being converted.
    pub model: CodecModel,
    /// Current output level.
    pub level: GradeLevel,
    /// The user's floor for this stream: the deepest level allowed before
    /// the stream must stop instead.
    pub floor: GradeLevel,
    /// Whether the stream has been stopped (floor reached and congestion
    /// persisted).
    pub stopped: bool,
    /// Count of degrade steps applied over the stream's life.
    pub degrades: u32,
    /// Count of upgrade steps applied.
    pub upgrades: u32,
}

impl QualityConverter {
    /// New converter at nominal quality.
    pub fn new(model: CodecModel, floor: GradeLevel) -> Self {
        let floor = GradeLevel(floor.0.min(model.max_level().0));
        QualityConverter {
            model,
            level: GradeLevel::NOMINAL,
            floor,
            stopped: false,
            degrades: 0,
            upgrades: 0,
        }
    }

    /// Bandwidth the stream needs at its current level (0 if stopped).
    pub fn current_bandwidth_bps(&self) -> u64 {
        if self.stopped {
            0
        } else {
            self.model.level(self.level).bandwidth_bps()
        }
    }

    /// Bandwidth that one more degrade step would save.
    pub fn next_step_saving(&self) -> u64 {
        if self.stopped {
            return 0;
        }
        if self.level >= self.floor {
            // Next step is stopping the stream entirely.
            return self.current_bandwidth_bps();
        }
        let next = GradeLevel(self.level.0 + 1);
        self.current_bandwidth_bps()
            .saturating_sub(self.model.level(next).bandwidth_bps())
    }

    /// Apply a grading decision; returns the change actually made.
    pub fn apply(&mut self, decision: GradeDecision) -> GradeDecision {
        match decision {
            GradeDecision::Hold => GradeDecision::Hold,
            GradeDecision::Degrade => {
                if self.stopped {
                    GradeDecision::Hold
                } else if self.level >= self.floor {
                    // §4: "when falling to the lower threshold, the service
                    // may choose to stop transmitting the specific stream."
                    self.stopped = true;
                    GradeDecision::Stop
                } else {
                    self.level = GradeLevel(self.level.0 + 1);
                    self.degrades += 1;
                    GradeDecision::Degrade
                }
            }
            GradeDecision::Upgrade => {
                if self.stopped {
                    // Restart at the floor and climb from there.
                    self.stopped = false;
                    self.level = self.floor;
                    self.upgrades += 1;
                    GradeDecision::Upgrade
                } else if self.level > GradeLevel::NOMINAL {
                    self.level = self.level.upgraded();
                    self.upgrades += 1;
                    GradeDecision::Upgrade
                } else {
                    GradeDecision::Hold
                }
            }
            GradeDecision::Stop => {
                self.stopped = true;
                GradeDecision::Stop
            }
        }
    }

    /// The frame period at the current level (used by skew repair).
    pub fn frame_period(&self) -> MediaDuration {
        self.model.level(self.level).frame_period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::Encoding;

    fn conv() -> QualityConverter {
        QualityConverter::new(CodecModel::for_encoding(Encoding::Mpeg), GradeLevel(3))
    }

    #[test]
    fn degrade_walks_ladder_then_stops() {
        let mut c = conv();
        assert_eq!(c.level, GradeLevel(0));
        assert_eq!(c.apply(GradeDecision::Degrade), GradeDecision::Degrade);
        assert_eq!(c.apply(GradeDecision::Degrade), GradeDecision::Degrade);
        assert_eq!(c.apply(GradeDecision::Degrade), GradeDecision::Degrade);
        assert_eq!(c.level, GradeLevel(3)); // at the floor
        assert_eq!(c.apply(GradeDecision::Degrade), GradeDecision::Stop);
        assert!(c.stopped);
        assert_eq!(c.current_bandwidth_bps(), 0);
        // Further degrades are no-ops.
        assert_eq!(c.apply(GradeDecision::Degrade), GradeDecision::Hold);
        assert_eq!(c.degrades, 3);
    }

    #[test]
    fn upgrade_restarts_stopped_stream_at_floor() {
        let mut c = conv();
        for _ in 0..4 {
            c.apply(GradeDecision::Degrade);
        }
        assert!(c.stopped);
        assert_eq!(c.apply(GradeDecision::Upgrade), GradeDecision::Upgrade);
        assert!(!c.stopped);
        assert_eq!(c.level, GradeLevel(3));
        // Climb back to nominal.
        for _ in 0..3 {
            assert_eq!(c.apply(GradeDecision::Upgrade), GradeDecision::Upgrade);
        }
        assert_eq!(c.level, GradeLevel::NOMINAL);
        // At nominal, upgrade holds.
        assert_eq!(c.apply(GradeDecision::Upgrade), GradeDecision::Hold);
    }

    #[test]
    fn bandwidth_tracks_level() {
        let mut c = conv();
        let b0 = c.current_bandwidth_bps();
        c.apply(GradeDecision::Degrade);
        let b1 = c.current_bandwidth_bps();
        assert!(b1 < b0);
        assert_eq!(b0 - b1, 500_000);
    }

    #[test]
    fn step_saving_accounts_for_stop() {
        let mut c = conv();
        assert_eq!(c.next_step_saving(), 500_000);
        for _ in 0..3 {
            c.apply(GradeDecision::Degrade);
        }
        // At the floor: the "next step" is a full stop.
        assert_eq!(c.next_step_saving(), c.current_bandwidth_bps());
        c.apply(GradeDecision::Degrade);
        assert_eq!(c.next_step_saving(), 0);
    }

    #[test]
    fn floor_clamped_to_ladder_depth() {
        let c = QualityConverter::new(CodecModel::for_encoding(Encoding::Pcm), GradeLevel(9));
        assert_eq!(c.floor, GradeLevel(2)); // PCM ladder has 3 rungs
    }

    #[test]
    fn explicit_stop() {
        let mut c = conv();
        assert_eq!(c.apply(GradeDecision::Stop), GradeDecision::Stop);
        assert!(c.stopped);
    }
}

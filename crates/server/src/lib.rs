//! # hermes-server
//!
//! The multimedia-server side of the service (paper Fig. 3, left half):
//!
//! * [`database`] — the multimedia database (documents as markup +
//!   scenario), topic lists, local search, and per-kind media stores (the
//!   attached media servers' storage);
//! * [`flow`] — the flow scheduler computing flow scenarios (send start
//!   instants, rates, QoS requirements) from presentation scenarios;
//! * [`qos`] — the Server QoS Manager and grading engine (long-term
//!   recovery: video-first degradation, patient upgrades, stop-at-floor);
//! * [`admission`] — connection admission control with pricing classes;
//! * [`accounts`] — subscription, authentication and pricing primitives;
//! * [`placement`] — content placement over the distributed media-server
//!   tier (rendezvous-hashed replication) and load/RTT-aware replica
//!   selection;
//! * [`segcache`] — the byte-bounded LRU segment cache with
//!   interval-caching admission fronting the media tier;
//! * [`sharing`] — the stream-sharing policy (batching windows and
//!   patching decisions for popular content);
//! * [`overload`] — overload-control primitives: circuit-breaking replica
//!   health, bounded deadline-shedding request queues, CoDel-style pressure
//!   detection, and retry budgets.

#![warn(missing_docs)]

pub mod accounts;
pub mod admission;
pub mod database;
pub mod flow;
pub mod overload;
pub mod placement;
pub mod qos;
pub mod segcache;
pub mod sharing;

pub use accounts::{AccountsDb, Charge, SubscriptionForm, UserRecord};
pub use admission::{
    AdmissionController, AdmissionDecision, ClassStats, ConnectionRequest, PathCondition,
};
pub use database::{MultimediaDb, StoredDocument, TopicEntry};
pub use flow::{compute_flow_scenario, FlowConfig, FlowPlan, FlowScenario};
pub use overload::{
    BreakerConfig, BreakerState, BreakerTransition, NodeHealth, OverloadQueue, OverloadQueueStats,
    PressureDetector, QueuedRequest, ReplicaHealthMap, RetryBudget,
};
pub use placement::{PlacementMap, ReplicaSelector};
pub use qos::{GradingAction, ManagedStream, ServerQosManager};
pub use segcache::{SegmentCache, SegmentCacheStats, SegmentKey};
pub use sharing::{BatchingPolicy, GroupPhase, ShareDecision, SharingMode, SharingPolicy};

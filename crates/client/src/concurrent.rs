//! Wall-clock, thread-per-stream playout — the paper's §3.1 algorithm taken
//! literally:
//!
//! ```text
//! for i = 0 to number of structures E_i
//!     Create a playout thread (i.e. a playout process)
//!     wait until current relative time = t_i
//!     Play incoming stream S_i in nominal rate for duration d_i
//! end
//! ```
//!
//! The deterministic simulation engine (`playout.rs`) is what experiments
//! use; this module demonstrates the concurrent design on real threads
//! (crossbeam scoped threads + a parking_lot-protected event log) and backs
//! the `concurrent_playout` example. A `speed` factor compresses scenario
//! time so tests run in milliseconds.

use hermes_core::{ComponentId, MediaTime, PlayoutSchedule};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// What one playout thread recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadRecord {
    /// The stream the thread played.
    pub component: ComponentId,
    /// Scheduled relative start `t_i`.
    pub scheduled_start: MediaTime,
    /// Actual wall start, as an offset from the presentation start
    /// (scenario-time units, un-scaled).
    pub actual_start: MediaTime,
    /// Actual wall end (scenario-time units).
    pub actual_end: MediaTime,
}

/// Run every stream of `schedule` on its own thread, compressing scenario
/// time by `speed` (e.g. `0.001` plays a 19 s scenario in 19 ms). Returns
/// one record per stream, sorted by component id.
///
/// Panics if `speed` is not strictly positive.
pub fn run_threaded_playout(schedule: &PlayoutSchedule, speed: f64) -> Vec<ThreadRecord> {
    assert!(speed > 0.0, "speed must be positive");
    let records: Mutex<Vec<ThreadRecord>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    let scale = |mt: MediaTime| -> Duration {
        Duration::from_nanos((mt.as_micros().max(0) as f64 * 1_000.0 * speed) as u64)
    };
    let unscale = |d: Duration| -> MediaTime {
        MediaTime::from_micros((d.as_nanos() as f64 / (1_000.0 * speed)) as i64)
    };
    crossbeam::scope(|scope| {
        for entry in &schedule.entries {
            let records = &records;
            let entry = entry.clone();
            let scale = &scale;
            let unscale = &unscale;
            // "Create a playout thread (i.e. a playout process)"
            scope.spawn(move |_| {
                // "wait until current relative time = t_i"
                let target = scale(entry.start);
                loop {
                    let elapsed = t0.elapsed();
                    if elapsed >= target {
                        break;
                    }
                    std::thread::sleep((target - elapsed).min(Duration::from_micros(200)));
                }
                let actual_start = unscale(t0.elapsed());
                // "Play incoming stream S_i in nominal rate for duration d_i"
                let end_target = scale(entry.end());
                loop {
                    let elapsed = t0.elapsed();
                    if elapsed >= end_target {
                        break;
                    }
                    std::thread::sleep((end_target - elapsed).min(Duration::from_micros(500)));
                }
                let actual_end = unscale(t0.elapsed());
                records.lock().push(ThreadRecord {
                    component: entry.component,
                    scheduled_start: entry.start,
                    actual_start,
                    actual_end,
                });
            });
        }
    })
    .expect("playout thread panicked");
    let mut out = records.into_inner();
    out.sort_by_key(|r| r.component);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{DocumentId, MediaDuration, ServerId};
    use hermes_hml::{scenario_from_markup, FIGURE2_MARKUP};

    #[test]
    fn threads_honor_schedule_order() {
        let scenario =
            scenario_from_markup(FIGURE2_MARKUP, DocumentId::new(1), ServerId::new(0)).unwrap();
        let schedule = hermes_core::PlayoutSchedule::from_scenario(&scenario);
        // 19 s scenario compressed to ~19 ms.
        let records = run_threaded_playout(&schedule, 0.001);
        assert_eq!(records.len(), schedule.entries.len());
        // Tolerance: thread wakeups at this compression are within ~1 s of
        // scenario time (1 ms wall).
        let tol = MediaDuration::from_millis(1_500);
        for r in &records {
            let late = r.actual_start - r.scheduled_start;
            assert!(
                late >= MediaDuration::ZERO && late <= tol,
                "{}: scheduled {} actual {}",
                r.component,
                r.scheduled_start,
                r.actual_start
            );
        }
        // The AU_VI pair (components 3 and 4) started together.
        let a1 = records
            .iter()
            .find(|r| r.component == hermes_core::ComponentId::new(3))
            .unwrap();
        let v = records
            .iter()
            .find(|r| r.component == hermes_core::ComponentId::new(4))
            .unwrap();
        assert!((a1.actual_start - v.actual_start).abs() <= tol);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let scenario =
            scenario_from_markup(FIGURE2_MARKUP, DocumentId::new(1), ServerId::new(0)).unwrap();
        let schedule = hermes_core::PlayoutSchedule::from_scenario(&scenario);
        let _ = run_threaded_playout(&schedule, 0.0);
    }
}

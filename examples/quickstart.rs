//! Quickstart: serve and play the paper's Fig. 2 scenario end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a one-server / one-client deployment on a clean 10 Mbps network,
//! connects, subscribes, requests the document and plays it out, printing
//! the playout timeline, the presentation event summary and the QoS
//! statistics.

use hermes_od::core::{DocumentId, MediaTime, PlayoutSchedule, ServerId};
use hermes_od::service::{install_figure2, ClientConfig, ServerConfig, WorldBuilder};
use hermes_od::simnet::{LinkSpec, SimRng};

fn main() {
    // 1. Build the deployment: one multimedia server, one browser.
    let mut builder = WorldBuilder::new(42);
    let server = builder.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let client = builder.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = builder.build(42);

    // 2. Install the Fig. 2 document and its media objects.
    let mut rng = SimRng::seed_from_u64(7);
    install_figure2(
        sim.app_mut().server_mut(server),
        DocumentId::new(1),
        &mut rng,
    );

    // Show the authored scenario and its derived playout schedule.
    let scenario = sim
        .app()
        .server(server)
        .db
        .document(DocumentId::new(1))
        .unwrap()
        .scenario
        .clone();
    println!("=== scenario: {} ===", scenario.title);
    let schedule = PlayoutSchedule::from_scenario(&scenario);
    println!("{}", schedule.timeline_table());

    // 3. Connect and request the document; the client subscribes on the fly.
    sim.with_api(|world, api| {
        world
            .client_mut(client)
            .connect(api, server, Some(DocumentId::new(1)));
    });

    // 4. Run the session to completion (Fig. 2 lasts 19 s).
    sim.run_until(MediaTime::from_secs(30));

    // 5. Report.
    let c = sim.app().client(client);
    println!("=== session log ===");
    for (at, line) in &c.log {
        println!("  {at}  {line}");
    }
    let (doc, startup, skew) = c.completed[0];
    println!("=== result ===");
    println!("  document        : {doc}");
    println!("  startup delay   : {startup} (intentional prefill)");
    println!("  max A/V skew    : {skew}");
    let p = c.presentation.as_ref().unwrap();
    let stats = p.engine.total_stats();
    println!(
        "  frames played   : {} ({} duplicated, {} glitches, {} dropped)",
        stats.frames_played, stats.duplicates_played, stats.glitches, stats.frames_dropped
    );
    let net = sim.net().total_stats();
    println!(
        "  network         : {} packets / {} bytes sent, {} lost",
        net.packets_sent, net.bytes_sent, net.packets_lost
    );
    assert!(c.errors.is_empty(), "session errors: {:?}", c.errors);
}

#![allow(clippy::field_reassign_with_default)]
//! Fault-injection resilience tests: crashed servers, healed partitions,
//! retransmitted control traffic — all deterministic under fixed seeds.

use hermes_core::{DocumentId, MediaTime, ServerId};
use hermes_service::{
    install_figure2, ClientConfig, ServerConfig, ServiceMsg, ServiceWorld, WorldBuilder,
};
use hermes_simnet::{FaultKind, FaultPlan, LinkSpec, Sim, SimRng};

/// One server with Fig. 2 installed, one client, clean 10 Mbps links.
fn fault_world(
    seed: u64,
) -> (
    Sim<ServiceMsg, ServiceWorld>,
    hermes_core::NodeId,
    hermes_core::NodeId,
) {
    let mut b = WorldBuilder::new(seed);
    let srv = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let cli = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(seed);
    let mut rng = SimRng::seed_from_u64(99);
    install_figure2(sim.app_mut().server_mut(srv), DocumentId::new(1), &mut rng);
    (sim, srv, cli)
}

/// The server is down when the client's Connect arrives. The transport
/// delivers into a dead process; only the application-level tracked
/// retransmission recovers, and exactly one session is established.
#[test]
fn dropped_connect_is_retransmitted_until_session_establishes() {
    let (mut sim, srv, cli) = fault_world(11);
    let plan = FaultPlan::new().crash_for(
        srv,
        MediaTime::ZERO,
        hermes_core::MediaDuration::from_millis(1500),
    );
    sim.install_faults(&plan);
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(40));

    let client = sim.app().client(cli);
    assert!(client.errors.is_empty(), "errors: {:?}", client.errors);
    assert!(client.session.is_some(), "session never established");
    assert_eq!(client.pending_tracked(), 0, "tracked requests left unacked");
    assert_eq!(client.completed.len(), 1, "presentation did not complete");

    let server = sim.app().server(srv);
    assert_eq!(server.sessions.len(), 1, "expected exactly one session");
    // Some control deliveries were genuinely lost to the dead process.
    assert!(sim.stats().fault_drops > 0);
}

/// Mid-playout server crash + restart: the client's failure detector trips
/// on missed heartbeats, it reconnects with its playout position, and the
/// rebuilt session resumes delivery to completion.
#[test]
fn server_crash_mid_playout_recovers_via_heartbeats() {
    let (mut sim, srv, cli) = fault_world(13);
    let plan = FaultPlan::new().crash_for(
        srv,
        MediaTime::from_secs(8),
        hermes_core::MediaDuration::from_millis(900),
    );
    sim.install_faults(&plan);
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(60));

    let client = sim.app().client(cli);
    assert!(client.errors.is_empty(), "errors: {:?}", client.errors);
    assert_eq!(
        client.recoveries.len(),
        1,
        "expected one detected outage + recovery, got {:?}",
        client.recoveries
    );
    let (detected, recovered) = client.recoveries[0];
    // Detection happens after the crash, within the missed-beat window plus
    // slack; recovery follows detection.
    assert!(detected > MediaTime::from_secs(8));
    assert!(
        detected < MediaTime::from_secs(12),
        "detector too slow: {detected}"
    );
    assert!(recovered > detected);
    assert!(
        recovered - detected < hermes_core::MediaDuration::from_secs(5),
        "reconnect too slow: {}",
        recovered - detected
    );
    assert!(client.recovering.is_none(), "still marked recovering");
    assert_eq!(client.completed.len(), 1, "presentation did not complete");

    let server = sim.app().server(srv);
    assert_eq!(
        server.rebuilt_sessions.len(),
        1,
        "server should have rebuilt exactly one session"
    );
    let (old, new) = server.rebuilt_sessions[0];
    assert_ne!(old, new, "rebuilt session must get a fresh id");
    assert_eq!(client.session.unwrap().1, new);
    assert_eq!(server.sessions.len(), 1);
}

/// A partitioned access link heals well inside the transport's retry
/// window. Retransmitted tracked requests must not duplicate server-side
/// effects: one session, one retrieval charge, one completion.
#[test]
fn partition_heal_does_not_duplicate_side_effects() {
    let (mut sim, srv, cli) = fault_world(17);
    let backbone = hermes_core::NodeId::new(0);
    // Partition the client's access link before the connect handshake
    // finishes retrying, heal 2 s later.
    let plan = FaultPlan::new().partition(
        cli,
        backbone,
        MediaTime::from_millis(50),
        MediaTime::from_millis(2050),
    );
    sim.install_faults(&plan);
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(60));

    let client = sim.app().client(cli);
    assert!(client.errors.is_empty(), "errors: {:?}", client.errors);
    assert_eq!(client.completed.len(), 1, "presentation did not complete");
    assert_eq!(client.pending_tracked(), 0);

    let server = sim.app().server(srv);
    // Dedup held: retransmissions never created extra sessions or rebuilt
    // anything (the process never died).
    assert_eq!(server.sessions.len(), 1, "duplicate sessions created");
    assert!(server.rebuilt_sessions.is_empty());
    // Exactly one retrieval was charged despite control retransmissions.
    let user = client.user.expect("subscription completed");
    let retrievals = server
        .accounts
        .user(user)
        .map(|r| r.retrieved.len())
        .unwrap_or(0);
    assert_eq!(retrievals, 1, "retrieval recorded more than once");
    // The link really did drop traffic while down.
    assert!(sim.net().total_stats().packets_dropped_down > 0);
}

/// The whole fault pipeline is deterministic: same seed, same plan, same
/// outcome — byte-for-byte identical logs and recovery timestamps.
#[test]
fn fault_recovery_is_deterministic() {
    let run = || {
        let (mut sim, srv, cli) = fault_world(13);
        let plan = FaultPlan::new().crash_for(
            srv,
            MediaTime::from_secs(8),
            hermes_core::MediaDuration::from_millis(900),
        );
        sim.install_faults(&plan);
        sim.with_api(|w, api| {
            w.client_mut(cli)
                .connect(api, srv, Some(DocumentId::new(1)));
        });
        sim.run_until(MediaTime::from_secs(60));
        let c = sim.app().client(cli);
        (
            c.completed.clone(),
            c.log.clone(),
            c.recoveries.clone(),
            sim.stats().delivered,
            sim.stats().fault_drops,
        )
    };
    assert_eq!(run(), run());
}

/// Mid-playout media-node crash: the multimedia server fails the affected
/// streams over to a surviving replica and the presentation completes with
/// exactly the frame counts of a fault-free run — no duplicates, no holes.
#[test]
fn media_node_crash_mid_playout_fails_over_without_frame_loss() {
    let run = |crash: bool| {
        let mut b = WorldBuilder::new(23);
        let srv = b.add_server(
            ServerId::new(0),
            LinkSpec::lan(10_000_000),
            ServerConfig::default(),
        );
        let cli = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
        for _ in 0..3 {
            b.add_media_node(LinkSpec::san(100_000_000));
        }
        let mut sim = b.build(23);
        let mut rng = SimRng::seed_from_u64(99);
        install_figure2(sim.app_mut().server_mut(srv), DocumentId::new(1), &mut rng);
        sim.app_mut().distribute_media();
        sim.with_api(|w, api| {
            w.client_mut(cli)
                .connect(api, srv, Some(DocumentId::new(1)));
        });
        // Run into the middle of the continuous playout, then kill the
        // media node actually serving a live stream.
        sim.run_until(MediaTime::from_secs(4));
        if crash {
            let victim = sim
                .app()
                .server(srv)
                .sessions
                .values()
                .flat_map(|s| s.streams.values())
                .filter(|tx| !tx.done && !tx.stopped && tx.plan.kind.is_continuous())
                .filter_map(|tx| tx.remote.as_ref().map(|r| r.replica))
                .next()
                .expect("no active tier-backed stream at 4 s");
            sim.inject_fault(
                MediaTime::from_secs(4),
                FaultKind::NodeCrash { node: victim },
            );
        }
        sim.run_until(MediaTime::from_secs(40));

        let c = sim.app().client(cli);
        assert!(c.errors.is_empty(), "errors: {:?}", c.errors);
        assert_eq!(c.completed.len(), 1, "presentation did not complete");
        let server = sim.app().server(srv);
        let tier = server.media.as_ref().expect("media tier not deployed");
        assert!(tier.stats.fetches > 0, "tier never fetched");
        let sent: std::collections::BTreeMap<_, _> = server
            .sessions
            .values()
            .flat_map(|s| s.streams.iter().map(|(comp, tx)| (*comp, tx.frames_sent)))
            .collect();
        (sent, tier.stats.failovers)
    };
    let (base_sent, base_failovers) = run(false);
    assert_eq!(base_failovers, 0);
    assert!(
        base_sent.values().any(|&f| f > 100),
        "continuous media never streamed: {base_sent:?}"
    );
    let (sent, failovers) = run(true);
    assert!(failovers >= 1, "media-node crash triggered no failover");
    assert_eq!(
        sent, base_sent,
        "failover duplicated or dropped frames vs the fault-free run"
    );
}

/// Crashing the server after the presentation finished must not wedge the
/// client: liveness detects the outage, reconnect re-establishes a session,
/// and no errors surface.
#[test]
fn crash_after_completion_reconnects_cleanly() {
    let (mut sim, srv, cli) = fault_world(19);
    // Fig. 2 runs 19 s; crash at 25 s, restart 1 s later.
    let plan = FaultPlan::new().crash_for(
        srv,
        MediaTime::from_secs(25),
        hermes_core::MediaDuration::from_secs(1),
    );
    sim.install_faults(&plan);
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(60));

    let client = sim.app().client(cli);
    assert!(client.errors.is_empty(), "errors: {:?}", client.errors);
    assert_eq!(client.completed.len(), 1);
    assert!(client.session.is_some());
    assert!(client.recovering.is_none());
    // FaultKind round-trips through the plan builder.
    assert!(matches!(
        plan.events()[0].kind,
        FaultKind::NodeCrash { node } if node == srv
    ));
}

/// The hardest compound failure the reconnect path must survive: the media
/// replica serving the session's live stream is partitioned from the
/// backbone AND the primary server crashes inside the same window. The
/// client's detector trips on the dead server, reconnect-and-resume
/// rebuilds the session on the restarted process, the media tier fails the
/// stream over off the unreachable replica — and the run must end with a
/// completed presentation and the global invariant catalog green.
#[test]
fn reconnect_resumes_through_replica_partition_plus_server_crash() {
    // Phase 1 — fault-free run to 4 s on the same seed, to learn which
    // replica actually serves the live continuous stream.
    let build = || {
        let mut b = WorldBuilder::new(29);
        let srv = b.add_server(
            ServerId::new(0),
            LinkSpec::lan(10_000_000),
            ServerConfig::default(),
        );
        let cli = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
        for _ in 0..3 {
            b.add_media_node(LinkSpec::san(100_000_000));
        }
        let mut sim = b.build(29);
        let mut rng = SimRng::seed_from_u64(99);
        install_figure2(sim.app_mut().server_mut(srv), DocumentId::new(1), &mut rng);
        sim.app_mut().distribute_media();
        sim.with_api(|w, api| {
            w.client_mut(cli)
                .connect(api, srv, Some(DocumentId::new(1)));
        });
        (sim, srv, cli)
    };
    let serving_replica = {
        let (mut sim, srv, _) = build();
        sim.run_until(MediaTime::from_secs(4));
        sim.app()
            .server(srv)
            .sessions
            .values()
            .flat_map(|s| s.streams.values())
            .filter(|tx| !tx.done && !tx.stopped && tx.plan.kind.is_continuous())
            .filter_map(|tx| tx.remote.as_ref().map(|r| r.replica))
            .next()
            .expect("no active tier-backed stream at 4 s")
    };

    // Phase 2 — same seed, same world, with the compound fault: replica
    // partitioned 4 s → 12 s, server crashed 5 s → 6.5 s (both inside the
    // partition window).
    let (mut sim, srv, cli) = build();
    let hub = hermes_core::NodeId::new(0);
    let plan = FaultPlan::new()
        .partition(
            serving_replica,
            hub,
            MediaTime::from_secs(4),
            MediaTime::from_secs(12),
        )
        .crash_for(
            srv,
            MediaTime::from_secs(5),
            hermes_core::MediaDuration::from_millis(1500),
        );
    sim.install_faults(&plan);
    sim.run_until(MediaTime::from_secs(60));
    // Disconnect and drain so the lifecycle invariant sees terminal states.
    sim.with_api(|w, api| w.client_mut(cli).disconnect(api));
    sim.run_until(MediaTime::from_secs(62));

    let client = sim.app().client(cli);
    assert!(client.errors.is_empty(), "errors: {:?}", client.errors);
    assert_eq!(client.completed.len(), 1, "presentation did not complete");
    assert_eq!(
        client.recoveries.len(),
        1,
        "expected one detected outage + recovery, got {:?}",
        client.recoveries
    );
    let server = sim.app().server(srv);
    assert_eq!(
        server.rebuilt_sessions.len(),
        1,
        "server should have rebuilt exactly one session"
    );

    // The whole run must satisfy the global invariant catalog.
    let stats = sim.stats();
    sim.app().audit_media_parts(&stats);
    sim.publish_metrics();
    let mut obs = sim.take_obs();
    sim.app().publish_metrics(&mut obs);
    let cfg = hermes_simnet::obs::invariants::InvariantConfig {
        last_fault_clear: plan.events().last().map(|e| e.at),
        settle: hermes_core::MediaDuration::from_secs(8),
    };
    let violations = hermes_simnet::obs::invariants::check_run(obs.events(), &obs.registry, &cfg);
    assert!(
        violations.is_empty(),
        "invariant violations: {:?}",
        violations.iter().map(|v| v.render()).collect::<Vec<_>>()
    );
}

//! Receiver-side RTP statistics: sequence tracking, loss accounting and the
//! RFC 3550 interarrival-jitter estimator — the raw material of the RTCP
//! receiver reports the client QoS manager sends back to the server
//! ("we use this packet's header information to derive statistical
//! measurements concerning network's parameters like packet's transmission
//! delay, delay jitter and packet loss", §6.3).

use crate::packet::{clock_to_micros, RtpPacket};
use hermes_core::{MediaDuration, MediaTime};
use serde::{Deserialize, Serialize};

/// Per-source reception statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReceiverStats {
    clock_rate: u32,
    /// Highest sequence number seen (16-bit).
    max_seq: u16,
    /// Count of sequence-number wraparounds.
    cycles: u32,
    /// First sequence number seen.
    base_seq: u16,
    /// Whether any packet has arrived.
    started: bool,
    /// Packets received in total.
    pub received: u64,
    /// Packets received at the previous report boundary.
    received_prior: u64,
    /// Expected count at the previous report boundary.
    expected_prior: u64,
    /// RFC 3550 jitter estimate, in clock units (scaled by 16 internally is
    /// not needed — f64 keeps the estimator exact enough for reporting).
    jitter_clock: f64,
    /// Previous packet's transit (arrival − timestamp) in clock units.
    last_transit: Option<i64>,
    /// Duplicate packets observed.
    pub duplicates: u64,
    /// Out-of-order (late but not duplicate) packets observed.
    pub reordered: u64,
}

impl ReceiverStats {
    /// New tracker for a stream with the given RTP clock rate.
    pub fn new(clock_rate: u32) -> Self {
        ReceiverStats {
            clock_rate,
            max_seq: 0,
            cycles: 0,
            base_seq: 0,
            started: false,
            received: 0,
            received_prior: 0,
            expected_prior: 0,
            jitter_clock: 0.0,
            last_transit: None,
            duplicates: 0,
            reordered: 0,
        }
    }

    /// Record a received packet at local time `arrival`.
    pub fn on_packet(&mut self, pkt: &RtpPacket, arrival: MediaTime) {
        if !self.started {
            self.started = true;
            self.base_seq = pkt.seq;
            self.max_seq = pkt.seq;
            self.received = 1;
        } else {
            let delta = pkt.seq.wrapping_sub(self.max_seq);
            if delta == 0 {
                self.duplicates += 1;
                return;
            } else if delta < 0x8000 {
                // Forward movement (possibly skipping lost packets).
                if pkt.seq < self.max_seq {
                    self.cycles += 1; // wrapped
                }
                self.max_seq = pkt.seq;
            } else {
                // Late/out-of-order packet.
                self.reordered += 1;
            }
            self.received += 1;
        }
        // Jitter (RFC 3550 §6.4.1): transit = arrival − timestamp, both in
        // clock units; J += (|D| − J) / 16.
        let arrival_clock =
            (arrival.as_micros() as i128 * self.clock_rate as i128 / 1_000_000) as i64;
        let transit = arrival_clock - pkt.timestamp as i64;
        if let Some(prev) = self.last_transit {
            let d = (transit - prev).abs() as f64;
            self.jitter_clock += (d - self.jitter_clock) / 16.0;
        }
        self.last_transit = Some(transit);
    }

    /// Extended highest sequence number (cycles ≪ 16 | max_seq).
    pub fn extended_highest_seq(&self) -> u32 {
        (self.cycles << 16) | self.max_seq as u32
    }

    /// Total packets expected so far.
    pub fn expected(&self) -> u64 {
        if !self.started {
            return 0;
        }
        let ext_max = ((self.cycles as u64) << 16) | self.max_seq as u64;
        ext_max.wrapping_sub(self.base_seq as u64) + 1
    }

    /// Cumulative packets lost (never negative; duplicates can make the
    /// naive count negative, clamp per RFC).
    pub fn cumulative_lost(&self) -> u64 {
        self.expected().saturating_sub(self.received)
    }

    /// Current jitter estimate as a duration.
    pub fn jitter(&self) -> MediaDuration {
        MediaDuration::from_micros(clock_to_micros(self.jitter_clock as u32, self.clock_rate))
    }

    /// Loss fraction since the previous call (RFC 3550 report-interval loss),
    /// in [0, 1], and roll the report window forward.
    pub fn take_interval_loss(&mut self) -> f64 {
        let expected = self.expected();
        let expected_interval = expected.saturating_sub(self.expected_prior);
        let received_interval = self.received.saturating_sub(self.received_prior);
        self.expected_prior = expected;
        self.received_prior = self.received;
        if expected_interval == 0 {
            return 0.0;
        }
        let lost = expected_interval.saturating_sub(received_interval);
        lost as f64 / expected_interval as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{micros_to_clock, PayloadType};

    fn pkt(seq: u16, ts_us: i64) -> RtpPacket {
        RtpPacket::synthetic(
            PayloadType::Mpeg,
            false,
            seq,
            micros_to_clock(ts_us, 90_000),
            7,
            100,
        )
    }

    #[test]
    fn clean_stream_no_loss_no_jitter() {
        let mut st = ReceiverStats::new(90_000);
        for i in 0..100u16 {
            // Perfect pacing: constant transit of 10 ms.
            st.on_packet(
                &pkt(i, i as i64 * 40_000),
                MediaTime::from_micros(i as i64 * 40_000 + 10_000),
            );
        }
        assert_eq!(st.received, 100);
        assert_eq!(st.expected(), 100);
        assert_eq!(st.cumulative_lost(), 0);
        assert_eq!(st.jitter(), MediaDuration::ZERO);
        assert_eq!(st.take_interval_loss(), 0.0);
    }

    #[test]
    fn gaps_count_as_loss() {
        let mut st = ReceiverStats::new(90_000);
        for i in [0u16, 1, 2, 5, 6, 9] {
            st.on_packet(
                &pkt(i, i as i64 * 40_000),
                MediaTime::from_micros(i as i64 * 40_000),
            );
        }
        assert_eq!(st.expected(), 10);
        assert_eq!(st.received, 6);
        assert_eq!(st.cumulative_lost(), 4);
        let f = st.take_interval_loss();
        assert!((f - 0.4).abs() < 1e-9, "{f}");
        // The next interval starts clean.
        st.on_packet(&pkt(10, 400_000), MediaTime::from_micros(400_000));
        let f = st.take_interval_loss();
        assert_eq!(f, 0.0);
    }

    #[test]
    fn wraparound_extends_sequence() {
        let mut st = ReceiverStats::new(90_000);
        st.on_packet(&pkt(65_534, 0), MediaTime::from_micros(0));
        st.on_packet(&pkt(65_535, 40_000), MediaTime::from_micros(40_000));
        st.on_packet(&pkt(0, 80_000), MediaTime::from_micros(80_000));
        st.on_packet(&pkt(1, 120_000), MediaTime::from_micros(120_000));
        assert_eq!(st.extended_highest_seq(), (1 << 16) | 1);
        assert_eq!(st.expected(), 4);
        assert_eq!(st.cumulative_lost(), 0);
    }

    #[test]
    fn duplicates_and_reorders_tracked() {
        let mut st = ReceiverStats::new(90_000);
        st.on_packet(&pkt(0, 0), MediaTime::from_micros(0));
        st.on_packet(&pkt(2, 80_000), MediaTime::from_micros(80_000));
        st.on_packet(&pkt(1, 40_000), MediaTime::from_micros(90_000)); // late
        st.on_packet(&pkt(2, 80_000), MediaTime::from_micros(95_000)); // dup
        assert_eq!(st.duplicates, 1);
        assert_eq!(st.reordered, 1);
        assert_eq!(st.received, 3);
        assert_eq!(st.cumulative_lost(), 0);
    }

    #[test]
    fn jitter_grows_with_variable_transit() {
        let mut st = ReceiverStats::new(90_000);
        // Alternate transit between 10 ms and 30 ms → |D| = 20 ms each step.
        for i in 0..64u16 {
            let ts = i as i64 * 40_000;
            let transit = if i % 2 == 0 { 10_000 } else { 30_000 };
            st.on_packet(&pkt(i, ts), MediaTime::from_micros(ts + transit));
        }
        // The estimator converges towards |D| = 20 ms.
        let j = st.jitter();
        assert!(
            j > MediaDuration::from_millis(15) && j <= MediaDuration::from_millis(20),
            "jitter {j}"
        );
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let mut st = ReceiverStats::new(8_000);
        assert_eq!(st.expected(), 0);
        assert_eq!(st.cumulative_lost(), 0);
        assert_eq!(st.take_interval_loss(), 0.0);
    }
}

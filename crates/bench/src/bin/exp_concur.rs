#![allow(clippy::field_reassign_with_default)]
//! EXP-CONCUR — service scalability: concurrent clients sharing one
//! multimedia server uplink. The paper positions the service for broadband
//! deployment (HPDC venue) but never measures multi-client behaviour; this
//! experiment sweeps the client count and reports per-client quality and
//! aggregate delivery.

use hermes_bench::{ExpOpts, Table};
use hermes_core::{MediaTime, PricingClass, ServerId};
use hermes_service::{install_course, ClientConfig, LessonShape, ServerConfig, WorldBuilder};
use hermes_simnet::{LinkSpec, SimRng};

struct Point {
    clients: usize,
    completed: usize,
    rejected: usize,
    mean_startup_ms: f64,
    total_glitches: u64,
    total_disruptions: u64,
    degrades: u64,
    uplink_mbps: f64,
}

fn run_point(n_clients: usize, seed: u64) -> Point {
    let mut b = WorldBuilder::new(seed);
    // One server behind a 25 Mbps uplink (the shared bottleneck).
    let server = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(25_000_000),
        ServerConfig::default(),
    );
    let mut clients = Vec::new();
    for _ in 0..n_clients {
        let mut cfg = ClientConfig::default();
        cfg.class = PricingClass::Premium; // isolate sharing, not admission
        cfg.form.class = PricingClass::Premium;
        clients.push(b.add_client(LinkSpec::lan(100_000_000), cfg));
    }
    let mut sim = b.build(seed);
    let mut rng = SimRng::seed_from_u64(seed ^ 0x5151);
    let lessons = install_course(
        sim.app_mut().server_mut(server),
        "Shared",
        &["scalability"],
        1,
        1,
        LessonShape {
            images: 1,
            image_secs: 2,
            narrated_clip_secs: Some(20),
            closing_audio_secs: None,
        },
        &mut rng,
    );
    // Staggered arrivals over 3 s.
    for (i, node) in clients.iter().enumerate() {
        let node = *node;
        let doc = lessons[0];
        sim.run_until(MediaTime::from_micros(
            (i as i64 * 3_000_000) / n_clients.max(1) as i64,
        ));
        sim.with_api(|w, api| {
            w.client_mut(node).connect(api, server, Some(doc));
        });
    }
    let horizon = MediaTime::from_secs(60);
    sim.run_until(horizon);

    let mut p = Point {
        clients: n_clients,
        completed: 0,
        rejected: 0,
        mean_startup_ms: 0.0,
        total_glitches: 0,
        total_disruptions: 0,
        degrades: 0,
        uplink_mbps: 0.0,
    };
    let mut startup_sum = 0f64;
    for node in &clients {
        let c = sim.app().client(*node);
        if !c.errors.is_empty() {
            p.rejected += 1;
            continue;
        }
        if let Some((_, startup, _)) = c.completed.first() {
            p.completed += 1;
            startup_sum += startup.as_millis() as f64;
        }
        if let Some(pres) = &c.presentation {
            let s = pres.engine.total_stats();
            p.total_glitches += s.glitches;
            p.total_disruptions += s.glitches + s.duplicates_played + s.frames_dropped;
        }
    }
    if p.completed > 0 {
        p.mean_startup_ms = startup_sum / p.completed as f64;
    }
    let srv = sim.app().server(server);
    for sess in srv.sessions.values() {
        p.degrades += sess.qos.degrades_issued;
    }
    let bytes: u64 = srv
        .sessions
        .values()
        .flat_map(|s| s.streams.values())
        .map(|t| t.bytes_sent)
        .sum();
    // Mean uplink utilization over the active window (~25 s of streaming).
    p.uplink_mbps = bytes as f64 * 8.0 / 25.0 / 1e6;
    p
}

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let seed = opts.seed(7);
    out.line(
        "workload: N clients each streaming a 22 s lesson (≈2.25 Mbps nominal)\n\
         through one 25 Mbps server uplink; Premium contracts (97% utilization\n\
         ceiling) — ≈10 nominal-rate flows fit",
    );
    let mut t = Table::new(vec![
        "clients",
        "completed",
        "rejected",
        "mean startup (ms)",
        "glitches",
        "disruptions",
        "degrades",
        "mean uplink Mbps",
    ]);
    for &n in &[1usize, 4, 8, 10, 12, 16] {
        let p = run_point(n, seed);
        t.row(vec![
            p.clients.to_string(),
            p.completed.to_string(),
            p.rejected.to_string(),
            format!("{:.0}", p.mean_startup_ms),
            p.total_glitches.to_string(),
            p.total_disruptions.to_string(),
            p.degrades.to_string(),
            format!("{:.1}", p.uplink_mbps),
        ]);
    }
    out.table("EXP-CONCUR — concurrent clients on one 25 Mbps uplink", &t);
    out.line(
        "expected shape: per-client quality is flat (zero glitches, constant\n\
         startup) at every scale because bandwidth reservations gate admission:\n\
         once the uplink is committed (~10 flows) additional requests are\n\
         rejected instead of degrading everyone — the paper's admission rule\n\
         protecting existing users. Grading handles *in-session* congestion\n\
         (EXP-GRADE); admission handles *inter-session* contention.",
    );
}

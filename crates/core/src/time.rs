//! Time primitives for presentation scheduling and simulation.
//!
//! All schedule arithmetic uses integer **microseconds** so that playout
//! deadlines, buffer windows and skew measurements are exact — the paper's
//! synchronization mechanisms compare deadlines and arrival times directly,
//! and floating point drift would make property tests flaky.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in time, measured in microseconds from an epoch.
///
/// Two epochs are used in the system and both are represented by this type:
/// * *media time*: microseconds since the start of a presentation scenario
///   (the "relative start time" of the paper's markup language);
/// * *simulation time*: microseconds since the start of a simulation run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MediaTime(pub i64);

/// A span of time in microseconds. May be negative when it represents a skew.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MediaDuration(pub i64);

impl MediaTime {
    /// The zero point (presentation start / simulation start).
    pub const ZERO: MediaTime = MediaTime(0);
    /// The greatest representable instant; used as an "infinite" deadline.
    pub const MAX: MediaTime = MediaTime(i64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        MediaTime(s * 1_000_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        MediaTime(ms * 1_000)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: i64) -> Self {
        MediaTime(us)
    }
    /// Value in microseconds.
    pub const fn as_micros(self) -> i64 {
        self.0
    }
    /// Value in (truncated) milliseconds.
    pub const fn as_millis(self) -> i64 {
        self.0 / 1_000
    }
    /// Value in seconds as f64 (for reporting only, never for scheduling).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: MediaDuration) -> MediaTime {
        MediaTime(self.0.saturating_add(d.0))
    }
    /// The earlier of two instants.
    pub fn min(self, other: MediaTime) -> MediaTime {
        if self <= other {
            self
        } else {
            other
        }
    }
    /// The later of two instants.
    pub fn max(self, other: MediaTime) -> MediaTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl MediaDuration {
    /// Zero-length duration.
    pub const ZERO: MediaDuration = MediaDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        MediaDuration(s * 1_000_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        MediaDuration(ms * 1_000)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: i64) -> Self {
        MediaDuration(us)
    }
    /// Construct from seconds given as f64, rounding to the nearest microsecond.
    pub fn from_secs_f64(s: f64) -> Self {
        MediaDuration((s * 1e6).round() as i64)
    }
    /// Value in microseconds.
    pub const fn as_micros(self) -> i64 {
        self.0
    }
    /// Value in (truncated) milliseconds.
    pub const fn as_millis(self) -> i64 {
        self.0 / 1_000
    }
    /// Value in seconds as f64 (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Absolute value (used when a skew's sign is irrelevant).
    pub const fn abs(self) -> MediaDuration {
        MediaDuration(self.0.abs())
    }
    /// True iff the duration is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
    /// True iff the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
    /// The smaller of two durations.
    pub fn min(self, other: MediaDuration) -> MediaDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
    /// The larger of two durations.
    pub fn max(self, other: MediaDuration) -> MediaDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
    /// Checked division yielding how many times `unit` fits in `self`.
    pub fn div_duration(self, unit: MediaDuration) -> i64 {
        assert!(unit.0 != 0, "division by zero duration");
        self.0 / unit.0
    }
}

impl Add<MediaDuration> for MediaTime {
    type Output = MediaTime;
    fn add(self, rhs: MediaDuration) -> MediaTime {
        MediaTime(self.0 + rhs.0)
    }
}
impl AddAssign<MediaDuration> for MediaTime {
    fn add_assign(&mut self, rhs: MediaDuration) {
        self.0 += rhs.0;
    }
}
impl Sub<MediaDuration> for MediaTime {
    type Output = MediaTime;
    fn sub(self, rhs: MediaDuration) -> MediaTime {
        MediaTime(self.0 - rhs.0)
    }
}
impl SubAssign<MediaDuration> for MediaTime {
    fn sub_assign(&mut self, rhs: MediaDuration) {
        self.0 -= rhs.0;
    }
}
impl Sub<MediaTime> for MediaTime {
    type Output = MediaDuration;
    fn sub(self, rhs: MediaTime) -> MediaDuration {
        MediaDuration(self.0 - rhs.0)
    }
}
impl Add for MediaDuration {
    type Output = MediaDuration;
    fn add(self, rhs: MediaDuration) -> MediaDuration {
        MediaDuration(self.0 + rhs.0)
    }
}
impl AddAssign for MediaDuration {
    fn add_assign(&mut self, rhs: MediaDuration) {
        self.0 += rhs.0;
    }
}
impl Sub for MediaDuration {
    type Output = MediaDuration;
    fn sub(self, rhs: MediaDuration) -> MediaDuration {
        MediaDuration(self.0 - rhs.0)
    }
}
impl SubAssign for MediaDuration {
    fn sub_assign(&mut self, rhs: MediaDuration) {
        self.0 -= rhs.0;
    }
}
impl Mul<i64> for MediaDuration {
    type Output = MediaDuration;
    fn mul(self, rhs: i64) -> MediaDuration {
        MediaDuration(self.0 * rhs)
    }
}
impl Div<i64> for MediaDuration {
    type Output = MediaDuration;
    fn div(self, rhs: i64) -> MediaDuration {
        MediaDuration(self.0 / rhs)
    }
}

impl fmt::Display for MediaTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}
impl fmt::Display for MediaDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(MediaTime::from_secs(2), MediaTime::from_millis(2000));
        assert_eq!(MediaTime::from_millis(3), MediaTime::from_micros(3000));
        assert_eq!(MediaDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn time_minus_time_is_duration() {
        let a = MediaTime::from_millis(1500);
        let b = MediaTime::from_millis(1000);
        assert_eq!(a - b, MediaDuration::from_millis(500));
        assert_eq!(b - a, MediaDuration::from_millis(-500));
        assert!((b - a).is_negative());
        assert_eq!((b - a).abs(), MediaDuration::from_millis(500));
    }

    #[test]
    fn time_plus_duration() {
        let t = MediaTime::from_secs(1) + MediaDuration::from_millis(250);
        assert_eq!(t.as_millis(), 1250);
        let t2 = t - MediaDuration::from_millis(250);
        assert_eq!(t2, MediaTime::from_secs(1));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = MediaTime::from_millis(10);
        let b = MediaTime::from_millis(20);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(
            MediaDuration::from_millis(5).max(MediaDuration::from_millis(-7)),
            MediaDuration::from_millis(5)
        );
    }

    #[test]
    fn duration_scaling() {
        let d = MediaDuration::from_millis(40);
        assert_eq!(d * 25, MediaDuration::from_secs(1));
        assert_eq!(MediaDuration::from_secs(1) / 25, d);
        assert_eq!(MediaDuration::from_secs(1).div_duration(d), 25);
    }

    #[test]
    fn saturating_add_never_overflows() {
        let t = MediaTime::MAX.saturating_add(MediaDuration::from_secs(10));
        assert_eq!(t, MediaTime::MAX);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(MediaDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(MediaDuration::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", MediaTime::from_millis(1250)), "1.250s");
        assert_eq!(format!("{}", MediaDuration::from_millis(-80)), "-0.080s");
    }
}

//! Quality-of-Service parameter types.
//!
//! §4 of the paper: a new connection's load is "a combination of the resource
//! requirements the data that should be transmitted holds (e.g. bandwidth,
//! interarrival delay, delay jitter, packet loss probability), and the lower
//! thresholds in QoS and Quality of Presentation the user is willing to
//! accept". Client and server QoS managers exchange these measurements in
//! feedback reports (RTCP receiver reports in the implementation).

use crate::time::{MediaDuration, MediaTime};
use serde::{Deserialize, Serialize};

/// Static QoS requirements a stream declares when its connection is set up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosRequirement {
    /// Mean bandwidth the stream needs at nominal quality, bits/second.
    pub bandwidth_bps: u64,
    /// Peak bandwidth, bits/second (burst allowance).
    pub peak_bandwidth_bps: u64,
    /// Maximum tolerable one-way transfer delay.
    pub max_delay: MediaDuration,
    /// Maximum tolerable delay jitter.
    pub max_jitter: MediaDuration,
    /// Maximum tolerable packet-loss probability, in [0, 1].
    pub max_loss: f64,
}

impl QosRequirement {
    /// A lenient requirement for discrete media (text/images over TCP):
    /// reliability is provided by retransmission, so loss/jitter bounds are moot.
    pub fn discrete(bandwidth_bps: u64) -> Self {
        QosRequirement {
            bandwidth_bps,
            peak_bandwidth_bps: bandwidth_bps * 2,
            max_delay: MediaDuration::from_secs(5),
            max_jitter: MediaDuration::from_secs(5),
            max_loss: 0.0,
        }
    }
    /// A strict requirement template for continuous media.
    pub fn continuous(bandwidth_bps: u64, max_delay_ms: i64, max_loss: f64) -> Self {
        QosRequirement {
            bandwidth_bps,
            peak_bandwidth_bps: bandwidth_bps + bandwidth_bps / 2,
            max_delay: MediaDuration::from_millis(max_delay_ms),
            max_jitter: MediaDuration::from_millis(max_delay_ms / 2),
            max_loss,
        }
    }
}

/// Quality-of-Presentation floor the user accepts, expressed as the lowest
/// quality-ladder level (0 = best) the service may degrade a stream to before
/// it must stop transmitting the stream instead (§4: "when falling to the
/// lower threshold, the service may choose to stop transmitting").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PresentationFloor {
    /// Deepest acceptable degradation level for video streams.
    pub video_floor: u8,
    /// Deepest acceptable degradation level for audio streams.
    pub audio_floor: u8,
}

impl Default for PresentationFloor {
    fn default() -> Self {
        // By default allow full ladder depth for video, shallow for audio —
        // the paper grades video first because "users can tolerate lower
        // video quality rather than not hear well".
        PresentationFloor {
            video_floor: 4,
            audio_floor: 2,
        }
    }
}

/// A windowed measurement of a connection's observed condition, computed by
/// the client QoS manager from packet timestamps and sequence numbers, and
/// shipped to the server QoS manager as a feedback report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosMeasurement {
    /// Stream this measurement describes.
    pub window_end: MediaTime,
    /// Mean one-way packet delay over the window.
    pub mean_delay: MediaDuration,
    /// Estimated interarrival jitter (RFC 3550 style smoothed estimate).
    pub jitter: MediaDuration,
    /// Fraction of packets lost in the window, in [0, 1].
    pub loss_fraction: f64,
    /// Packets received in the window.
    pub packets_received: u64,
    /// Receiver buffer occupancy as a fraction of capacity, in [0, 1].
    pub buffer_occupancy: f64,
}

impl QosMeasurement {
    /// An "all quiet" measurement (no traffic observed yet).
    pub fn idle(now: MediaTime) -> Self {
        QosMeasurement {
            window_end: now,
            mean_delay: MediaDuration::ZERO,
            jitter: MediaDuration::ZERO,
            loss_fraction: 0.0,
            packets_received: 0,
            buffer_occupancy: 0.0,
        }
    }

    /// Does this measurement violate the given requirement?
    pub fn violates(&self, req: &QosRequirement) -> bool {
        self.mean_delay > req.max_delay
            || self.jitter > req.max_jitter
            || self.loss_fraction > req.max_loss + f64::EPSILON
    }

    /// A scalar congestion score in [0, ∞): 0 = perfectly within requirement,
    /// 1 = exactly at the limit on the worst dimension, >1 = violating.
    /// The flow scheduler uses this to rank streams for degradation.
    pub fn congestion_score(&self, req: &QosRequirement) -> f64 {
        let d = if req.max_delay.as_micros() > 0 {
            self.mean_delay.as_micros() as f64 / req.max_delay.as_micros() as f64
        } else {
            0.0
        };
        let j = if req.max_jitter.as_micros() > 0 {
            self.jitter.as_micros() as f64 / req.max_jitter.as_micros() as f64
        } else {
            0.0
        };
        let l = if req.max_loss > 0.0 {
            self.loss_fraction / req.max_loss
        } else if self.loss_fraction > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        d.max(j).max(l)
    }
}

/// Pricing classes used by the admission controller (§4: "a user who pays
/// more should be serviced, even though it affects the other users").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PricingClass {
    /// Best-effort subscribers; first to be rejected under load.
    Economy,
    /// Standard subscribers.
    Standard,
    /// Premium subscribers; admitted even when the network is strained.
    Premium,
}

impl PricingClass {
    /// Relative admission priority weight (higher = more likely admitted).
    pub fn priority(self) -> u8 {
        match self {
            PricingClass::Economy => 0,
            PricingClass::Standard => 1,
            PricingClass::Premium => 2,
        }
    }
    /// Utilization headroom this class is allowed to push the network to,
    /// as a fraction of capacity.
    pub fn admission_ceiling(self) -> f64 {
        match self {
            PricingClass::Economy => 0.70,
            PricingClass::Standard => 0.85,
            PricingClass::Premium => 0.97,
        }
    }
    /// All classes, lowest priority first.
    pub const ALL: [PricingClass; 3] = [
        PricingClass::Economy,
        PricingClass::Standard,
        PricingClass::Premium,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> QosRequirement {
        QosRequirement::continuous(1_000_000, 200, 0.02)
    }

    #[test]
    fn continuous_template_fields() {
        let r = req();
        assert_eq!(r.bandwidth_bps, 1_000_000);
        assert_eq!(r.max_delay, MediaDuration::from_millis(200));
        assert_eq!(r.max_jitter, MediaDuration::from_millis(100));
    }

    #[test]
    fn idle_measurement_never_violates() {
        let m = QosMeasurement::idle(MediaTime::ZERO);
        assert!(!m.violates(&req()));
        assert_eq!(m.congestion_score(&req()), 0.0);
    }

    #[test]
    fn violation_detection() {
        let mut m = QosMeasurement::idle(MediaTime::ZERO);
        m.mean_delay = MediaDuration::from_millis(250);
        assert!(m.violates(&req()));
        m.mean_delay = MediaDuration::from_millis(10);
        m.loss_fraction = 0.05;
        assert!(m.violates(&req()));
        m.loss_fraction = 0.01;
        assert!(!m.violates(&req()));
    }

    #[test]
    fn congestion_score_is_max_dimension() {
        let mut m = QosMeasurement::idle(MediaTime::ZERO);
        m.mean_delay = MediaDuration::from_millis(100); // 0.5 of limit
        m.jitter = MediaDuration::from_millis(90); // 0.9 of limit
        m.loss_fraction = 0.002; // 0.1 of limit
        let s = m.congestion_score(&req());
        assert!((s - 0.9).abs() < 1e-9, "score {s}");
    }

    #[test]
    fn zero_loss_budget_with_loss_is_infinite() {
        let mut m = QosMeasurement::idle(MediaTime::ZERO);
        m.loss_fraction = 0.001;
        let r = QosRequirement::discrete(64_000);
        assert!(m.congestion_score(&r).is_infinite());
    }

    #[test]
    fn pricing_priorities_ordered() {
        assert!(PricingClass::Premium.priority() > PricingClass::Standard.priority());
        assert!(PricingClass::Standard.priority() > PricingClass::Economy.priority());
        assert!(
            PricingClass::Premium.admission_ceiling() > PricingClass::Economy.admission_ceiling()
        );
    }
}

//! Client-side media buffers — "a multiple thread queue; each thread is
//! initialized after the establishment of its corresponding media
//! connection" (§4).
//!
//! Each buffer stages one stream's frames ahead of playout. Its length
//! corresponds to a playback time, the **media time window**: "this initial
//! delay is inserted on purpose in order to feed each involved media buffer
//! with a quantity of data ... The media time window is primarily used to
//! smooth delays inserted by the network, the operating system, the
//! transmission/receiving mechanisms."
//!
//! The buffer exposes the occupancy signals the short-term synchronization
//! mechanism monitors: watermark state (underflow / normal / overflow) and
//! the staged playback time.

use hermes_core::{ComponentId, MediaDuration, MediaTime};
use hermes_media::MediaFrame;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What [`MediaBuffer::pop`] hands to playout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Popped {
    /// A real staged frame.
    Frame(MediaFrame),
    /// A pending duplicate: replay the previously presented frame
    /// (inserted by the skew repair to hold a leading stream back).
    Duplicate,
}

/// Watermark classification of a buffer's occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferState {
    /// Below the low watermark — playout is at risk (underflow).
    Underflow,
    /// Between the watermarks — healthy.
    Normal,
    /// Above the high watermark — data is piling up (overflow).
    Overflow,
}

/// Configuration of one media buffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Target media time window (prefill depth before playout may start).
    pub time_window: MediaDuration,
    /// Low watermark as a fraction of the time window.
    pub low_watermark: f64,
    /// High watermark as a fraction of the time window (> 1 means the
    /// buffer may hold more than the nominal window before overflowing).
    pub high_watermark: f64,
    /// Hard capacity in frames (drop-newest beyond this).
    pub capacity_frames: usize,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig {
            time_window: MediaDuration::from_millis(1_000),
            low_watermark: 0.25,
            high_watermark: 1.75,
            capacity_frames: 4_096,
        }
    }
}

impl BufferConfig {
    /// A config with the given window and default watermarks.
    pub fn with_window(time_window: MediaDuration) -> Self {
        BufferConfig {
            time_window,
            ..Default::default()
        }
    }
}

/// Counters for one buffer's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Frames accepted.
    pub frames_in: u64,
    /// Frames handed to playout.
    pub frames_out: u64,
    /// Frames dropped by overflow control (the skew/occupancy mechanism).
    pub frames_dropped: u64,
    /// Frames synthesized by duplication (underflow/skew repair).
    pub frames_duplicated: u64,
    /// Frames rejected because the hard capacity was hit.
    pub frames_rejected: u64,
    /// Frames rejected because they arrived after playout already presented
    /// a later pts (stale on arrival — presenting them would run the
    /// timeline backwards).
    pub frames_late: u64,
    /// Transitions into the underflow state.
    pub underflow_events: u64,
    /// Transitions into the overflow state.
    pub overflow_events: u64,
}

/// One stream's staging buffer. Frames are kept in presentation (pts)
/// order regardless of arrival order — network jitter reorders datagrams,
/// and playout must consume the stream in timeline order.
#[derive(Debug, Clone)]
pub struct MediaBuffer {
    /// The component this buffer serves.
    pub component: ComponentId,
    cfg: BufferConfig,
    queue: VecDeque<MediaFrame>,
    /// Duplicates queued ahead of the real frames (skew repair).
    pending_dups: u32,
    /// Nominal frame period of the stream (for occupancy-time conversion
    /// and duplication).
    frame_period: MediaDuration,
    /// Whether the initial prefill has completed (playout may start).
    primed: bool,
    /// The stream's final frame has been staged — nothing more is coming,
    /// so prefill is as complete as it can get.
    complete: bool,
    /// The pts of the last real frame handed to playout. Arrivals earlier
    /// than this are late: the timeline has already moved past them.
    last_popped_pts: Option<MediaTime>,
    /// Last watermark state (for edge-triggered event counting).
    last_state: BufferState,
    /// Counters.
    pub stats: BufferStats,
}

impl MediaBuffer {
    /// Create a buffer for a stream with the given frame period.
    pub fn new(component: ComponentId, cfg: BufferConfig, frame_period: MediaDuration) -> Self {
        assert!(
            frame_period.as_micros() > 0,
            "frame period must be positive"
        );
        MediaBuffer {
            component,
            cfg,
            queue: VecDeque::new(),
            pending_dups: 0,
            frame_period,
            primed: false,
            complete: false,
            last_popped_pts: None,
            last_state: BufferState::Underflow,
            stats: BufferStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BufferConfig {
        &self.cfg
    }

    /// Frames currently staged (pending duplicates included).
    pub fn len(&self) -> usize {
        self.queue.len() + self.pending_dups as usize
    }
    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.pending_dups == 0
    }

    /// Staged playback time: staged units × frame period.
    pub fn staged_time(&self) -> MediaDuration {
        self.frame_period * self.len() as i64
    }

    /// Occupancy as a fraction of the nominal time window.
    pub fn occupancy(&self) -> f64 {
        self.staged_time().as_micros() as f64 / self.cfg.time_window.as_micros().max(1) as f64
    }

    /// Current watermark state.
    pub fn state(&self) -> BufferState {
        let occ = self.occupancy();
        if occ < self.cfg.low_watermark {
            BufferState::Underflow
        } else if occ > self.cfg.high_watermark {
            BufferState::Overflow
        } else {
            BufferState::Normal
        }
    }

    /// Has the initial media-time-window prefill completed? A stream whose
    /// final frame is staged is primed regardless of depth — no more data
    /// is coming (a single still image can never fill a 2 s window).
    pub fn is_primed(&self) -> bool {
        self.primed || self.complete
    }

    /// Accept an arriving frame, inserting it in pts order (jitter reorders
    /// arrivals). Returns false if the frame was rejected (hard capacity).
    pub fn push(&mut self, frame: MediaFrame) -> bool {
        if self.len() >= self.cfg.capacity_frames {
            self.stats.frames_rejected += 1;
            return false;
        }
        if frame.last {
            self.complete = true;
        }
        // A frame whose pts playout has already passed can never be
        // presented in order; staging it would hand playout a timeline
        // running backwards. Drop it (the `last` latch above still fires so
        // a late final frame cannot wedge prefill).
        if let Some(lp) = self.last_popped_pts {
            if frame.pts < lp {
                self.stats.frames_late += 1;
                return false;
            }
        }
        // Insert position: scan from the back (arrivals are mostly in
        // order, so this is O(1) amortized).
        let mut idx = self.queue.len();
        while idx > 0 && self.queue[idx - 1].pts > frame.pts {
            idx -= 1;
        }
        self.queue.insert(idx, frame);
        self.stats.frames_in += 1;
        if !self.primed && self.staged_time() >= self.cfg.time_window {
            self.primed = true;
        }
        self.note_state();
        true
    }

    /// Pop the next playout unit: pending duplicates first, then the
    /// earliest staged frame.
    pub fn pop(&mut self) -> Option<Popped> {
        if self.pending_dups > 0 {
            self.pending_dups -= 1;
            self.note_state();
            return Some(Popped::Duplicate);
        }
        let f = self.queue.pop_front();
        if let Some(frame) = &f {
            self.stats.frames_out += 1;
            self.last_popped_pts = Some(frame.pts);
            self.note_state();
        }
        f.map(Popped::Frame)
    }

    /// Peek at the next frame without removing it.
    pub fn peek(&self) -> Option<&MediaFrame> {
        self.queue.front()
    }

    /// The pts of the newest staged frame, if any.
    pub fn newest_pts(&self) -> Option<MediaTime> {
        self.queue.back().map(|f| f.pts)
    }

    /// Drop up to `n` frames from the *front* of the queue (the overflow /
    /// leading-stream repair: discard the stalest data first so playout
    /// skips ahead). Returns how many were actually dropped.
    pub fn drop_frames(&mut self, n: u32) -> u32 {
        let mut dropped = 0;
        for _ in 0..n {
            // Never drop the final frame marker — playout needs it to end.
            if self.queue.len() <= 1 {
                break;
            }
            self.queue.pop_front();
            dropped += 1;
        }
        self.stats.frames_dropped += dropped as u64;
        self.note_state();
        dropped
    }

    /// Drop up to `max_n` staged units from the front whose content is
    /// *stale* — entirely before `before_pts` on the stream's own timeline.
    /// Pending duplicates (always stale by construction) go first. Used by
    /// the overflow and skew repairs: stale frames can never be presented
    /// usefully, while fresh frames above the watermark are left alone.
    /// Never drops the final frame marker. Returns the number dropped.
    pub fn drop_stale(&mut self, before_pts: MediaTime, max_n: u32) -> u32 {
        let mut dropped = 0;
        while dropped < max_n && self.pending_dups > 0 {
            self.pending_dups -= 1;
            dropped += 1;
        }
        while dropped < max_n && self.queue.len() > 1 {
            match self.queue.front() {
                Some(f) if f.pts + self.frame_period <= before_pts && !f.last => {
                    self.queue.pop_front();
                    dropped += 1;
                }
                _ => break,
            }
        }
        self.stats.frames_dropped += dropped as u64;
        self.note_state();
        dropped
    }

    /// Queue `n` duplicates ahead of the staged frames (the skew repair on
    /// a leading stream: replay the last presented data to pause the
    /// stream's media position while its partner catches up). Returns how
    /// many duplicates were queued.
    pub fn duplicate_front(&mut self, n: u32) -> u32 {
        if self.queue.is_empty() && self.pending_dups == 0 {
            return 0; // nothing has been or will be presented to replay
        }
        let room = self
            .cfg
            .capacity_frames
            .saturating_sub(self.queue.len() + self.pending_dups as usize);
        let inserted = (n as usize).min(room) as u32;
        self.pending_dups += inserted;
        self.stats.frames_duplicated += inserted as u64;
        self.note_state();
        inserted
    }

    /// Frames whose deadline (stream start + pts) has passed `now` given the
    /// stream's absolute start time — used by playout to fetch all due frames.
    pub fn due_frame(&mut self, stream_start: MediaTime, now: MediaTime) -> Option<MediaFrame> {
        match self.queue.front() {
            Some(f) if stream_start + (f.pts - MediaTime::ZERO) <= now => match self.pop() {
                Some(Popped::Frame(f)) => Some(f),
                _ => None,
            },
            _ => None,
        }
    }

    fn note_state(&mut self) {
        let s = self.state();
        if s != self.last_state {
            match s {
                BufferState::Underflow => self.stats.underflow_events += 1,
                BufferState::Overflow => self.stats.overflow_events += 1,
                BufferState::Normal => {}
            }
            self.last_state = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::GradeLevel;

    fn frame(seq: u64, pts_ms: i64) -> MediaFrame {
        MediaFrame {
            component: ComponentId::new(1),
            seq,
            pts: MediaTime::from_millis(pts_ms),
            size: 1000,
            key: true,
            level: GradeLevel::NOMINAL,
            last: false,
        }
    }

    fn buf(window_ms: i64) -> MediaBuffer {
        MediaBuffer::new(
            ComponentId::new(1),
            BufferConfig::with_window(MediaDuration::from_millis(window_ms)),
            MediaDuration::from_millis(40), // 25 fps
        )
    }

    #[test]
    fn priming_requires_full_window() {
        let mut b = buf(200); // 200 ms window = 5 frames at 40 ms
        for i in 0..4 {
            b.push(frame(i, i as i64 * 40));
            assert!(!b.is_primed(), "primed too early at {i}");
        }
        b.push(frame(4, 160));
        assert!(b.is_primed());
        // Priming is latched: draining doesn't un-prime.
        while b.pop().is_some() {}
        assert!(b.is_primed());
    }

    #[test]
    fn final_frame_primes_shallow_streams() {
        // A single still image can never fill the window; staging its final
        // frame completes the prefill.
        let mut b = buf(2_000);
        let mut f = frame(0, 0);
        f.last = true;
        b.push(f);
        assert!(b.is_primed());
    }

    #[test]
    fn out_of_order_arrivals_sorted_by_pts() {
        let mut b = buf(400);
        b.push(frame(0, 0));
        b.push(frame(2, 80));
        b.push(frame(1, 40)); // late arrival
        let order: Vec<u64> = std::iter::from_fn(|| match b.pop() {
            Some(Popped::Frame(f)) => Some(f.seq),
            _ => None,
        })
        .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn occupancy_and_states() {
        let mut b = buf(400); // 10 frames nominal
        assert_eq!(b.state(), BufferState::Underflow);
        for i in 0..5 {
            b.push(frame(i, i as i64 * 40));
        }
        assert!((b.occupancy() - 0.5).abs() < 1e-9);
        assert_eq!(b.state(), BufferState::Normal);
        for i in 5..20 {
            b.push(frame(i, i as i64 * 40));
        }
        assert_eq!(b.state(), BufferState::Overflow);
        assert_eq!(b.stats.overflow_events, 1);
    }

    #[test]
    fn underflow_event_counted_on_reentry() {
        let mut b = buf(200);
        for i in 0..5 {
            b.push(frame(i, i as i64 * 40));
        }
        assert_eq!(b.stats.underflow_events, 0); // started in underflow, no transition yet
        for _ in 0..5 {
            b.pop();
        }
        assert_eq!(b.state(), BufferState::Underflow);
        assert_eq!(b.stats.underflow_events, 1);
    }

    #[test]
    fn drop_frames_keeps_last() {
        let mut b = buf(200);
        for i in 0..5 {
            b.push(frame(i, i as i64 * 40));
        }
        let dropped = b.drop_frames(10);
        assert_eq!(dropped, 4); // one frame retained
        assert_eq!(b.len(), 1);
        assert_eq!(b.stats.frames_dropped, 4);
        assert_eq!(b.peek().unwrap().seq, 4);
    }

    #[test]
    fn drop_stale_consumes_dups_first() {
        let mut b = buf(200);
        b.push(frame(0, 0));
        b.push(frame(1, 40));
        b.duplicate_front(2);
        let dropped = b.drop_stale(MediaTime::from_millis(40), 10);
        // 2 dups + frame 0 (pts 0 + 40 <= 40); frame 1 is fresh & last-one-kept.
        assert_eq!(dropped, 3);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn duplicate_front_queues_replays() {
        let mut b = buf(200);
        b.push(frame(7, 280));
        let inserted = b.duplicate_front(3);
        assert_eq!(inserted, 3);
        assert_eq!(b.len(), 4);
        // Duplicates come out first, then the real frame.
        for _ in 0..3 {
            assert_eq!(b.pop(), Some(Popped::Duplicate));
        }
        match b.pop() {
            Some(Popped::Frame(f)) => assert_eq!(f.seq, 7),
            other => panic!("{other:?}"),
        }
        assert_eq!(b.stats.frames_duplicated, 3);
    }

    #[test]
    fn late_arrivals_dropped_after_later_pop() {
        // Regression: a frame whose pts precedes an already-presented frame
        // must not be staged — playout would otherwise run backwards.
        let mut b = buf(200);
        b.push(frame(1, 1_093));
        assert!(
            matches!(b.pop(), Some(Popped::Frame(f)) if f.pts == MediaTime::from_millis(1_093))
        );
        assert!(!b.push(frame(2, 0)), "late frame must be refused");
        assert_eq!(b.stats.frames_late, 1);
        assert_eq!(b.pop(), None);
        // Equal pts is not late (a simulcast duplicate of the current frame).
        assert!(b.push(frame(3, 1_093)));
    }

    #[test]
    fn late_final_frame_still_completes_stream() {
        let mut b = buf(2_000);
        b.push(frame(0, 400));
        b.pop();
        let mut f = frame(1, 0);
        f.last = true;
        assert!(!b.push(f), "late frame dropped");
        assert!(b.is_primed(), "final-frame latch must survive the drop");
    }

    #[test]
    fn duplicate_on_empty_is_noop() {
        let mut b = buf(200);
        assert_eq!(b.duplicate_front(5), 0);
    }

    #[test]
    fn capacity_rejects() {
        let mut b = MediaBuffer::new(
            ComponentId::new(1),
            BufferConfig {
                capacity_frames: 3,
                ..BufferConfig::with_window(MediaDuration::from_millis(100))
            },
            MediaDuration::from_millis(40),
        );
        assert!(b.push(frame(0, 0)));
        assert!(b.push(frame(1, 40)));
        assert!(b.push(frame(2, 80)));
        assert!(!b.push(frame(3, 120)));
        assert_eq!(b.stats.frames_rejected, 1);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn due_frames_respect_deadlines() {
        let mut b = buf(200);
        for i in 0..3 {
            b.push(frame(i, i as i64 * 40));
        }
        let stream_start = MediaTime::from_secs(6);
        // At 6.000s only frame 0 (pts 0) is due.
        assert_eq!(
            b.due_frame(stream_start, MediaTime::from_millis(6_000))
                .unwrap()
                .seq,
            0
        );
        assert!(b
            .due_frame(stream_start, MediaTime::from_millis(6_000))
            .is_none());
        // At 6.080s frames 1 and 2 are both due.
        assert_eq!(
            b.due_frame(stream_start, MediaTime::from_millis(6_080))
                .unwrap()
                .seq,
            1
        );
        assert_eq!(
            b.due_frame(stream_start, MediaTime::from_millis(6_080))
                .unwrap()
                .seq,
            2
        );
        assert!(b
            .due_frame(stream_start, MediaTime::from_millis(6_080))
            .is_none());
    }

    #[test]
    fn staged_time_scales_with_period() {
        let mut b = MediaBuffer::new(
            ComponentId::new(2),
            BufferConfig::with_window(MediaDuration::from_millis(100)),
            MediaDuration::from_millis(20),
        );
        for i in 0..5 {
            b.push(frame(i, i as i64 * 20));
        }
        assert_eq!(b.staged_time(), MediaDuration::from_millis(100));
        assert!(b.is_primed());
    }
}

#![allow(clippy::field_reassign_with_default)]
//! Overload-resilience integration tests: a media node that browns out
//! (slow, not dead) must be detected by the per-replica circuit breaker and
//! covered by hedged fetches, keeping playout smooth where an uncontrolled
//! run visibly stalls — deterministically under fixed seeds.

use hermes_core::{DocumentId, MediaDuration, MediaTime, ServerId};
use hermes_server::BreakerConfig;
use hermes_service::{
    install_figure2, ClientConfig, MediaTierConfig, ServerConfig, ServiceMsg, ServiceWorld,
    WorldBuilder,
};
use hermes_simnet::{FaultKind, LinkSpec, Sim, SimRng};

const SEED: u64 = 31;

/// Everything one brownout run produces, for cross-run comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RunOutcome {
    completed: usize,
    frames_sent: std::collections::BTreeMap<hermes_core::ComponentId, u64>,
    stalls: u64,
    breaker_trips: u64,
    hedges: u64,
    hedge_wins: u64,
    hedge_cancels: u64,
    busy: u64,
    failovers: u64,
    delivered: u64,
}

/// One server + one client + three media nodes playing Fig. 2; at 4 s the
/// replica serving the live continuous stream browns out (service times
/// ×2000 — slower than real-time playout) for 12 s, then recovers. No
/// process ever crashes.
fn brownout_run(overload_on: bool) -> RunOutcome {
    let mut b = WorldBuilder::new(SEED);
    let srv = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let cli = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    for _ in 0..3 {
        b.add_media_node(LinkSpec::san(100_000_000));
    }
    // Tight latency threshold so the browned-out node's EWMA trips quickly;
    // everything else at defaults.
    let mut breaker_cfg = BreakerConfig::default();
    breaker_cfg.latency_threshold = MediaDuration::from_millis(20);
    b.media_config(MediaTierConfig {
        breaker: overload_on,
        breaker_cfg,
        hedging: overload_on,
        ..Default::default()
    });
    let mut sim: Sim<ServiceMsg, ServiceWorld> = b.build(SEED);
    let mut rng = SimRng::seed_from_u64(99);
    install_figure2(sim.app_mut().server_mut(srv), DocumentId::new(1), &mut rng);
    sim.app_mut().distribute_media();
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });

    // Run into the continuous playout, then brown out the node actually
    // serving a live stream.
    sim.run_until(MediaTime::from_secs(4));
    let victim = sim
        .app()
        .server(srv)
        .sessions
        .values()
        .flat_map(|s| s.streams.values())
        .filter(|tx| !tx.done && !tx.stopped && tx.plan.kind.is_continuous())
        .filter_map(|tx| tx.remote.as_ref().map(|r| r.replica))
        .next()
        .expect("no active tier-backed stream at 4 s");
    sim.inject_fault(
        MediaTime::from_secs(4),
        FaultKind::NodeSlow {
            node: victim,
            factor: 2000,
        },
    );
    sim.inject_fault(
        MediaTime::from_secs(16),
        FaultKind::NodeNominal { node: victim },
    );
    sim.run_until(MediaTime::from_secs(40));

    let client = sim.app().client(cli);
    assert!(client.errors.is_empty(), "errors: {:?}", client.errors);
    let server = sim.app().server(srv);
    let tier = server.media.as_ref().expect("media tier not deployed");
    // Transport-level part conservation holds even with hedges, sheds and
    // cancelled losers in the mix.
    sim.app().audit_media_parts(&sim.stats());

    RunOutcome {
        completed: client.completed.len(),
        frames_sent: server
            .sessions
            .values()
            .flat_map(|s| s.streams.iter().map(|(comp, tx)| (*comp, tx.frames_sent)))
            .collect(),
        stalls: tier.stats.stalls,
        breaker_trips: tier.stats.breaker_trips,
        hedges: tier.stats.hedges,
        hedge_wins: tier.stats.hedge_wins,
        hedge_cancels: tier.stats.hedge_cancels,
        busy: tier.stats.busy,
        failovers: tier.stats.failovers,
        delivered: sim.stats().delivered,
    }
}

/// With the breaker and hedging enabled, a slow-node brownout trips the
/// circuit, hedges cover the latency tail from a healthy replica, and the
/// presentation completes with every frame delivered.
#[test]
fn brownout_trips_breaker_and_hedges_cover_tail() {
    let run = brownout_run(true);
    assert_eq!(run.completed, 1, "presentation did not complete: {run:?}");
    assert!(
        run.breaker_trips >= 1,
        "brownout never tripped the breaker: {run:?}"
    );
    assert!(run.hedges >= 1, "no hedged fetches issued: {run:?}");
    assert!(
        run.hedge_wins >= 1,
        "hedges never beat the slow primary: {run:?}"
    );
    assert!(
        run.frames_sent.values().any(|&f| f > 100),
        "continuous media never streamed: {run:?}"
    );
}

/// Same seed, same brownout, overload control off: the server keeps
/// fetching from the slow replica and playout visibly stalls. The full
/// stack must beat that baseline while sending exactly the same frames.
#[test]
fn brownout_with_overload_control_beats_uncontrolled_baseline() {
    let controlled = brownout_run(true);
    let baseline = brownout_run(false);

    // Both complete (the brownout ends), but the uncontrolled run starves
    // the ready queue while the controlled one routes around the sick node.
    assert_eq!(baseline.completed, 1);
    assert_eq!(baseline.breaker_trips, 0);
    assert_eq!(baseline.hedges, 0);
    assert!(
        baseline.stalls > controlled.stalls,
        "overload control did not reduce stalls: controlled {controlled:?} vs baseline {baseline:?}"
    );
    // Routing around the brownout never duplicates or drops frames.
    assert_eq!(
        controlled.frames_sent, baseline.frames_sent,
        "hedging/ejection changed what was sent"
    );
}

/// The whole overload pipeline is deterministic: same seed, same fault,
/// same stats — including hedge races, which are resolved by simulated
/// time, not wall clock.
#[test]
fn brownout_outcome_is_deterministic() {
    assert_eq!(brownout_run(true), brownout_run(true));
    assert_eq!(brownout_run(false), brownout_run(false));
}

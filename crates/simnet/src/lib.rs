//! # hermes-simnet
//!
//! A deterministic discrete-event network simulator — the "broadband
//! network" substrate the paper's testbed provided. The service's mechanisms
//! (prefill windows, skew control, media grading, admission) all react to
//! delay, jitter and loss; this crate generates those with controlled,
//! seedable distributions:
//!
//! * [`rng`] — seeded RNG with normal/exponential/Pareto sampling;
//! * [`models`] — jitter models, loss models (Bernoulli, Gilbert–Elliott)
//!   and background-congestion profiles;
//! * [`topology`] — nodes, bandwidth-limited queued links, static routing
//!   and per-connection bandwidth reservations;
//! * [`sim`] — the event engine with datagram and reliable transports
//!   (store-and-forward, per-hop queueing, ARQ with backoff);
//! * [`faults`] — deterministic fault injection: scheduled node
//!   crash/restart, link partition/heal and link flapping;
//! * [`chaos`] — seeded random fault-plan generation (crash storms,
//!   rolling restarts, partitions, flaps, brownouts with correlated
//!   bursts) and delta-debugging shrinking of failing plans;
//! * [`metrics`] — accumulators, histograms and rate meters (re-exported
//!   from [`hermes_obs::stats`]).
//!
//! The engine carries a [`hermes_obs::Obs`] capture: application callbacks
//! record sim-time-stamped events and spans through [`SimApi`], the engine
//! itself traces injected faults and reliable-transport abandons, and
//! [`Sim::publish_metrics`] snapshots the engine counters into the unified
//! metrics registry.

#![warn(missing_docs)]

pub mod chaos;
pub mod faults;
pub mod metrics;
pub mod models;
pub mod rng;
pub mod sim;
pub mod topology;

pub use chaos::{ChaosProfile, ChaosTargets, IncidentWeights};
pub use faults::{FaultEvent, FaultKind, FaultPlan, PlanError};
pub use hermes_obs::{self as obs, Event, Labels, Obs, Severity, SpanId};
pub use metrics::{Accumulator, DurationHistogram, RateMeter};
pub use models::{CongestionEpoch, CongestionProfile, JitterModel, LossModel, LossState};
pub use rng::SimRng;
pub use sim::{App, Sim, SimApi, SimConfig, SimStats, Transport, WireSize};
pub use topology::{Link, LinkOutcome, LinkSpec, LinkStats, Network};

//! Network topology: nodes, directed links and static shortest-path routing.
//!
//! Links carry the full transmission model: finite bandwidth with a FIFO
//! transmit queue, propagation delay, a jitter model, a loss model and a
//! congestion (background cross-traffic) profile. Bandwidth reservations
//! made by the admission controller are tracked per link.

use crate::models::{CongestionProfile, JitterModel, LossModel, LossState};
use crate::rng::SimRng;
use hermes_core::{ConnectionId, MediaDuration, MediaTime, NodeId};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Static parameters of a directed link.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
    /// Propagation delay.
    pub propagation: MediaDuration,
    /// Jitter model applied per packet.
    pub jitter: JitterModel,
    /// Loss model applied per packet.
    pub loss: LossModel,
    /// Transmit-queue capacity in bytes (drop-tail beyond this).
    pub queue_capacity_bytes: u64,
    /// Background cross-traffic profile.
    pub congestion: CongestionProfile,
}

impl LinkSpec {
    /// A clean, fast LAN-like link: useful default for tests.
    pub fn lan(bandwidth_bps: u64) -> Self {
        LinkSpec {
            bandwidth_bps,
            propagation: MediaDuration::from_micros(200),
            jitter: JitterModel::None,
            loss: LossModel::None,
            queue_capacity_bytes: 1 << 20,
            congestion: CongestionProfile::idle(),
        }
    }

    /// A storage-area link for the media tier: short, fat and clean —
    /// media nodes sit next to the multimedia servers, so propagation is
    /// minimal, bandwidth is high and queues are deep (bulk segment
    /// transfers, not interactive traffic).
    pub fn san(bandwidth_bps: u64) -> Self {
        LinkSpec {
            bandwidth_bps,
            propagation: MediaDuration::from_micros(50),
            jitter: JitterModel::None,
            loss: LossModel::None,
            queue_capacity_bytes: 4 << 20,
            congestion: CongestionProfile::idle(),
        }
    }

    /// A WAN-like link with mild jitter and loss.
    pub fn wan(bandwidth_bps: u64, propagation_ms: i64) -> Self {
        LinkSpec {
            bandwidth_bps,
            propagation: MediaDuration::from_millis(propagation_ms),
            jitter: JitterModel::Exponential {
                mean: MediaDuration::from_millis(2),
            },
            loss: LossModel::Bernoulli { p: 0.001 },
            queue_capacity_bytes: 256 << 10,
            congestion: CongestionProfile::idle(),
        }
    }
}

/// Per-link counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted onto the link.
    pub packets_sent: u64,
    /// Bytes accepted onto the link.
    pub bytes_sent: u64,
    /// Packets dropped by the loss model.
    pub packets_lost: u64,
    /// Packets dropped because the queue overflowed.
    pub packets_dropped_queue: u64,
    /// Packets dropped because the link was administratively down
    /// (fault-injected partition).
    pub packets_dropped_down: u64,
}

/// Runtime state of a directed link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Static parameters.
    pub spec: LinkSpec,
    /// Time the transmitter becomes free.
    pub busy_until: MediaTime,
    /// Loss-model state (Gilbert–Elliott).
    pub loss_state: LossState,
    /// Per-link RNG stream (keeps cross-link determinism independent of
    /// event interleaving).
    pub rng: SimRng,
    /// Counters.
    pub stats: LinkStats,
    /// Bandwidth reserved by admitted connections, bits/second.
    pub reserved_bps: u64,
    /// False while a fault-injected partition holds the link down.
    pub up: bool,
}

/// What happened to one packet offered to a link at time `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// The packet will arrive at the far end at the given time.
    Delivered {
        /// Arrival instant at the downstream node.
        arrival: MediaTime,
    },
    /// Dropped by the loss model while in flight; the instant is when the
    /// tail of the packet left the transmitter (used for loss accounting).
    Lost {
        /// When the sender finished transmitting the doomed packet.
        tx_end: MediaTime,
    },
    /// Dropped immediately: the transmit queue was full.
    QueueFull,
}

impl Link {
    /// Create a link from its spec with a dedicated RNG stream.
    pub fn new(spec: LinkSpec, rng: SimRng) -> Self {
        Link {
            spec,
            busy_until: MediaTime::ZERO,
            loss_state: LossState::default(),
            rng,
            stats: LinkStats::default(),
            reserved_bps: 0,
            up: true,
        }
    }

    /// Effective bandwidth at instant `t`, after background cross-traffic.
    pub fn effective_bandwidth(&self, t: MediaTime) -> u64 {
        let load = self.spec.congestion.load_at(t);
        let eff = (self.spec.bandwidth_bps as f64 * (1.0 - load)).max(1.0);
        eff as u64
    }

    /// Fraction of capacity currently reserved plus background load at `t`.
    pub fn utilization(&self, t: MediaTime) -> f64 {
        let reserved = self.reserved_bps as f64 / self.spec.bandwidth_bps as f64;
        (reserved + self.spec.congestion.load_at(t)).min(1.0)
    }

    /// Offer a packet of `size_bytes` to the link at time `now`; returns the
    /// outcome and updates queue/loss state and counters.
    pub fn transmit(&mut self, now: MediaTime, size_bytes: usize) -> LinkOutcome {
        if !self.up {
            // Partitioned: the packet vanishes at the cut. `Lost` (not
            // `QueueFull`) so the reliable transport keeps retrying and
            // heals transparently when the partition is lifted.
            self.stats.packets_dropped_down += 1;
            return LinkOutcome::Lost { tx_end: now };
        }
        // Queue check: bytes that would wait ahead of this packet.
        let wait = if self.busy_until > now {
            self.busy_until - now
        } else {
            MediaDuration::ZERO
        };
        let bw = self.effective_bandwidth(now);
        let queued_bytes = (wait.as_micros() as u128 * bw as u128 / 8_000_000) as u64;
        if queued_bytes + size_bytes as u64 > self.spec.queue_capacity_bytes {
            self.stats.packets_dropped_queue += 1;
            return LinkOutcome::QueueFull;
        }
        let start_tx = now.max(self.busy_until);
        let tx_time =
            MediaDuration::from_micros(((size_bytes as u128 * 8 * 1_000_000) / bw as u128) as i64);
        let tx_end = start_tx + tx_time;
        self.busy_until = tx_end;
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += size_bytes as u64;

        // Loss: the base model plus congestion-epoch extra loss.
        let base_lost = self.spec.loss.sample(&mut self.loss_state, &mut self.rng);
        let extra = self.spec.congestion.extra_loss_at(now);
        let lost = base_lost || (extra > 0.0 && self.rng.chance(extra));
        if lost {
            self.stats.packets_lost += 1;
            return LinkOutcome::Lost { tx_end };
        }
        let jitter = self.spec.jitter.sample(&mut self.rng);
        LinkOutcome::Delivered {
            arrival: tx_end + self.spec.propagation + jitter,
        }
    }
}

/// The network: a set of nodes and directed links with static routing.
#[derive(Debug)]
pub struct Network {
    names: BTreeMap<NodeId, String>,
    links: HashMap<(NodeId, NodeId), Link>,
    /// next_hop[(src, dst)] = neighbour to forward through.
    routes: HashMap<(NodeId, NodeId), NodeId>,
    /// Reservations: connection → (path links, bps).
    reservations: HashMap<ConnectionId, (Vec<(NodeId, NodeId)>, u64)>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network {
            names: BTreeMap::new(),
            links: HashMap::new(),
            routes: HashMap::new(),
            reservations: HashMap::new(),
        }
    }

    /// Add a node with a display name.
    pub fn add_node(&mut self, id: NodeId, name: impl Into<String>) {
        self.names.insert(id, name.into());
    }

    /// All node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.names.keys().copied().collect()
    }

    /// A node's display name.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.names.get(&id).map(|s| s.as_str())
    }

    /// Add a directed link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec, rng: SimRng) {
        assert!(self.names.contains_key(&from), "unknown node {from}");
        assert!(self.names.contains_key(&to), "unknown node {to}");
        self.links.insert((from, to), Link::new(spec, rng));
        self.routes.clear(); // invalidate routing
    }

    /// Add a symmetric pair of links with the same spec.
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, spec: LinkSpec, rng: &mut SimRng) {
        self.add_link(a, b, spec.clone(), rng.split());
        self.add_link(b, a, spec, rng.split());
    }

    /// Direct link between two nodes, if present.
    pub fn link(&self, from: NodeId, to: NodeId) -> Option<&Link> {
        self.links.get(&(from, to))
    }

    /// Mutable access to a link.
    pub fn link_mut(&mut self, from: NodeId, to: NodeId) -> Option<&mut Link> {
        self.links.get_mut(&(from, to))
    }

    /// Bring both directions of the `a`–`b` link up or down. Returns true if
    /// at least one direction exists. Routing is untouched: packets offered
    /// to a down link are dropped in flight, modelling a partition rather
    /// than a topology change.
    pub fn set_link_up(&mut self, a: NodeId, b: NodeId, up: bool) -> bool {
        let mut found = false;
        for key in [(a, b), (b, a)] {
            if let Some(l) = self.links.get_mut(&key) {
                l.up = up;
                found = true;
            }
        }
        found
    }

    /// True when both existing directions of the `a`–`b` link are up.
    pub fn link_is_up(&self, a: NodeId, b: NodeId) -> bool {
        [(a, b), (b, a)]
            .iter()
            .filter_map(|k| self.links.get(k))
            .all(|l| l.up)
    }

    /// (Re)compute all-pairs next-hop routes by BFS (hop count metric).
    pub fn compute_routes(&mut self) {
        self.routes.clear();
        let nodes: Vec<NodeId> = self.names.keys().copied().collect();
        let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (from, to) in self.links.keys() {
            adj.entry(*from).or_default().push(*to);
        }
        for v in adj.values_mut() {
            v.sort(); // deterministic tie-breaking
        }
        for &src in &nodes {
            // BFS from src recording parents.
            let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
            let mut q = VecDeque::new();
            q.push_back(src);
            parent.insert(src, src);
            while let Some(u) = q.pop_front() {
                if let Some(nbrs) = adj.get(&u) {
                    for &w in nbrs {
                        if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(w) {
                            e.insert(u);
                            q.push_back(w);
                        }
                    }
                }
            }
            for &dst in &nodes {
                if dst == src || !parent.contains_key(&dst) {
                    continue;
                }
                // Walk back from dst to find the first hop out of src.
                let mut cur = dst;
                while parent[&cur] != src {
                    cur = parent[&cur];
                }
                self.routes.insert((src, dst), cur);
            }
        }
    }

    /// The routing next hop from `src` toward `dst`, if reachable.
    /// `compute_routes` must have been called after the last topology change.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        self.routes.get(&(src, dst)).copied()
    }

    /// The node-path from `src` to `dst` (inclusive of both), if reachable.
    /// `compute_routes` must have been called after the last topology change.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let next = *self.routes.get(&(cur, dst))?;
            path.push(next);
            cur = next;
            if path.len() > self.names.len() {
                return None; // should not happen; guards a routing bug
            }
        }
        Some(path)
    }

    /// The links along the path from `src` to `dst`.
    pub fn path_links(&self, src: NodeId, dst: NodeId) -> Option<Vec<(NodeId, NodeId)>> {
        let p = self.path(src, dst)?;
        Some(p.windows(2).map(|w| (w[0], w[1])).collect())
    }

    /// Bottleneck free bandwidth along a path at instant `t`:
    /// min over links of capacity − reserved − background.
    pub fn path_free_bandwidth(&self, src: NodeId, dst: NodeId, t: MediaTime) -> Option<u64> {
        let links = self.path_links(src, dst)?;
        links
            .iter()
            .map(|k| {
                let l = &self.links[k];
                let bg = (l.spec.bandwidth_bps as f64 * l.spec.congestion.load_at(t)) as u64;
                l.spec
                    .bandwidth_bps
                    .saturating_sub(l.reserved_bps)
                    .saturating_sub(bg)
            })
            .min()
    }

    /// Worst utilization along a path at instant `t`.
    pub fn path_utilization(&self, src: NodeId, dst: NodeId, t: MediaTime) -> Option<f64> {
        let links = self.path_links(src, dst)?;
        links
            .iter()
            .map(|k| self.links[k].utilization(t))
            .fold(None, |acc, u| Some(acc.map_or(u, |a: f64| a.max(u))))
    }

    /// Reserve `bps` along the path for a connection. Returns false (and
    /// reserves nothing) if any link lacks headroom.
    pub fn reserve(&mut self, conn: ConnectionId, src: NodeId, dst: NodeId, bps: u64) -> bool {
        let Some(links) = self.path_links(src, dst) else {
            return false;
        };
        for k in &links {
            if self.links[k].reserved_bps + bps > self.links[k].spec.bandwidth_bps {
                return false;
            }
        }
        for k in &links {
            self.links.get_mut(k).unwrap().reserved_bps += bps;
        }
        self.reservations.insert(conn, (links, bps));
        true
    }

    /// Reserve `bps` on an explicit set of links (a partial path). Used when
    /// a flow shares its upstream with an existing reservation — e.g. a
    /// receiver joining a shared multicast flow only needs headroom on the
    /// links not already carrying the group — so only the private tail is
    /// checked and charged. Returns false (and reserves nothing) if any
    /// named link is missing or lacks headroom.
    pub fn reserve_links(
        &mut self,
        conn: ConnectionId,
        links: Vec<(NodeId, NodeId)>,
        bps: u64,
    ) -> bool {
        for k in &links {
            match self.links.get(k) {
                Some(l) if l.reserved_bps + bps <= l.spec.bandwidth_bps => {}
                _ => return false,
            }
        }
        for k in &links {
            self.links.get_mut(k).unwrap().reserved_bps += bps;
        }
        self.reservations.insert(conn, (links, bps));
        true
    }

    /// Release a connection's reservation (idempotent).
    pub fn release(&mut self, conn: ConnectionId) {
        if let Some((links, bps)) = self.reservations.remove(&conn) {
            for k in links {
                if let Some(l) = self.links.get_mut(&k) {
                    l.reserved_bps = l.reserved_bps.saturating_sub(bps);
                }
            }
        }
    }

    /// Total reserved bandwidth for a connection, if registered.
    pub fn reservation(&self, conn: ConnectionId) -> Option<u64> {
        self.reservations.get(&conn).map(|(_, bps)| *bps)
    }

    /// Aggregate stats over all links.
    pub fn total_stats(&self) -> LinkStats {
        let mut s = LinkStats::default();
        for l in self.links.values() {
            s.packets_sent += l.stats.packets_sent;
            s.bytes_sent += l.stats.bytes_sent;
            s.packets_lost += l.stats.packets_lost;
            s.packets_dropped_queue += l.stats.packets_dropped_queue;
            s.packets_dropped_down += l.stats.packets_dropped_down;
        }
        s
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u64) -> NodeId {
        NodeId::new(id)
    }

    fn line_network() -> Network {
        // 0 — 1 — 2, duplex 10 Mbps
        let mut rng = SimRng::seed_from_u64(1);
        let mut net = Network::new();
        net.add_node(n(0), "a");
        net.add_node(n(1), "b");
        net.add_node(n(2), "c");
        net.add_duplex(n(0), n(1), LinkSpec::lan(10_000_000), &mut rng);
        net.add_duplex(n(1), n(2), LinkSpec::lan(10_000_000), &mut rng);
        net.compute_routes();
        net
    }

    #[test]
    fn routing_finds_multi_hop_paths() {
        let net = line_network();
        assert_eq!(net.path(n(0), n(2)).unwrap(), vec![n(0), n(1), n(2)]);
        assert_eq!(net.path(n(2), n(0)).unwrap(), vec![n(2), n(1), n(0)]);
        assert_eq!(net.path(n(1), n(1)).unwrap(), vec![n(1)]);
        assert_eq!(
            net.path_links(n(0), n(2)).unwrap(),
            vec![(n(0), n(1)), (n(1), n(2))]
        );
    }

    #[test]
    fn unreachable_is_none() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut net = Network::new();
        net.add_node(n(0), "a");
        net.add_node(n(1), "b");
        net.add_node(n(9), "island");
        net.add_duplex(n(0), n(1), LinkSpec::lan(1_000_000), &mut rng);
        net.compute_routes();
        assert!(net.path(n(0), n(9)).is_none());
    }

    #[test]
    fn transmit_serializes_packets() {
        let mut net = line_network();
        let l = net.link_mut(n(0), n(1)).unwrap();
        // 10 Mbps → 1250 bytes take 1 ms.
        let t0 = MediaTime::ZERO;
        let o1 = l.transmit(t0, 1250);
        let o2 = l.transmit(t0, 1250);
        let (a1, a2) = match (o1, o2) {
            (LinkOutcome::Delivered { arrival: a1 }, LinkOutcome::Delivered { arrival: a2 }) => {
                (a1, a2)
            }
            other => panic!("{other:?}"),
        };
        // Second packet queues behind the first: arrivals 1 tx-time apart.
        assert_eq!(a2 - a1, MediaDuration::from_millis(1));
        assert_eq!(a1, MediaTime::from_micros(1000 + 200)); // tx + propagation
    }

    #[test]
    fn queue_overflow_drops() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut spec = LinkSpec::lan(8_000_000); // 1 byte/µs
        spec.queue_capacity_bytes = 3000;
        let mut l = Link::new(spec, rng.split());
        // Fill the queue.
        assert!(matches!(
            l.transmit(MediaTime::ZERO, 1500),
            LinkOutcome::Delivered { .. }
        ));
        assert!(matches!(
            l.transmit(MediaTime::ZERO, 1500),
            LinkOutcome::Delivered { .. }
        ));
        // busy_until is now 3000 µs ⇒ 3000 bytes queued ahead > capacity.
        assert_eq!(l.transmit(MediaTime::ZERO, 1500), LinkOutcome::QueueFull);
        assert_eq!(l.stats.packets_dropped_queue, 1);
        // After the queue drains, transmission succeeds again.
        assert!(matches!(
            l.transmit(MediaTime::from_millis(5), 1500),
            LinkOutcome::Delivered { .. }
        ));
    }

    #[test]
    fn congestion_shrinks_effective_bandwidth() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut spec = LinkSpec::lan(10_000_000);
        spec.congestion = CongestionProfile::constant(0.5);
        let l = Link::new(spec, rng.split());
        assert_eq!(l.effective_bandwidth(MediaTime::ZERO), 5_000_000);
        assert!((l.utilization(MediaTime::ZERO) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reservations_respect_capacity() {
        let mut net = line_network();
        let c1 = ConnectionId::new(1);
        let c2 = ConnectionId::new(2);
        assert!(net.reserve(c1, n(0), n(2), 6_000_000));
        // Second reservation exceeds the 10 Mbps bottleneck.
        assert!(!net.reserve(c2, n(0), n(2), 6_000_000));
        assert_eq!(
            net.path_free_bandwidth(n(0), n(2), MediaTime::ZERO),
            Some(4_000_000)
        );
        net.release(c1);
        assert!(net.reserve(c2, n(0), n(2), 6_000_000));
        net.release(c2);
        net.release(c2); // idempotent
        assert_eq!(
            net.path_free_bandwidth(n(0), n(2), MediaTime::ZERO),
            Some(10_000_000)
        );
    }

    #[test]
    fn failed_reservation_reserves_nothing() {
        let mut net = line_network();
        // Pre-load one link asymmetrically.
        net.link_mut(n(1), n(2)).unwrap().reserved_bps = 9_000_000;
        let c = ConnectionId::new(7);
        assert!(!net.reserve(c, n(0), n(2), 2_000_000));
        // First link must not have been charged.
        assert_eq!(net.link(n(0), n(1)).unwrap().reserved_bps, 0);
    }

    #[test]
    fn loss_counted_in_stats() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut spec = LinkSpec::lan(10_000_000);
        spec.loss = LossModel::Bernoulli { p: 0.5 };
        let mut l = Link::new(spec, rng.split());
        let mut lost = 0;
        for i in 0..200 {
            match l.transmit(MediaTime::from_millis(i * 10), 100) {
                LinkOutcome::Lost { .. } => lost += 1,
                LinkOutcome::Delivered { .. } => {}
                LinkOutcome::QueueFull => panic!("queue should not fill"),
            }
        }
        assert_eq!(l.stats.packets_lost, lost);
        assert!(lost > 60 && lost < 140, "lost {lost}");
    }

    #[test]
    fn next_hop_matches_path() {
        let net = line_network();
        assert_eq!(net.next_hop(n(0), n(2)), Some(n(1)));
        assert_eq!(net.next_hop(n(1), n(2)), Some(n(2)));
        assert_eq!(net.next_hop(n(0), n(7)), None);
    }

    #[test]
    fn reserve_links_charges_only_the_tail() {
        let mut net = line_network();
        let shared = ConnectionId::new(1);
        let tail = ConnectionId::new(2);
        // A shared flow already holds the 0→1 trunk.
        assert!(net.reserve(shared, n(0), n(1), 8_000_000));
        // A full-path reservation for a joiner would fail at the trunk...
        assert!(!net.reserve(tail, n(0), n(2), 4_000_000));
        // ...but charging only its private tail link succeeds.
        assert!(net.reserve_links(tail, vec![(n(1), n(2))], 4_000_000));
        assert_eq!(net.link(n(0), n(1)).unwrap().reserved_bps, 8_000_000);
        assert_eq!(net.link(n(1), n(2)).unwrap().reserved_bps, 4_000_000);
        net.release(tail);
        assert_eq!(net.link(n(1), n(2)).unwrap().reserved_bps, 0);
        // Unknown links reserve nothing.
        assert!(!net.reserve_links(tail, vec![(n(0), n(9))], 1));
    }

    #[test]
    fn path_utilization_is_worst_link() {
        let mut net = line_network();
        net.link_mut(n(0), n(1)).unwrap().reserved_bps = 2_000_000;
        net.link_mut(n(1), n(2)).unwrap().reserved_bps = 7_000_000;
        let u = net.path_utilization(n(0), n(2), MediaTime::ZERO).unwrap();
        assert!((u - 0.7).abs() < 1e-9, "{u}");
    }
}

//! The multimedia (Hermes) server actor: session management, document
//! delivery, media-server transmission loops, QoS feedback handling,
//! distributed search and the mail service — everything on the left half of
//! paper Fig. 3, driven by simulator messages and timers.

use crate::protocol::{MailMessage, SearchHit, ServiceMsg};
use crate::timers;
use hermes_core::{
    ComponentId, DocumentId, GradeDecision, GradeLevel, GradingHysteresis, GradingOrder,
    MediaDuration, MediaKind, MediaTime, NodeId, PresentationFloor, PricingClass, ServerId,
    SessionId, UserId,
};
use hermes_media::{segment_of_frame, CodecModel, FrameSource, SegmentFrame};
use hermes_rtp::RtpSender;
use hermes_server::{
    compute_flow_scenario, AccountsDb, AdmissionController, AdmissionDecision, BatchingPolicy,
    BreakerConfig, BreakerState, Charge, ConnectionRequest, FlowConfig, FlowPlan, GroupPhase,
    MultimediaDb, PathCondition, PlacementMap, PressureDetector, ReplicaHealthMap, ReplicaSelector,
    SegmentCache, SegmentKey, ServerQosManager, ShareDecision, SharingMode, SharingPolicy,
};
use hermes_simnet::{DurationHistogram, Labels, Obs, Severity, SimApi, SpanId};
use std::collections::{BTreeMap, VecDeque};

/// One active outgoing media stream of a session.
#[derive(Debug)]
pub struct StreamTx {
    /// The transmission plan.
    pub plan: FlowPlan,
    /// The frame generator. With a media tier it becomes the stream's
    /// *pacer*: it owns seq/pts/level/doneness while the frame content is
    /// gated on segments fetched from the tier (see [`RemoteStream`]).
    pub source: FrameSource,
    /// The RTP sender session.
    pub sender: RtpSender,
    /// Stream finished transmitting naturally.
    pub done: bool,
    /// Stream stopped by the grading engine.
    pub stopped: bool,
    /// Frames sent so far.
    pub frames_sent: u64,
    /// Payload bytes sent so far.
    pub bytes_sent: u64,
    /// Media-tier fetch state; `None` streams read their local store
    /// directly (the pre-tier in-process path).
    pub remote: Option<RemoteStream>,
    /// Patch streams only: stop once the source reaches this presentation
    /// time. Strictly exclusive — the first multicast frame the joiner
    /// receives carries exactly this pts, so the patch covers [0, cutoff)
    /// with no duplicate and no gap.
    pub patch_until: Option<MediaTime>,
}

/// One shared delivery group: several sessions fed by the leader's streams
/// over one simulator multicast group (batching/patching, ISSUE 3).
#[derive(Debug)]
pub struct SharedGroup {
    /// The group id (also the simulator multicast group id).
    pub id: u64,
    /// Delivery epoch, bumped exactly once per media-node fault affecting
    /// the group — the whole group fails over together.
    pub epoch: u64,
    /// The document the group delivers.
    pub document: DocumentId,
    /// The session whose streams feed the group.
    pub leader: SessionId,
    /// All member sessions (leader included).
    pub members: Vec<SessionId>,
    /// When the shared flow starts (creation + batching wait); requests
    /// before this instant join the pending batch.
    pub starts_at: MediaTime,
    /// Media objects pinned in the segment cache for the group's lifetime.
    pub objects: Vec<String>,
    /// Patch cutoffs snapshotted per joiner *at join time* (the same
    /// instant the joiner enters the multicast group): the patch covers
    /// `[0, cutoff)` and the first shared frame the member sees carries
    /// exactly `cutoff` — snapshotting later (at PatchRequest arrival)
    /// would double-deliver frames multicast in between.
    pub patch_cutoffs: BTreeMap<SessionId, Vec<(ComponentId, MediaTime)>>,
}

/// Counters of the stream-sharing machinery on one server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Shared groups opened.
    pub groups_opened: u64,
    /// Requests that joined a pending (not yet started) group.
    pub joins_pending: u64,
    /// Requests that joined a started group with a unicast patch.
    pub joins_patched: u64,
    /// Unicast patch streams started.
    pub patch_streams: u64,
    /// Frames sent over multicast groups.
    pub mcast_frames: u64,
    /// Group epoch bumps (media-tier failovers of a shared flow).
    pub epoch_bumps: u64,
}

/// Media-tier fetch state of one stream: which replica it pulls from and
/// the windowed-pipelining bookkeeping between the pacer and the network.
#[derive(Debug)]
pub struct RemoteStream {
    /// The media object's storage key.
    pub object: String,
    /// Its media kind (selects the shard store on media nodes).
    pub kind: MediaKind,
    /// The media node currently serving this stream.
    pub replica: NodeId,
    /// Segment granularity of this stream's fetches: the tier's configured
    /// value for continuous media, 1 for discrete objects (one oversized
    /// "frame" — fetching a whole segment would pull redundant copies).
    pub frames_per_segment: u32,
    /// Bumped on failover and level retargets; chunks tagged with an older
    /// epoch are stale and dropped.
    pub epoch: u32,
    /// Next segment index to request.
    pub next_request: u64,
    /// Next segment index to append into `ready`.
    pub next_append: u64,
    /// Fetched segments waiting for in-order append (segment → frames).
    pub pending: BTreeMap<u64, Vec<SegmentFrame>>,
    /// In-order frame specs ready for the pacer to consume.
    pub ready: VecDeque<SegmentFrame>,
    /// Frames to drop from the next appended segment (mid-segment starts
    /// after fast-forward or a level retarget).
    pub skip: u32,
    /// Outstanding segment fetches (segment → fetch id).
    pub inflight: BTreeMap<u64, u64>,
}

impl RemoteStream {
    /// Point the fetch window at global frame index `next_seq`, discarding
    /// all buffered and in-flight content (used at stream start and when a
    /// level switch invalidates fetched frame sizes).
    pub fn retarget(&mut self, next_seq: u64) {
        let (seg, off) = segment_of_frame(next_seq, self.frames_per_segment);
        self.pending.clear();
        self.ready.clear();
        self.inflight.clear();
        self.next_request = seg;
        self.next_append = seg;
        self.skip = off;
        self.epoch += 1;
    }

    /// Drain contiguously fetched segments into the ready queue.
    fn drain_ready(&mut self) {
        while let Some(frames) = self.pending.remove(&self.next_append) {
            self.next_append += 1;
            for f in frames {
                if self.skip > 0 {
                    self.skip -= 1;
                } else {
                    self.ready.push_back(f);
                }
            }
        }
    }

    /// Frames buffered or expected from outstanding fetches.
    fn frames_covered(&self) -> u64 {
        self.ready.len() as u64
            + self.pending.values().map(|v| v.len() as u64).sum::<u64>()
            + self.inflight.len() as u64 * self.frames_per_segment as u64
    }
}

/// Configuration of the distributed media tier, shared by the world builder
/// (content distribution) and the multimedia servers (fetch behaviour).
#[derive(Debug, Clone)]
pub struct MediaTierConfig {
    /// Replicas per media object across the media nodes.
    pub replication: usize,
    /// Segment-cache capacity in payload bytes (0 disables caching).
    pub cache_bytes: u64,
    /// Frames per fetched segment.
    pub frames_per_segment: u32,
    /// Maximum outstanding segment fetches per stream (the pipelining
    /// window).
    pub pipeline: u32,
    /// Re-poll interval while a stream is stalled waiting for the tier.
    pub stall_poll: MediaDuration,
    /// Consult the per-replica circuit breaker: score fetch outcomes,
    /// penalise sick replicas at selection time and bound probe traffic
    /// while a tripped circuit is half-open.
    pub breaker: bool,
    /// Circuit-breaker tuning (EWMA thresholds, open timeout, probe count).
    pub breaker_cfg: BreakerConfig,
    /// Issue a duplicate fetch to the next-best replica when the first has
    /// not answered within the hedge delay; first response wins.
    pub hedging: bool,
    /// Floor of the adaptive (P95-derived) hedge delay.
    pub hedge_min: MediaDuration,
    /// Cap of the adaptive hedge delay; also used until enough latency
    /// samples accumulate to estimate a P95.
    pub hedge_max: MediaDuration,
    /// Slack added to every fetch deadline beyond the playout horizon the
    /// stream's buffered frames already cover.
    pub deadline_slack: MediaDuration,
    /// Walk active sessions down the grade ladder under sustained fetch
    /// pressure (the mid-session extension of admission-time shedding).
    pub ladder: bool,
    /// Fetch-latency target of the CoDel-style pressure detector.
    pub pressure_target: MediaDuration,
    /// How long fetch latency must stay above target before the detector
    /// declares pressure (transient bursts pass).
    pub pressure_interval: MediaDuration,
    /// Cadence of the degradation-ladder evaluation timer.
    pub ladder_period: MediaDuration,
    /// Calm period required before one degraded level is restored (and the
    /// spacing between successive restores).
    pub ladder_hysteresis: MediaDuration,
}

impl Default for MediaTierConfig {
    fn default() -> Self {
        MediaTierConfig {
            replication: 2,
            cache_bytes: 512 * 1024,
            frames_per_segment: 32,
            pipeline: 3,
            stall_poll: MediaDuration::from_millis(10),
            breaker: true,
            breaker_cfg: BreakerConfig::default(),
            hedging: false,
            hedge_min: MediaDuration::from_millis(5),
            hedge_max: MediaDuration::from_millis(250),
            deadline_slack: MediaDuration::from_millis(500),
            ladder: false,
            pressure_target: MediaDuration::from_millis(50),
            pressure_interval: MediaDuration::from_millis(100),
            ladder_period: MediaDuration::from_millis(250),
            ladder_hysteresis: MediaDuration::from_secs(2),
        }
    }
}

/// Counters of the media-tier fetch path on one multimedia server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediaTierStats {
    /// Segment fetches sent to media nodes.
    pub fetches: u64,
    /// Chunks received back.
    pub chunks: u64,
    /// Paced frames that found the ready queue empty (tier too slow).
    pub stalls: u64,
    /// Streams re-pointed at another replica after a media-node fault.
    pub failovers: u64,
    /// Fetches answered with [`ServiceMsg::MediaFetchError`].
    pub fetch_errors: u64,
    /// Transport parts received from media nodes (conservation audit
    /// against the nodes' `parts_sent`).
    pub parts_received: u64,
    /// Fetches answered with [`ServiceMsg::MediaFetchBusy`] (shed by an
    /// overloaded node's queue).
    pub busy: u64,
    /// Duplicate fetches issued after the hedge delay expired unanswered.
    pub hedges: u64,
    /// Hedge races the duplicate won.
    pub hedge_wins: u64,
    /// Losing fetches of resolved hedge races cancelled at their node.
    pub hedge_cancels: u64,
    /// Circuit transitions to Open (cumulative; survives health resets and
    /// server restarts, unlike the live health map).
    pub breaker_trips: u64,
    /// Outstanding fetches written off by a media-node incarnation event.
    pub fetches_lost: u64,
    /// Degradation-ladder steps applied (one victim session walked one
    /// level down).
    pub ladder_degrades: u64,
    /// Degradation-ladder steps restored after pressure cleared.
    pub ladder_restores: u64,
}

/// Identifies an outstanding fetch (for chunk routing and failover).
#[derive(Debug, Clone, Copy)]
pub struct FetchTag {
    /// The session the fetch belongs to.
    pub session: SessionId,
    /// The stream within the session.
    pub component: ComponentId,
    /// The segment requested.
    pub segment: u64,
    /// The quality level it was computed at.
    pub level: GradeLevel,
    /// The issuing stream's epoch (stale-chunk rejection).
    pub epoch: u32,
    /// The media node it was sent to.
    pub replica: NodeId,
    /// When the fetch was issued (health latency samples, hedge timing).
    pub issued_at: MediaTime,
    /// The playout deadline the request carried.
    pub deadline: MediaTime,
    /// True for the duplicate of a hedged pair.
    pub hedged: bool,
}

/// The multimedia server's side of the distributed media tier: where its
/// content lives ([`PlacementMap`]), which replica each fetch should use
/// ([`ReplicaSelector`]), the segment cache fronting the network, and the
/// outstanding-fetch table.
#[derive(Debug)]
pub struct MediaTier {
    /// Tier configuration.
    pub cfg: MediaTierConfig,
    /// Object key → media-node replicas.
    pub placement: PlacementMap,
    /// Load/RTT-aware replica choice.
    pub selector: ReplicaSelector,
    /// The segment cache (interval-caching admission).
    pub cache: SegmentCache,
    /// Outstanding fetches by fetch id.
    pub inflight: BTreeMap<u64, FetchTag>,
    next_fetch: u64,
    /// Fetch-path counters.
    pub stats: MediaTierStats,
    /// Per-replica EWMA health scores and circuit breakers.
    pub health: ReplicaHealthMap,
    /// Completed-fetch latency distribution: drives the adaptive hedge
    /// delay and the reported tail percentiles.
    pub fetch_latency: DurationHistogram,
    /// CoDel-style pressure detector over fetch latency (ladder trigger).
    pub pressure: PressureDetector,
    /// Unresolved hedge races, keyed both ways (primary ⇄ duplicate).
    pub hedge_pairs: BTreeMap<u64, u64>,
}

impl MediaTier {
    /// A tier client for `placement` under `cfg`.
    pub fn new(cfg: MediaTierConfig, placement: PlacementMap) -> Self {
        let cache = SegmentCache::new(cfg.cache_bytes);
        let health = ReplicaHealthMap::new(cfg.breaker_cfg);
        let pressure = PressureDetector::new(cfg.pressure_target, cfg.pressure_interval);
        MediaTier {
            cfg,
            placement,
            selector: ReplicaSelector::new(),
            cache,
            inflight: BTreeMap::new(),
            next_fetch: 1,
            stats: MediaTierStats::default(),
            health,
            fetch_latency: DurationHistogram::new(MediaDuration::from_millis(1), 1024),
            pressure,
            hedge_pairs: BTreeMap::new(),
        }
    }

    /// The hedge delay: the observed P95 fetch latency clamped to the
    /// configured window; the cap until enough samples accumulate.
    pub fn hedge_delay(&self) -> MediaDuration {
        if self.fetch_latency.count() < 16 {
            return self.cfg.hedge_max;
        }
        self.fetch_latency
            .quantile(0.95)
            .clamp(self.cfg.hedge_min, self.cfg.hedge_max)
    }
}

/// One client session's server-side state.
#[derive(Debug)]
pub struct SessionState {
    /// The client's node.
    pub client: NodeId,
    /// The authenticated user, once known.
    pub user: Option<UserId>,
    /// Pricing contract.
    pub class: PricingClass,
    /// The QoS manager/grading engine for this session's streams.
    pub qos: ServerQosManager,
    /// Active media transmissions by component.
    pub streams: BTreeMap<ComponentId, StreamTx>,
    /// The document being delivered.
    pub current_doc: Option<DocumentId>,
    /// Paused by the user.
    pub paused: bool,
    /// Suspended pending migration.
    pub suspended: bool,
    /// Connect time (for duration pricing).
    pub connected_at: MediaTime,
    /// Liveness beats emitted so far.
    pub heartbeat_seq: u64,
    /// Last time media traffic went to the client. Heartbeats only fill
    /// gaps in the media flow — an active stream is its own liveness
    /// signal, and extra datagrams would perturb the shared link models.
    pub last_media: MediaTime,
    /// Last proof the *client* is alive: connect time, then refreshed by
    /// heartbeat acks and stream feedback. A session silent past
    /// [`ServerConfig::client_timeout`] is torn down — without this, a
    /// client that died mid-session would pin its admission reservation
    /// forever.
    pub last_ack: MediaTime,
    /// Admission-time shed: streams started this many grade levels below
    /// nominal because the path lacked headroom for full quality.
    pub shed_levels: u8,
    /// The shared delivery group this session belongs to, if any.
    pub group: Option<u64>,
    /// The session's root trace span (null when tracing is off).
    pub obs_root: SpanId,
    /// The open admission span: connect → first successful document
    /// admission (null when tracing is off or already closed).
    pub obs_admission: SpanId,
}

/// One degradation-ladder step: a victim session walked one level down,
/// with the per-component levels it held before (exact restore target).
#[derive(Debug, Clone)]
pub struct LadderStep {
    /// The victim session.
    pub session: SessionId,
    /// The levels its continuous streams held before this step.
    pub prior: Vec<(ComponentId, GradeLevel)>,
}

/// A distributed search in progress.
#[derive(Debug)]
struct PendingQuery {
    session: SessionId,
    client: NodeId,
    hits: Vec<SearchHit>,
    awaiting: usize,
}

/// Configuration of a server actor.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Flow-scheduler lead configuration.
    pub flow: FlowConfig,
    /// Grading order policy (video-first per the paper).
    pub grading_order: GradingOrder,
    /// Grading hysteresis.
    pub hysteresis: GradingHysteresis,
    /// Presentation floors applied to admitted streams.
    pub floor: PresentationFloor,
    /// Grace period for suspended connections.
    pub suspend_grace: MediaDuration,
    /// Per-session liveness heartbeat cadence (clients must expect the
    /// same interval).
    pub heartbeat_interval: MediaDuration,
    /// Declare a client dead — and tear its session down — after this long
    /// with no heartbeat ack or feedback from it. Must comfortably exceed
    /// any partition the deployment is expected to ride out.
    pub client_timeout: MediaDuration,
    /// Instead of rejecting a document request outright, retry admission
    /// with the streams shed up to this many grade levels below nominal.
    pub max_admission_shed: u8,
    /// Stream-sharing policy (batching windows / patching). `Off` by
    /// default: every session keeps its private flow.
    pub sharing: SharingPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            flow: FlowConfig::default(),
            grading_order: GradingOrder::default(),
            hysteresis: GradingHysteresis::default(),
            floor: PresentationFloor::default(),
            suspend_grace: MediaDuration::from_secs(30),
            heartbeat_interval: MediaDuration::from_millis(400),
            client_timeout: MediaDuration::from_secs(30),
            max_admission_shed: 3,
            sharing: SharingPolicy {
                mode: SharingMode::Off,
                ..SharingPolicy::default()
            },
        }
    }
}

/// The multimedia server actor.
pub struct ServerActor {
    /// The node this server runs on.
    pub node: NodeId,
    /// The server's logical id.
    pub server_id: ServerId,
    /// Document + media database.
    pub db: MultimediaDb,
    /// Subscribers and pricing.
    pub accounts: AccountsDb,
    /// Admission control.
    pub admission: AdmissionController,
    /// Configuration.
    pub cfg: ServerConfig,
    /// Live sessions.
    pub sessions: BTreeMap<SessionId, SessionState>,
    next_session: u64,
    /// Other servers (for search fan-out), set by the world builder.
    pub peers: Vec<NodeId>,
    /// Tutor / user mailboxes by address.
    pub mailboxes: BTreeMap<String, Vec<MailMessage>>,
    /// Per-user document annotations (§5).
    pub annotations: BTreeMap<(UserId, DocumentId), Vec<String>>,
    queries: BTreeMap<u64, PendingQuery>,
    /// Subscription forms processed here that the world must replicate.
    pub pending_replications: Vec<(UserId, hermes_server::SubscriptionForm)>,
    /// Tracked request ids already processed, per client node (bounded
    /// dedup window; ids are client-monotone so pruning the smallest is
    /// safe).
    seen_reqs: BTreeMap<NodeId, std::collections::BTreeSet<u64>>,
    /// Sessions rebuilt from a client [`ServiceMsg::ReconnectRequest`]
    /// after this server lost its state: (old session, new session).
    pub rebuilt_sessions: Vec<(SessionId, SessionId)>,
    /// The distributed media tier, when deployed ([`ServiceWorld::distribute_media`]
    /// wires it); `None` keeps the pre-tier fully local delivery path.
    ///
    /// [`ServiceWorld::distribute_media`]: crate::world::ServiceWorld::distribute_media
    pub media: Option<MediaTier>,
    /// Per-object popularity accounting + the batching/patching decision
    /// function (pure policy; the actor owns the groups and timers).
    pub sharing: BatchingPolicy,
    /// Live shared delivery groups by group id.
    pub groups: BTreeMap<u64, SharedGroup>,
    /// The joinable (latest) group per document.
    open_groups: BTreeMap<DocumentId, u64>,
    next_group: u64,
    /// Stream-sharing counters.
    pub sharing_stats: SharingStats,
    /// Sessions stepped down by the degradation ladder, most recent last
    /// (restores pop in LIFO order).
    pub ladder_stack: Vec<LadderStep>,
    /// The ladder evaluation timer chain is running.
    ladder_armed: bool,
    /// Last instant the ladder saw pressure (or acted); restores wait out
    /// the hysteresis from here.
    ladder_last_pressure: MediaTime,
}

impl ServerActor {
    /// Create a server actor for a node.
    pub fn new(node: NodeId, server_id: ServerId, cfg: ServerConfig) -> Self {
        let sharing = BatchingPolicy::new(cfg.sharing.clone());
        ServerActor {
            node,
            server_id,
            db: MultimediaDb::new(server_id),
            accounts: AccountsDb::new(),
            admission: AdmissionController::new(),
            cfg,
            sessions: BTreeMap::new(),
            next_session: 1,
            peers: Vec::new(),
            mailboxes: BTreeMap::new(),
            annotations: BTreeMap::new(),
            queries: BTreeMap::new(),
            pending_replications: Vec::new(),
            seen_reqs: BTreeMap::new(),
            rebuilt_sessions: Vec::new(),
            media: None,
            sharing,
            groups: BTreeMap::new(),
            open_groups: BTreeMap::new(),
            next_group: 1,
            sharing_stats: SharingStats::default(),
            ladder_stack: Vec::new(),
            ladder_armed: false,
            ladder_last_pressure: MediaTime::ZERO,
        }
    }

    /// The node crashed: volatile state (sessions, reservations, dedup
    /// windows, in-flight searches) is lost. The databases (documents,
    /// accounts) model disk and survive. `next_session` also survives —
    /// epoch-style allocation keeps rebuilt session ids from colliding with
    /// ids still held by clients of the previous incarnation.
    pub fn on_crash(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        // Shared groups are RAM: dissolve them (and their simulator
        // multicast memberships) before the sessions vanish.
        let gids: Vec<u64> = self.groups.keys().copied().collect();
        for gid in gids {
            self.end_group(api, gid);
        }
        let ids: Vec<SessionId> = self.sessions.keys().copied().collect();
        for session in ids {
            if let Some(conn) = self.admission.release(session) {
                api.net_mut().release(conn);
            }
        }
        // Every live session dies with the process — say so, and close its
        // spans, so the trace shows a terminal state for each one (the
        // lifecycle invariant checker audits exactly this).
        for (session, s) in std::mem::take(&mut self.sessions) {
            api.emit(
                self.node,
                Severity::Warn,
                "session_crash_lost",
                Labels::session(session.raw()).peer(s.client.raw()),
            );
            api.span_end(s.obs_admission);
            api.span_end(s.obs_root);
        }
        self.seen_reqs.clear();
        self.queries.clear();
        // The segment cache and fetch table are RAM: gone with the process.
        // Cumulative statistics survive for post-run reporting only.
        if let Some(tier) = self.media.as_mut() {
            let stats = tier.cache.stats;
            tier.cache = SegmentCache::new(tier.cfg.cache_bytes);
            tier.cache.stats = stats;
            tier.inflight.clear();
            tier.selector = ReplicaSelector::new();
            // Health scores, hedge races and pressure state are RAM too;
            // breaker trips live in `stats` and survive for reporting.
            tier.health = ReplicaHealthMap::new(tier.cfg.breaker_cfg);
            tier.hedge_pairs.clear();
            tier.pressure =
                PressureDetector::new(tier.cfg.pressure_target, tier.cfg.pressure_interval);
        }
        self.ladder_stack.clear();
        self.ladder_armed = false;
    }

    fn start_heartbeat(&mut self, api: &mut SimApi<'_, ServiceMsg>, session: SessionId) {
        api.set_timer(
            self.node,
            self.cfg.heartbeat_interval,
            timers::TK_HEARTBEAT,
            session.raw(),
        );
    }

    /// Handle an incoming message addressed to this server.
    pub fn on_message(&mut self, api: &mut SimApi<'_, ServiceMsg>, from: NodeId, msg: ServiceMsg) {
        match msg {
            ServiceMsg::Tracked { req, inner } => {
                // Always re-acknowledge — the previous ack may have died in
                // a partition or with a crashed incarnation — but process
                // the inner request only on first sight of the id.
                api.send_reliable(self.node, from, ServiceMsg::Ack { req });
                let seen = self.seen_reqs.entry(from).or_default();
                if seen.insert(req) {
                    if seen.len() > 128 {
                        let oldest = *seen.iter().next().unwrap();
                        seen.remove(&oldest);
                    }
                    self.on_message(api, from, *inner);
                }
            }
            ServiceMsg::ReconnectRequest {
                session,
                user,
                class,
                document,
                position_micros,
            } => self.on_reconnect(api, from, session, user, class, document, position_micros),
            ServiceMsg::Connect { user, class } => self.on_connect(api, from, user, class),
            ServiceMsg::Subscribe { session, form } => self.on_subscribe(api, session, form),
            ServiceMsg::DocRequest { session, document } => {
                self.on_doc_request(api, session, document)
            }
            ServiceMsg::PatchRequest { session, group } => {
                self.on_patch_request(api, session, group)
            }
            ServiceMsg::Feedback {
                session,
                measurements,
                ..
            } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    s.last_ack = api.now();
                }
                self.on_feedback(api, session, &measurements)
            }
            ServiceMsg::HeartbeatAck { session, .. } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    s.last_ack = api.now();
                }
            }
            ServiceMsg::MediaFetchChunk {
                fetch,
                last,
                frames,
                ..
            } => self.on_media_chunk(api, fetch, frames, last),
            ServiceMsg::MediaFetchError { fetch, .. } => self.on_media_error(api, fetch),
            ServiceMsg::MediaFetchBusy { fetch } => self.on_media_busy(api, fetch),
            ServiceMsg::Pause { session } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    s.paused = true;
                }
            }
            ServiceMsg::Resume { session } => self.on_resume(api, session),
            ServiceMsg::DisableStream { session, component } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    if let Some(tx) = s.streams.get_mut(&component) {
                        tx.stopped = true;
                    }
                }
            }
            ServiceMsg::SuspendConnection { session } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    s.suspended = true;
                    s.paused = true;
                    api.set_timer(
                        self.node,
                        self.cfg.suspend_grace,
                        timers::TK_GRACE,
                        session.raw(),
                    );
                }
            }
            ServiceMsg::ResumeSuspended { session } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    if s.suspended {
                        s.suspended = false;
                        s.paused = false;
                        let topics = self.db.topics().to_vec();
                        let client = s.client;
                        api.send_reliable(
                            self.node,
                            client,
                            ServiceMsg::TopicList { session, topics },
                        );
                    }
                }
            }
            ServiceMsg::Disconnect { session } => self.on_disconnect(api, session),
            ServiceMsg::SearchRequest {
                session,
                token,
                query,
            } => self.on_search_request(api, session, token, query),
            ServiceMsg::SearchFanout {
                query,
                token,
                origin,
            } => {
                let hits = self.local_hits(&token);
                api.send_reliable(self.node, origin, ServiceMsg::SearchPartial { query, hits });
            }
            ServiceMsg::SearchPartial { query, hits } => self.on_search_partial(api, query, hits),
            ServiceMsg::Annotate {
                session,
                document,
                text,
            } => {
                if let Some(user) = self.sessions.get(&session).and_then(|s| s.user) {
                    self.annotations
                        .entry((user, document))
                        .or_default()
                        .push(text);
                }
            }
            ServiceMsg::AnnotationsFetch { session, document } => {
                if let Some(sess) = self.sessions.get(&session) {
                    if let Some(user) = sess.user {
                        let notes = self
                            .annotations
                            .get(&(user, document))
                            .cloned()
                            .unwrap_or_default();
                        api.send_reliable(
                            self.node,
                            sess.client,
                            ServiceMsg::Annotations { document, notes },
                        );
                    }
                }
            }
            ServiceMsg::MailSend { mail } => {
                self.mailboxes
                    .entry(mail.to.clone())
                    .or_default()
                    .push(mail);
            }
            ServiceMsg::MailFetch { address } => {
                let messages = self.mailboxes.get(&address).cloned().unwrap_or_default();
                api.send_reliable(self.node, from, ServiceMsg::MailBox { messages });
            }
            _ => { /* messages addressed to clients are ignored here */ }
        }
        self.drain_breaker_events(api);
    }

    /// Emit a trace event per breaker state change the health map recorded
    /// since the last drain. Trips (`to == Open`) are skipped here: the
    /// fetch-outcome paths emit `breaker_trip` eagerly with richer context
    /// (stream ejection, flight dump). What remains — Open → HalfOpen
    /// probes, HalfOpen → Closed recoveries, incarnation resets — gives the
    /// invariant checker a complete, legal-order transition record.
    fn drain_breaker_events(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        let Some(tier) = self.media.as_mut() else {
            return;
        };
        let transitions = tier.health.take_transitions();
        for t in transitions {
            let name = match (t.to, t.cause) {
                (BreakerState::Open, _) => continue,
                (BreakerState::HalfOpen, _) => "breaker_probe",
                (BreakerState::Closed, "reset") => "breaker_reset",
                (BreakerState::Closed, _) => "breaker_close",
            };
            api.emit(
                self.node,
                Severity::Info,
                name,
                Labels::for_peer(t.node.raw()),
            );
        }
    }

    /// Handle a timer addressed to this server.
    pub fn on_timer(&mut self, api: &mut SimApi<'_, ServiceMsg>, key: u64, payload: u64) {
        match key {
            timers::TK_STREAM_START => {
                let (session, component) = timers::unpack(payload);
                self.start_stream(api, session, component);
            }
            timers::TK_FRAME => {
                let (session, component) = timers::unpack(payload);
                self.send_frame(api, session, component);
            }
            timers::TK_HEARTBEAT => {
                let session = SessionId::new(payload);
                if let Some(s) = self.sessions.get_mut(&session) {
                    let now = api.now();
                    // A session whose client has proven nothing for the
                    // timeout is dead weight: reap it so its admission
                    // reservation returns to the pool. Suspended sessions
                    // are exempt — TK_GRACE owns their fate.
                    if !s.suspended && now - s.last_ack >= self.cfg.client_timeout {
                        api.emit(
                            self.node,
                            Severity::Warn,
                            "client_expired",
                            Labels::session(session.raw()).peer(s.client.raw()),
                        );
                        self.teardown_session(api, session);
                        return;
                    }
                    // Gap-filling: an active media stream is its own
                    // liveness signal, so only beat when the client has
                    // heard nothing for a full interval.
                    if now - s.last_media >= self.cfg.heartbeat_interval {
                        s.heartbeat_seq += 1;
                        let beat = ServiceMsg::Heartbeat {
                            session,
                            seq: s.heartbeat_seq,
                        };
                        let client = s.client;
                        api.send(self.node, client, beat);
                    }
                    self.start_heartbeat(api, session);
                }
                // Session gone: the chain dies with it.
            }
            timers::TK_GRACE => {
                let session = SessionId::new(payload);
                let expired = self
                    .sessions
                    .get(&session)
                    .map(|s| s.suspended)
                    .unwrap_or(false);
                if expired {
                    let client = self.sessions[&session].client;
                    self.teardown_session(api, session);
                    api.send_reliable(self.node, client, ServiceMsg::SuspendExpired { session });
                }
            }
            timers::TK_HEDGE => self.on_hedge_timer(api, payload),
            timers::TK_LADDER => self.on_ladder_tick(api),
            timers::TK_REPUMP => self.on_repump(api, payload),
            _ => {}
        }
        self.drain_breaker_events(api);
    }

    fn on_connect(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        from: NodeId,
        user: Option<UserId>,
        class: PricingClass,
    ) {
        self.ensure_ladder(api);
        let session = SessionId::new(self.next_session);
        self.next_session += 1;
        let authorized = user
            .map(|u| self.accounts.is_authorized(u))
            .unwrap_or(false);
        let now = api.now();
        let obs_root = api.session_span(session.raw(), self.node);
        let obs_admission = api.span_start(
            self.node,
            "admission",
            Labels::session(session.raw()),
            obs_root,
        );
        api.emit(
            self.node,
            Severity::Info,
            "session_connect",
            Labels::session(session.raw()).peer(from.raw()),
        );
        self.sessions.insert(
            session,
            SessionState {
                client: from,
                user: if authorized { user } else { None },
                class,
                qos: ServerQosManager::new(self.cfg.grading_order, self.cfg.hysteresis),
                streams: BTreeMap::new(),
                current_doc: None,
                paused: false,
                suspended: false,
                connected_at: now,
                heartbeat_seq: 0,
                last_media: now,
                last_ack: now,
                shed_levels: 0,
                group: None,
                obs_root,
                obs_admission,
            },
        );
        if authorized {
            let u = user.unwrap();
            self.accounts.record_login(u, now);
            self.accounts.charge(u, Charge::Connection);
        }
        self.start_heartbeat(api, session);
        api.send_reliable(
            self.node,
            from,
            ServiceMsg::ConnectAck {
                session,
                must_subscribe: !authorized,
            },
        );
        if authorized {
            let topics = self.db.topics().to_vec();
            api.send_reliable(self.node, from, ServiceMsg::TopicList { session, topics });
        }
    }

    fn on_subscribe(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        form: hermes_server::SubscriptionForm,
    ) {
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        let user = self.accounts.subscribe(form.clone());
        s.user = Some(user);
        s.class = form.class;
        let client = s.client;
        self.accounts.record_login(user, api.now());
        self.accounts.charge(user, Charge::Connection);
        // The world replicates the form to every other server (§5).
        self.pending_replications.push((user, form));
        api.send_reliable(
            self.node,
            client,
            ServiceMsg::SubscribeAck { session, user },
        );
        let topics = self.db.topics().to_vec();
        api.send_reliable(self.node, client, ServiceMsg::TopicList { session, topics });
    }

    fn path_condition(&self, api: &SimApi<'_, ServiceMsg>, client: NodeId) -> PathCondition {
        let now = api.now();
        let net = api.net();
        let links = net.path_links(self.node, client).unwrap_or_default();
        let capacity = links
            .iter()
            .filter_map(|(a, b)| net.link(*a, *b))
            .map(|l| l.spec.bandwidth_bps)
            .min()
            .unwrap_or(0);
        let free = net.path_free_bandwidth(self.node, client, now).unwrap_or(0);
        let prop: i64 = links
            .iter()
            .filter_map(|(a, b)| net.link(*a, *b))
            .map(|l| l.spec.propagation.as_micros())
            .sum();
        PathCondition {
            capacity_bps: capacity,
            committed_bps: capacity.saturating_sub(free),
            rtt: MediaDuration::from_micros(prop * 2 + 2_000),
        }
    }

    fn on_doc_request(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        document: DocumentId,
    ) {
        if self.sharing.policy().mode == SharingMode::Off {
            self.deliver_document(
                api,
                session,
                document,
                MediaDuration::ZERO,
                true,
                MediaDuration::ZERO,
            );
            return;
        }
        if !self.sessions.contains_key(&session) {
            return;
        }
        let key = document.to_string();
        self.sharing.on_request(&key);
        let now = api.now();
        let phase = self
            .open_groups
            .get(&document)
            .and_then(|gid| self.groups.get(gid))
            .map(|g| {
                if now < g.starts_at {
                    GroupPhase::Pending
                } else {
                    GroupPhase::Streaming {
                        elapsed: now - g.starts_at,
                    }
                }
            });
        match self.sharing.decide(&key, phase) {
            ShareDecision::Unicast => self.deliver_document(
                api,
                session,
                document,
                MediaDuration::ZERO,
                true,
                MediaDuration::ZERO,
            ),
            ShareDecision::OpenGroup { wait } => {
                api.emit_val(
                    self.node,
                    Severity::Info,
                    "share_open",
                    Labels::session(session.raw()),
                    wait.as_micros(),
                );
                self.open_shared_group(api, session, document, wait)
            }
            ShareDecision::JoinPending => {
                api.emit(
                    self.node,
                    Severity::Info,
                    "share_join",
                    Labels::session(session.raw()),
                );
                self.join_shared_group(api, session, document, None)
            }
            ShareDecision::JoinWithPatch { offset } => {
                api.emit_val(
                    self.node,
                    Severity::Info,
                    "share_join_patch",
                    Labels::session(session.raw()),
                    offset.as_micros(),
                );
                self.join_shared_group(api, session, document, Some(offset))
            }
        }
    }

    /// Open a new shared group for `document`, led by `session`: deliver
    /// the document to the leader with the batching wait folded into every
    /// stream's start, then wrap the leader's continuous streams into a
    /// multicast group later joiners attach to.
    fn open_shared_group(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        document: DocumentId,
        wait: MediaDuration,
    ) {
        self.leave_group(api, session);
        let now = api.now();
        self.deliver_document(api, session, document, MediaDuration::ZERO, true, wait);
        // Only form a group when the leader actually got continuous
        // streams (admission may have failed, or the lesson is discrete).
        let Some(s) = self.sessions.get(&session) else {
            return;
        };
        if s.current_doc != Some(document)
            || !s
                .streams
                .values()
                .any(|tx| tx.plan.kind.is_continuous() && !tx.done)
        {
            return;
        }
        let client = s.client;
        let objects: Vec<String> = s
            .streams
            .values()
            .filter(|tx| tx.plan.kind.is_continuous())
            .filter_map(|tx| tx.remote.as_ref().map(|r| r.object.clone()))
            .collect();
        // Pin the group's working set: shared flows serve many viewers per
        // fetched byte, so their segments must survive cache pressure.
        if let Some(tier) = self.media.as_mut() {
            for o in &objects {
                tier.cache.pin(o);
            }
        }
        let gid = (self.node.raw() << 20) | self.next_group;
        self.next_group += 1;
        self.groups.insert(
            gid,
            SharedGroup {
                id: gid,
                epoch: 0,
                document,
                leader: session,
                members: vec![session],
                starts_at: now + wait,
                objects,
                patch_cutoffs: BTreeMap::new(),
            },
        );
        self.open_groups.insert(document, gid);
        self.sessions.get_mut(&session).unwrap().group = Some(gid);
        api.mcast_join(gid, client);
        self.sharing_stats.groups_opened += 1;
        api.send_reliable(
            self.node,
            client,
            ServiceMsg::StreamJoin {
                session,
                group: gid,
                epoch: 0,
                offset_micros: -1,
            },
        );
    }

    /// Attach `session` to the document's joinable group. `offset` is
    /// `Some` when the shared flow already started (the client must patch
    /// the missed prefix). The joiner gets the scenario, its own discrete
    /// objects and a tail-only admission reservation — the server→backbone
    /// trunk carries one shared copy regardless of the member count.
    fn join_shared_group(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        document: DocumentId,
        offset: Option<MediaDuration>,
    ) {
        let Some(&gid) = self.open_groups.get(&document) else {
            // Raced with the group ending: fall back to a private flow.
            self.deliver_document(
                api,
                session,
                document,
                MediaDuration::ZERO,
                true,
                MediaDuration::ZERO,
            );
            return;
        };
        self.leave_group(api, session);
        let Some(s) = self.sessions.get(&session) else {
            return;
        };
        let client = s.client;
        let class = s.class;
        let user = s.user;
        let doc = match self.db.document(document) {
            Ok(d) => d.clone(),
            Err(e) => {
                api.send_reliable(
                    self.node,
                    client,
                    ServiceMsg::DocError {
                        session,
                        reason: e.to_string(),
                    },
                );
                return;
            }
        };
        let flow = compute_flow_scenario(&doc.scenario, self.cfg.flow);
        if let Some(conn) = self.admission.release(session) {
            api.net_mut().release(conn);
        }
        if let Err(reason) = self.admit_with_shedding(api, session, class, client, &flow, true) {
            api.send_reliable(self.node, client, ServiceMsg::DocError { session, reason });
            return;
        }
        if let Some(u) = user {
            self.accounts.record_retrieval(u, document);
            self.accounts.charge(u, Charge::Retrieval(document));
        }
        self.release_session_readers(session);
        let s = self.sessions.get_mut(&session).unwrap();
        s.streams.clear();
        s.qos = ServerQosManager::new(self.cfg.grading_order, self.cfg.hysteresis);
        s.current_doc = Some(document);
        s.paused = false;
        s.shed_levels = 0;
        api.send_reliable(
            self.node,
            client,
            ServiceMsg::ScenarioResponse {
                session,
                document,
                markup: doc.markup.clone(),
                lead_micros: flow.lead.as_micros(),
            },
        );
        // Discrete objects (images, text) stay per-session: they are tiny
        // next to the continuous media and every member needs its own copy.
        // Their schedule is shifted onto the *group's* timeline — a pending
        // member receiving its images early would satisfy the client's
        // prefill check and start playout before the shared flow exists.
        let remaining_wait = self
            .groups
            .get(&gid)
            .map(|g| (g.starts_at - api.now()).max(MediaDuration::ZERO))
            .unwrap_or(MediaDuration::ZERO);
        let plans: Vec<FlowPlan> = flow
            .plans
            .iter()
            .filter(|p| !p.kind.is_continuous())
            .cloned()
            .collect();
        for plan in &plans {
            let delay =
                (plan.send_start - MediaTime::ZERO).max(MediaDuration::ZERO) + remaining_wait;
            self.schedule_discrete(api, session, plan, delay);
        }
        // Snapshot the leader's pacer positions now: this event also enters
        // the joiner into the multicast group, so every frame multicast
        // after this instant reaches it — the patch must cover exactly the
        // pts before these positions, no more.
        let cutoffs: Option<Vec<(ComponentId, MediaTime)>> = if offset.is_some() {
            let leader = self.groups.get(&gid).map(|g| g.leader);
            leader.and_then(|l| self.sessions.get(&l)).map(|ls| {
                ls.streams
                    .iter()
                    .filter(|(_, tx)| tx.plan.kind.is_continuous())
                    .map(|(c, tx)| (*c, tx.source.next_pts()))
                    .collect()
            })
        } else {
            None
        };
        let Some(g) = self.groups.get_mut(&gid) else {
            return;
        };
        g.members.push(session);
        if let Some(c) = cutoffs {
            g.patch_cutoffs.insert(session, c);
        }
        let epoch = g.epoch;
        self.sessions.get_mut(&session).unwrap().group = Some(gid);
        api.mcast_join(gid, client);
        let offset_micros = match offset {
            // The shared flow already runs: the client must ask for the
            // missed prefix (any non-negative offset, including zero —
            // frames may have left in this very instant).
            Some(o) => o.as_micros().max(0),
            None => {
                self.sharing_stats.joins_pending += 1;
                -1
            }
        };
        if offset.is_some() {
            self.sharing_stats.joins_patched += 1;
        }
        api.send_reliable(
            self.node,
            client,
            ServiceMsg::StreamJoin {
                session,
                group: gid,
                epoch,
                offset_micros,
            },
        );
    }

    /// The joiner asked for the missed prefix of its shared flow: start a
    /// unicast patch stream per continuous component, cut off *strictly
    /// before* the leader's current pacer position — the next multicast
    /// frame carries exactly that pts, so patch + shared flow tile the
    /// stream with no duplicate and no gap.
    fn on_patch_request(&mut self, api: &mut SimApi<'_, ServiceMsg>, session: SessionId, gid: u64) {
        if self.sessions.get(&session).and_then(|s| s.group) != Some(gid) {
            return;
        }
        let Some(g) = self.groups.get_mut(&gid) else {
            return;
        };
        let document = g.document;
        let Some(cutoffs) = g.patch_cutoffs.remove(&session) else {
            return; // no snapshot (or already patched): nothing missed
        };
        let doc = match self.db.document(document) {
            Ok(d) => d.clone(),
            Err(_) => return,
        };
        let flow = compute_flow_scenario(&doc.scenario, self.cfg.flow);
        for plan in &flow.plans {
            if !plan.kind.is_continuous() {
                continue;
            }
            let Some(&(_, cutoff)) = cutoffs.iter().find(|(c, _)| *c == plan.component) else {
                continue;
            };
            if cutoff <= MediaTime::ZERO {
                continue; // nothing missed yet
            }
            let source =
                self.db
                    .store(plan.kind)
                    .open(&plan.source.object, plan.component, plan.duration);
            let Some(source) = source else {
                continue;
            };
            let remote = self.make_remote(&plan.source.object, plan.kind, 0);
            let ssrc = ((session.raw() as u32) << 16) ^ plan.component.raw() as u32;
            let s = self.sessions.get_mut(&session).unwrap();
            s.streams.insert(
                plan.component,
                StreamTx {
                    plan: plan.clone(),
                    source,
                    sender: RtpSender::new(ssrc, plan.encoding),
                    done: false,
                    stopped: false,
                    frames_sent: 0,
                    bytes_sent: 0,
                    remote,
                    patch_until: Some(cutoff),
                },
            );
            self.attach_remote(api, session, plan.component);
            api.set_timer(
                self.node,
                MediaDuration::ZERO,
                timers::TK_STREAM_START,
                timers::pack(session, plan.component),
            );
            self.sharing_stats.patch_streams += 1;
        }
    }

    /// Detach `session` from its shared group, if any. The leader leaving
    /// dissolves the whole group (members keep whatever they buffered).
    fn leave_group(&mut self, api: &mut SimApi<'_, ServiceMsg>, session: SessionId) {
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        let Some(gid) = s.group.take() else {
            return;
        };
        let client = s.client;
        let Some(g) = self.groups.get_mut(&gid) else {
            return;
        };
        g.members.retain(|&m| m != session);
        api.mcast_leave(gid, client);
        if g.leader == session || g.members.is_empty() {
            self.end_group(api, gid);
        }
    }

    /// Dissolve a shared group: release memberships, unpin its cached
    /// segments, and stop advertising it as joinable.
    fn end_group(&mut self, api: &mut SimApi<'_, ServiceMsg>, gid: u64) {
        let Some(g) = self.groups.remove(&gid) else {
            return;
        };
        if self.open_groups.get(&g.document) == Some(&gid) {
            self.open_groups.remove(&g.document);
        }
        for m in g.members {
            if let Some(s) = self.sessions.get_mut(&m) {
                s.group = None;
                api.mcast_leave(gid, s.client);
            }
        }
        if let Some(tier) = self.media.as_mut() {
            for o in &g.objects {
                tier.cache.unpin(o);
            }
        }
    }

    /// Re-establish a session a client believes lost. If the session is
    /// still alive here (false alarm, or a healed partition), acknowledge in
    /// place. If this server restarted and lost it, rebuild a fresh session
    /// from the client-supplied context and resume delivery past the
    /// client's playout position.
    #[allow(clippy::too_many_arguments)]
    fn on_reconnect(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        from: NodeId,
        session: SessionId,
        user: Option<UserId>,
        class: PricingClass,
        document: Option<DocumentId>,
        position_micros: i64,
    ) {
        let now = api.now();
        if let Some(s) = self.sessions.get_mut(&session) {
            // In-place resume: the process never died. Streams kept (or
            // keep) transmitting; the client's detector was tripped by the
            // network, not by us.
            s.client = from;
            s.suspended = false;
            api.send_reliable(
                self.node,
                from,
                ServiceMsg::ReconnectAck {
                    old_session: session,
                    session,
                },
            );
            return;
        }
        // Rebuild after a restart. A fresh id keeps the recovered session
        // out of any state the old id might still be attached to elsewhere.
        let new_session = SessionId::new(self.next_session);
        self.next_session += 1;
        let authorized = user
            .map(|u| self.accounts.is_authorized(u))
            .unwrap_or(false);
        let obs_root = api.session_span(new_session.raw(), self.node);
        // The payload carries the superseded session id so trace consumers
        // (and the lifecycle invariant checker) can link the chain.
        api.emit_val(
            self.node,
            Severity::Warn,
            "session_rebuilt",
            Labels::session(new_session.raw()).peer(from.raw()),
            session.raw() as i64,
        );
        self.sessions.insert(
            new_session,
            SessionState {
                client: from,
                user: if authorized { user } else { None },
                class,
                qos: ServerQosManager::new(self.cfg.grading_order, self.cfg.hysteresis),
                streams: BTreeMap::new(),
                current_doc: None,
                paused: false,
                suspended: false,
                connected_at: now,
                heartbeat_seq: 0,
                last_media: now,
                last_ack: now,
                shed_levels: 0,
                group: None,
                obs_root,
                obs_admission: SpanId::NONE,
            },
        );
        self.rebuilt_sessions.push((session, new_session));
        self.start_heartbeat(api, new_session);
        api.send_reliable(
            self.node,
            from,
            ServiceMsg::ReconnectAck {
                old_session: session,
                session: new_session,
            },
        );
        if let Some(doc) = document {
            // The client already holds the scenario; just restart delivery
            // past the reported playout position.
            let resume_from = MediaDuration::from_micros(position_micros.max(0));
            self.deliver_document(
                api,
                new_session,
                doc,
                resume_from,
                false,
                MediaDuration::ZERO,
            );
        }
    }

    /// Evaluate admission for a flow, shedding grade levels instead of
    /// rejecting while the configuration allows: returns the shed applied,
    /// or an error string when even the deepest shed cannot be admitted.
    ///
    /// `shared_trunk`: the session rides a shared delivery group, so the
    /// first path hop (server → backbone) already carries the group's one
    /// copy — reserve only the tail links toward this client.
    fn admit_with_shedding(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        class: PricingClass,
        client: NodeId,
        flow: &hermes_server::FlowScenario,
        shared_trunk: bool,
    ) -> Result<u8, String> {
        let path = self.path_condition(api, client);
        let mut last_reason = String::new();
        for shed in 0..=self.cfg.max_admission_shed {
            // Aggregate continuous bandwidth with every stream `shed`
            // levels below nominal (clamped to each codec's ladder).
            let bw: u64 = flow
                .plans
                .iter()
                .filter(|p| p.kind.is_continuous())
                .map(|p| {
                    let model = CodecModel::for_encoding(p.encoding);
                    let lvl = GradeLevel(shed).min(model.max_level());
                    model.level(lvl).bandwidth_bps()
                })
                .sum();
            let mut requirement = hermes_core::QosRequirement::continuous(bw, 300, 0.05);
            requirement.bandwidth_bps = bw;
            let request = ConnectionRequest {
                session,
                class,
                requirement,
            };
            let (decision, conn) = self.admission.evaluate(&request, path);
            match decision {
                AdmissionDecision::Reject { reason } => last_reason = reason,
                AdmissionDecision::Admit { reserved_bps } => {
                    let conn = conn.expect("admit without connection id");
                    let reserved = if shared_trunk {
                        let mut links = api.net().path_links(self.node, client).unwrap_or_default();
                        if !links.is_empty() {
                            links.remove(0); // the trunk carries one shared copy
                        }
                        api.net_mut().reserve_links(conn, links, reserved_bps)
                    } else {
                        api.net_mut().reserve(conn, self.node, client, reserved_bps)
                    };
                    if reserved {
                        return Ok(shed);
                    }
                    self.admission.release(session);
                    last_reason = "reservation failed on path".into();
                }
            }
        }
        Err(last_reason)
    }

    /// Deliver a document to a session: admission (with graceful shedding),
    /// optionally the scenario itself, then media activation. `resume_from`
    /// shifts all send starts earlier and fast-forwards the frame sources —
    /// recovery resumes mid-presentation instead of replaying from zero.
    /// `extra_delay` shifts every send start later (the batching wait of a
    /// shared group's leader).
    fn deliver_document(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        document: DocumentId,
        resume_from: MediaDuration,
        send_scenario: bool,
        extra_delay: MediaDuration,
    ) {
        self.leave_group(api, session);
        let Some(s) = self.sessions.get(&session) else {
            return;
        };
        let client = s.client;
        let class = s.class;
        let user = s.user;
        // Arc handle: the document is shared out of the database, not
        // deep-copied (markup + scenario) per request.
        let doc = match self.db.document(document) {
            Ok(d) => d.clone(),
            Err(e) => {
                api.send_reliable(
                    self.node,
                    client,
                    ServiceMsg::DocError {
                        session,
                        reason: e.to_string(),
                    },
                );
                return;
            }
        };
        let flow = compute_flow_scenario(&doc.scenario, self.cfg.flow);

        // Admission: evaluate the aggregate continuous bandwidth against the
        // path to this client, weighted by the pricing contract. Under
        // pressure, shed quality levels before giving up ("graceful
        // degradation instead of session loss").
        // Release any previous document's reservation first.
        if let Some(conn) = self.admission.release(session) {
            api.net_mut().release(conn);
        }
        let shed = match self.admit_with_shedding(api, session, class, client, &flow, false) {
            Ok(shed) => shed,
            Err(reason) => {
                api.emit(
                    self.node,
                    Severity::Warn,
                    "admit_reject",
                    Labels::session(session.raw()),
                );
                api.send_reliable(self.node, client, ServiceMsg::DocError { session, reason });
                return;
            }
        };
        api.emit_val(
            self.node,
            if shed > 0 {
                Severity::Warn
            } else {
                Severity::Info
            },
            "admit",
            Labels::session(session.raw()),
            shed as i64,
        );
        if let Some(s) = self.sessions.get_mut(&session) {
            let span = std::mem::replace(&mut s.obs_admission, SpanId::NONE);
            api.span_end(span);
        }

        if let Some(u) = user {
            self.accounts.record_retrieval(u, document);
            self.accounts.charge(u, Charge::Retrieval(document));
        }

        // Tear down any previous document's streams (their cache readers
        // first, so interval-caching admission sees them leave).
        self.release_session_readers(session);
        let s = self.sessions.get_mut(&session).unwrap();
        s.streams.clear();
        s.qos = ServerQosManager::new(self.cfg.grading_order, self.cfg.hysteresis);
        s.current_doc = Some(document);
        s.paused = false;
        s.shed_levels = shed;

        // Ship the presentation scenario.
        if send_scenario {
            api.send_reliable(
                self.node,
                client,
                ServiceMsg::ScenarioResponse {
                    session,
                    document,
                    markup: doc.markup.clone(),
                    lead_micros: flow.lead.as_micros(),
                },
            );
        }

        // Activate the media servers: discrete media ship directly at their
        // send start; continuous media get a transmission loop.
        let floor = self.cfg.floor;
        let resume_point = MediaTime::ZERO + resume_from;
        let lead = flow.lead;
        for plan in &flow.plans {
            // The component starts playing at `send_start + lead` on the
            // presentation timeline. `elapsed` is how much of the stream the
            // client has already played at the resume position: positive →
            // fast-forward and send immediately; negative → the stream is
            // still in the future, keep its (shifted) send start.
            let elapsed = resume_from - ((plan.send_start + lead) - MediaTime::ZERO);
            let delay = if elapsed > MediaDuration::ZERO {
                MediaDuration::ZERO
            } else {
                (plan.send_start - resume_point).max(MediaDuration::ZERO)
            } + extra_delay;
            if plan.kind.is_continuous() {
                let model = CodecModel::for_encoding(plan.encoding);
                let start_level = GradeLevel(shed).min(model.max_level());
                let stream_floor = match plan.kind {
                    MediaKind::Audio => GradeLevel(floor.audio_floor),
                    _ => GradeLevel(floor.video_floor),
                };
                let s = self.sessions.get_mut(&session).unwrap();
                s.qos
                    .register(plan.component, model, stream_floor, plan.requirement);
                if start_level > GradeLevel::NOMINAL {
                    s.qos.force_level(plan.component, start_level);
                }
                // Open the frame source through the store handle — the
                // object's metadata stays in the database, un-cloned.
                let source = self.db.store(plan.kind).open(
                    &plan.source.object,
                    plan.component,
                    plan.duration,
                );
                let Some(mut source) = source else {
                    api.send_reliable(
                        self.node,
                        client,
                        ServiceMsg::DocError {
                            session,
                            reason: format!("media object '{}' missing", plan.source.object),
                        },
                    );
                    continue;
                };
                if start_level > GradeLevel::NOMINAL {
                    source.set_level(start_level);
                }
                if elapsed > MediaDuration::ZERO {
                    // Fast-forward past the client's playout position: the
                    // stream restarts where the viewer left off. Source pts
                    // are stream-relative, so skip only the elapsed part.
                    let ff_point = MediaTime::ZERO + elapsed;
                    while source.frames_remaining() > 0 && source.next_pts() < ff_point {
                        let _ = source.next_frame();
                    }
                }
                let remote = self.make_remote(&plan.source.object, plan.kind, source.next_seq());
                let ssrc = ((session.raw() as u32) << 16) ^ plan.component.raw() as u32;
                let s = self.sessions.get_mut(&session).unwrap();
                s.streams.insert(
                    plan.component,
                    StreamTx {
                        plan: plan.clone(),
                        source,
                        sender: RtpSender::new(ssrc, plan.encoding),
                        done: false,
                        stopped: false,
                        frames_sent: 0,
                        bytes_sent: 0,
                        remote,
                        patch_until: None,
                    },
                );
                self.attach_remote(api, session, plan.component);
                api.set_timer(
                    self.node,
                    delay,
                    timers::TK_STREAM_START,
                    timers::pack(session, plan.component),
                );
            } else {
                if resume_from > MediaDuration::ZERO && elapsed > MediaDuration::ZERO {
                    // Discrete object already shown before the outage.
                    continue;
                }
                self.schedule_discrete(api, session, plan, delay);
            }
        }
    }

    /// Schedule delivery of one discrete media object (image / text file)
    /// to a session at `delay` from now: install its placeholder stream and
    /// arm the [`timers::TK_DISCRETE`] timer.
    fn schedule_discrete(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        plan: &FlowPlan,
        delay: MediaDuration,
    ) {
        // Discrete media: a single object over the reliable path at
        // its send start. With a media tier the size comes from the
        // fetched segment; locally it derives from the store.
        let size =
            match self
                .db
                .store(plan.kind)
                .open(&plan.source.object, plan.component, plan.duration)
            {
                Some(mut src) => src.next_frame().map(|f| f.size).unwrap_or(0),
                None => {
                    CodecModel::for_encoding(plan.encoding)
                        .level(GradeLevel::NOMINAL)
                        .mean_frame_bytes
                }
            };
        let remote = self.make_remote(&plan.source.object, plan.kind, 0);
        let component = plan.component;
        api.set_timer(
            self.node,
            delay,
            timers::TK_DISCRETE,
            timers::pack(session, component),
        );
        // Stash the size in the session for the timer to pick up.
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        s.streams.insert(
            component,
            StreamTx {
                plan: plan.clone(),
                source: FrameSource::new(
                    component,
                    plan.encoding,
                    size as u64,
                    plan.duration.max(MediaDuration::from_millis(1)),
                ),
                sender: RtpSender::new(0, plan.encoding),
                done: false,
                stopped: false,
                frames_sent: 0,
                bytes_sent: 0,
                remote,
                patch_until: None,
            },
        );
        self.attach_remote(api, session, component);
    }

    /// Media-tier fetch state for a stream over `object`, starting at
    /// global frame index `next_seq`; `None` without a tier (or for content
    /// the placement map never distributed) — the stream then reads its
    /// local store as before.
    fn make_remote(&self, object: &str, kind: MediaKind, next_seq: u64) -> Option<RemoteStream> {
        let tier = self.media.as_ref()?;
        if tier.placement.replicas(object).is_empty() {
            return None;
        }
        let fps = if kind.is_continuous() {
            tier.cfg.frames_per_segment.max(1)
        } else {
            1 // a discrete "frame" is the whole object; don't fetch copies
        };
        let (seg, off) = segment_of_frame(next_seq, fps);
        Some(RemoteStream {
            object: object.to_string(),
            kind,
            replica: self.node, // placeholder until attach_remote selects
            frames_per_segment: fps,
            epoch: 0,
            next_request: seg,
            next_append: seg,
            pending: BTreeMap::new(),
            ready: VecDeque::new(),
            skip: off,
            inflight: BTreeMap::new(),
        })
    }

    /// Register a freshly inserted remote stream with the tier: count its
    /// cache reader (interval-caching admission) and pick its replica.
    fn attach_remote(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        component: ComponentId,
    ) {
        let object = match self
            .sessions
            .get(&session)
            .and_then(|s| s.streams.get(&component))
            .and_then(|tx| tx.remote.as_ref())
        {
            Some(r) => r.object.clone(),
            None => return,
        };
        if let Some(tier) = self.media.as_mut() {
            tier.cache.reader_started(&object);
        }
        self.reselect_replica(api, session, component);
    }

    /// Point a remote stream at the best live replica of its object (score:
    /// outstanding load + path RTT + breaker health penalty — a tripped or
    /// probing circuit loses to any closed one, so outliers are ejected
    /// whenever a healthy alternative exists). Returns false when no
    /// replica is up.
    fn reselect_replica(
        &mut self,
        api: &SimApi<'_, ServiceMsg>,
        session: SessionId,
        component: ComponentId,
    ) -> bool {
        let node = self.node;
        let Some(tier) = self.media.as_ref() else {
            return false;
        };
        let Some(r) = self
            .sessions
            .get(&session)
            .and_then(|s| s.streams.get(&component))
            .and_then(|tx| tx.remote.as_ref())
        else {
            return false;
        };
        let net = api.net();
        let candidates: Vec<(NodeId, i64)> = tier
            .placement
            .replicas(&r.object)
            .iter()
            .filter(|&&n| api.node_is_up(n))
            .map(|&n| {
                let prop: i64 = net
                    .path_links(node, n)
                    .unwrap_or_default()
                    .iter()
                    .filter_map(|(a, b)| net.link(*a, *b))
                    .map(|l| l.spec.propagation.as_micros())
                    .sum();
                let penalty = if tier.cfg.breaker {
                    tier.health.penalty_micros(n)
                } else {
                    0
                };
                (n, prop * 2 + penalty)
            })
            .collect();
        let Some(choice) = tier.selector.pick(&candidates) else {
            return false;
        };
        if let Some(r) = self
            .sessions
            .get_mut(&session)
            .and_then(|s| s.streams.get_mut(&component))
            .and_then(|tx| tx.remote.as_mut())
        {
            r.replica = choice;
        }
        true
    }

    /// Deregister a session's remote streams from the cache's reader counts
    /// (called before the streams are dropped or replaced).
    fn release_session_readers(&mut self, session: SessionId) {
        let objects: Vec<String> = self
            .sessions
            .get(&session)
            .map(|s| {
                s.streams
                    .values()
                    .filter_map(|tx| tx.remote.as_ref().map(|r| r.object.clone()))
                    .collect()
            })
            .unwrap_or_default();
        if let Some(tier) = self.media.as_mut() {
            for o in &objects {
                tier.cache.reader_finished(o);
            }
        }
    }

    /// Top up a remote stream's fetch window: serve segments from the cache
    /// when resident, otherwise issue pipelined fetches to the stream's
    /// replica until the window covers the pacer's remaining need.
    fn pump_remote(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        component: ComponentId,
    ) {
        let node = self.node;
        let server_id = self.server_id;
        let Some(tier) = self.media.as_mut() else {
            return;
        };
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        let class = s.class;
        let Some(tx) = s.streams.get_mut(&component) else {
            return;
        };
        if tx.done || tx.stopped {
            return;
        }
        // A discrete object needs exactly its one oversized frame; demanding
        // the pacer's full remaining count would fetch redundant copies.
        let needed = if tx.plan.kind.is_continuous() {
            tx.source.frames_remaining() + 1
        } else {
            1
        };
        let level = tx.source.level();
        let period = tx.source.model().level(level).frame_period();
        let Some(r) = tx.remote.as_mut() else {
            return;
        };
        let fps = r.frames_per_segment;
        let now = api.now();
        while (r.inflight.len() as u32) < tier.cfg.pipeline && r.frames_covered() < needed {
            let seg = r.next_request;
            // After a shed rolls the cursor back, segments between the shed
            // one and the frontier may still be covered — skip them.
            if seg < r.next_append || r.inflight.contains_key(&seg) || r.pending.contains_key(&seg)
            {
                r.next_request = seg + 1;
                continue;
            }
            let key = SegmentKey {
                object: r.object.clone(),
                level,
                segment: seg,
            };
            if let Some(frames) = tier.cache.get(&key) {
                let frames = frames.to_vec();
                r.pending.insert(seg, frames);
                r.next_request = seg + 1;
                r.drain_ready();
                continue;
            }
            if !api.node_is_up(r.replica) {
                // Parked: every replica of the object is down. The stall
                // poll keeps the stream alive until a fault event re-points
                // it at a live (or restarted) replica.
                break;
            }
            if tier.cfg.breaker && !tier.health.admit(r.replica, now) {
                // Circuit open (or half-open with its probe slots taken):
                // hold the window. The stall poll re-pumps, and the open
                // timeout eventually admits probes through this same path.
                break;
            }
            // The segment is useful until the pacer plays out everything it
            // already has ahead of it; past that (plus slack for transport)
            // the node may shed the request instead of serving dead work.
            let deadline =
                now + period * (r.frames_covered() + fps as u64) as i64 + tier.cfg.deadline_slack;
            let fetch = tier.next_fetch;
            tier.next_fetch += 1;
            tier.selector.fetch_started(r.replica);
            tier.inflight.insert(
                fetch,
                FetchTag {
                    session,
                    component,
                    segment: seg,
                    level,
                    epoch: r.epoch,
                    replica: r.replica,
                    issued_at: now,
                    deadline,
                    hedged: false,
                },
            );
            r.inflight.insert(seg, fetch);
            r.next_request = seg + 1;
            tier.stats.fetches += 1;
            api.send_reliable(
                node,
                r.replica,
                ServiceMsg::MediaFetchRequest {
                    fetch,
                    server: server_id,
                    kind: r.kind,
                    object: r.object.clone(),
                    level: level.0,
                    segment: seg,
                    frames_per_segment: fps,
                    deadline_micros: deadline.as_micros(),
                    class,
                },
            );
            if tier.cfg.hedging {
                api.set_timer(node, tier.hedge_delay(), timers::TK_HEDGE, fetch);
            }
        }
    }

    /// A segment arrived from a media node. Segments travel as bounded
    /// transport parts; only the final part (`last`) carries the frame
    /// specs, and reliable in-order delivery guarantees it arrives after
    /// every payload part — so earlier parts need no bookkeeping here.
    fn on_media_chunk(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        fetch: u64,
        frames: Vec<SegmentFrame>,
        last: bool,
    ) {
        let now = api.now();
        let newly_open;
        let mut loser_slow = None;
        let tag = {
            let Some(tier) = self.media.as_mut() else {
                return;
            };
            tier.stats.parts_received += 1;
            if !last {
                return;
            }
            let Some(tag) = tier.inflight.remove(&fetch) else {
                return; // superseded by failover or session teardown
            };
            tier.selector.fetch_finished(tag.replica);
            tier.stats.chunks += 1;
            let latency = now - tag.issued_at;
            tier.fetch_latency.record(latency);
            tier.pressure.observe(now, latency);
            newly_open = Self::note_success(tier, tag.replica, now, latency);
            // Resolve the hedge race: first completion wins, the loser is
            // cancelled at its node (best effort) and accounted. The time
            // the loser spent unanswered is a censored latency observation
            // — enough to trip the breaker on a chronically slow replica
            // that hedges always beat, without counting as a real verdict.
            if let Some(partner) = tier.hedge_pairs.remove(&fetch) {
                tier.hedge_pairs.remove(&partner);
                if tag.hedged {
                    tier.stats.hedge_wins += 1;
                }
                if let Some(ptag) = tier.inflight.remove(&partner) {
                    tier.selector.fetch_finished(ptag.replica);
                    loser_slow =
                        Self::note_slow_loss(tier, ptag.replica, now, now - ptag.issued_at);
                    tier.stats.hedge_cancels += 1;
                    api.send_reliable(
                        self.node,
                        ptag.replica,
                        ServiceMsg::MediaFetchCancel { fetch: partner },
                    );
                }
            }
            tag
        };
        self.deliver_segment(api, tag, frames);
        if newly_open {
            // A successful-but-slow completion can still trip the breaker
            // (EWMA latency): eject only after the fetched frames landed.
            api.emit(
                self.node,
                Severity::Error,
                "breaker_trip",
                Labels::for_peer(tag.replica.raw()),
            );
            api.flight_dump(
                self.node,
                "breaker_trip",
                Labels::for_peer(tag.replica.raw()),
            );
            self.eject_replica_streams(api, tag.replica);
        }
        if let Some(sick) = loser_slow {
            api.emit(
                self.node,
                Severity::Error,
                "breaker_trip",
                Labels::for_peer(sick.raw()),
            );
            api.flight_dump(self.node, "breaker_trip", Labels::for_peer(sick.raw()));
            self.eject_replica_streams(api, sick);
        }
    }

    /// Book a completed fetch's frames into its stream (cache offer, window
    /// bookkeeping, discrete dispatch).
    fn deliver_segment(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        tag: FetchTag,
        frames: Vec<SegmentFrame>,
    ) {
        let Some(tier) = self.media.as_mut() else {
            return;
        };
        let Some(r) = self
            .sessions
            .get_mut(&tag.session)
            .and_then(|s| s.streams.get_mut(&tag.component))
            .and_then(|tx| tx.remote.as_mut())
        else {
            return;
        };
        // Offer the segment to the cache even when the stream has moved on
        // (stale epoch): the content itself is valid and shareable.
        tier.cache.insert(
            SegmentKey {
                object: r.object.clone(),
                level: tag.level,
                segment: tag.segment,
            },
            frames.clone(),
        );
        if tag.epoch != r.epoch {
            return;
        }
        r.inflight.remove(&tag.segment);
        r.pending.insert(tag.segment, frames);
        r.drain_ready();
        // Discrete objects ship the moment their bytes arrive; continuous
        // streams stay on the pacer's cadence (the stall poll picks the
        // fetched frames up).
        let discrete = self
            .sessions
            .get(&tag.session)
            .and_then(|s| s.streams.get(&tag.component))
            .map(|tx| !tx.plan.kind.is_continuous())
            .unwrap_or(false);
        if discrete {
            self.send_discrete(api, tag.session, tag.component);
        }
    }

    /// A media node refused a fetch (object not replicated there): stop the
    /// stream — retrying cannot succeed, the placement map is wrong.
    fn on_media_error(&mut self, api: &mut SimApi<'_, ServiceMsg>, fetch: u64) {
        let now = api.now();
        let Some(tier) = self.media.as_mut() else {
            return;
        };
        let Some(tag) = tier.inflight.remove(&fetch) else {
            return;
        };
        tier.selector.fetch_finished(tag.replica);
        tier.stats.fetch_errors += 1;
        let tripped = Self::note_failure(tier, tag.replica, now);
        api.emit(
            self.node,
            Severity::Warn,
            "fetch_error",
            Labels::session(tag.session.raw())
                .stream(tag.component.raw())
                .peer(tag.replica.raw()),
        );
        if tripped {
            api.emit(
                self.node,
                Severity::Error,
                "breaker_trip",
                Labels::for_peer(tag.replica.raw()),
            );
            api.flight_dump(
                self.node,
                "breaker_trip",
                Labels::for_peer(tag.replica.raw()),
            );
        }
        let tier = self.media.as_mut().expect("tier checked above");
        if let Some(partner) = tier.hedge_pairs.remove(&fetch) {
            // The partner (if still outstanding) carries on alone.
            tier.hedge_pairs.remove(&partner);
        }
        let Some(s) = self.sessions.get_mut(&tag.session) else {
            return;
        };
        let client = s.client;
        if let Some(tx) = s.streams.get_mut(&tag.component) {
            let live_epoch = tx.remote.as_ref().map(|r| r.epoch);
            if live_epoch == Some(tag.epoch) && !tx.done && !tx.stopped {
                tx.stopped = true;
                api.send_reliable(
                    self.node,
                    client,
                    ServiceMsg::StreamStopped {
                        session: tag.session,
                        component: tag.component,
                    },
                );
            }
        }
    }

    /// A media node shed a fetch from its overloaded queue. Unlike a fetch
    /// *error* this is flow control, not a health verdict: the shed is NOT
    /// scored into the breaker (under a symmetric flash crowd every replica
    /// queues alike, and tripping circuits on shared congestion only
    /// strangles throughput further). The stream's window is re-requested —
    /// immediately when overload control is off (the naive retry storm the
    /// benchmarks measure), after a `stall_poll` pause when it is on, so
    /// retry pressure on saturated queues is paced. A still-racing hedge
    /// partner carries the segment alone instead.
    fn on_media_busy(&mut self, api: &mut SimApi<'_, ServiceMsg>, fetch: u64) {
        let paced;
        let partner_live;
        let tag = {
            let Some(tier) = self.media.as_mut() else {
                return;
            };
            tier.stats.busy += 1;
            let Some(tag) = tier.inflight.remove(&fetch) else {
                return;
            };
            tier.selector.fetch_finished(tag.replica);
            paced = tier.cfg.breaker;
            let partner = tier.hedge_pairs.remove(&fetch);
            if let Some(p) = partner {
                tier.hedge_pairs.remove(&p);
            }
            partner_live = partner.is_some_and(|p| tier.inflight.contains_key(&p));
            tag
        };
        if partner_live {
            return;
        }
        // Surgical retry of just the shed segment: roll the request cursor
        // back so the next pump re-requests it. Sibling fetches, buffered
        // segments and the epoch all stay valid — a shed must not discard
        // work the node is still completing. The epoch check skips this if
        // something else already moved the stream.
        let Some(r) = self
            .sessions
            .get_mut(&tag.session)
            .and_then(|s| s.streams.get_mut(&tag.component))
            .and_then(|tx| (!tx.done && !tx.stopped).then_some(tx))
            .and_then(|tx| tx.remote.as_mut())
        else {
            return;
        };
        if r.epoch != tag.epoch {
            return;
        }
        r.inflight.remove(&tag.segment);
        r.next_request = r.next_request.min(tag.segment);
        if paced {
            let delay = self.media.as_ref().map(|t| t.cfg.stall_poll).unwrap();
            api.set_timer(
                self.node,
                delay,
                timers::TK_REPUMP,
                timers::pack(tag.session, tag.component),
            );
        } else if self.reselect_replica(api, tag.session, tag.component) {
            self.pump_remote(api, tag.session, tag.component);
        }
    }

    /// Paced retry of a stream whose fetch was shed: re-pick a replica and
    /// refill the window (a no-op if a chunk, an eject or another shed
    /// already did).
    fn on_repump(&mut self, api: &mut SimApi<'_, ServiceMsg>, payload: u64) {
        let (session, component) = timers::unpack(payload);
        let live = self
            .sessions
            .get(&session)
            .and_then(|s| s.streams.get(&component))
            .and_then(|tx| (!tx.done && !tx.stopped).then_some(tx))
            .is_some_and(|tx| tx.remote.is_some());
        if live && self.reselect_replica(api, session, component) {
            self.pump_remote(api, session, component);
        }
    }

    /// Score a completed fetch into the health map (breaker enabled only).
    /// Returns true when this observation newly tripped the circuit Open.
    fn note_success(
        tier: &mut MediaTier,
        node: NodeId,
        now: MediaTime,
        latency: MediaDuration,
    ) -> bool {
        if !tier.cfg.breaker {
            return false;
        }
        let was = tier.health.state(node);
        tier.health.record_success(node, now, latency);
        let tripped = was != BreakerState::Open && tier.health.state(node) == BreakerState::Open;
        if tripped {
            tier.stats.breaker_trips += 1;
        }
        tripped
    }

    /// Score a lost hedge race into the loser's health map (breaker enabled
    /// only): a censored latency sample of at least `elapsed`. Returns
    /// `Some(node)` when the observation newly tripped its circuit Open.
    fn note_slow_loss(
        tier: &mut MediaTier,
        node: NodeId,
        now: MediaTime,
        elapsed: MediaDuration,
    ) -> Option<NodeId> {
        if !tier.cfg.breaker {
            return None;
        }
        let was = tier.health.state(node);
        tier.health.record_slow_loss(node, now, elapsed);
        let tripped = was != BreakerState::Open && tier.health.state(node) == BreakerState::Open;
        if tripped {
            tier.stats.breaker_trips += 1;
            return Some(node);
        }
        None
    }

    /// Score a failed fetch into the health map (breaker enabled only).
    /// Returns true when this observation newly tripped the circuit Open.
    fn note_failure(tier: &mut MediaTier, node: NodeId, now: MediaTime) -> bool {
        if !tier.cfg.breaker {
            return false;
        }
        let was = tier.health.state(node);
        tier.health.record_failure(node, now);
        let tripped = was != BreakerState::Open && tier.health.state(node) == BreakerState::Open;
        if tripped {
            tier.stats.breaker_trips += 1;
        }
        tripped
    }

    /// A replica's circuit just tripped Open: re-point every live stream
    /// pulling from it at the best admitted alternative — the same motion
    /// as a media-node crash, but without touching incarnation state
    /// (outstanding fetches may still complete, and their outcomes keep
    /// feeding the health score). With no healthy alternative the selector
    /// re-picks the sick node and the probe gate in `pump_remote` paces
    /// recovery traffic instead.
    fn eject_replica_streams(&mut self, api: &mut SimApi<'_, ServiceMsg>, sick: NodeId) {
        let mut affected: Vec<(SessionId, ComponentId)> = Vec::new();
        for (sid, s) in self.sessions.iter_mut() {
            for (cid, tx) in s.streams.iter_mut() {
                if tx.done || tx.stopped {
                    continue;
                }
                let Some(r) = tx.remote.as_mut() else {
                    continue;
                };
                if r.replica != sick {
                    continue;
                }
                r.pending.clear();
                r.inflight.clear();
                r.next_request = r.next_append;
                r.epoch += 1;
                api.emit_val(
                    self.node,
                    Severity::Info,
                    "stream_epoch",
                    Labels::session(sid.raw()).stream(cid.raw()),
                    r.epoch as i64,
                );
                affected.push((*sid, *cid));
            }
        }
        for &(sid, cid) in &affected {
            if self.reselect_replica(api, sid, cid) {
                self.pump_remote(api, sid, cid);
            }
        }
        // Shared groups fail over as one unit, exactly as on a node crash.
        let mut bumped: Vec<(u64, u64)> = Vec::new();
        for (gid, g) in self.groups.iter_mut() {
            if affected.iter().any(|(sid, _)| *sid == g.leader) {
                g.epoch += 1;
                bumped.push((*gid, g.epoch));
            }
        }
        for (gid, epoch) in bumped {
            self.sharing_stats.epoch_bumps += 1;
            api.emit_val(
                self.node,
                Severity::Info,
                "group_epoch",
                Labels::NONE.stream(gid),
                epoch as i64,
            );
            api.send_mcast(self.node, gid, ServiceMsg::GroupEpoch { group: gid, epoch });
        }
    }

    /// The hedge delay of a fetch expired unanswered (timer `TK_HEDGE`,
    /// payload = fetch id): race a duplicate against the next-best replica.
    /// First response wins; the loser is cancelled and accounted.
    fn on_hedge_timer(&mut self, api: &mut SimApi<'_, ServiceMsg>, fetch: u64) {
        let now = api.now();
        let node = self.node;
        let server_id = self.server_id;
        let Some(tier) = self.media.as_ref() else {
            return;
        };
        if !tier.cfg.hedging {
            return;
        }
        let Some(tag) = tier.inflight.get(&fetch).copied() else {
            return; // answered (or written off) before the delay expired
        };
        if tag.hedged || tier.hedge_pairs.contains_key(&fetch) {
            return; // never hedge a hedge, never hedge twice
        }
        // The pulling stream must still want this segment.
        let Some((object, kind, fps, class)) = self.sessions.get(&tag.session).and_then(|s| {
            let class = s.class;
            s.streams.get(&tag.component).and_then(|tx| {
                tx.remote
                    .as_ref()
                    .filter(|r| r.epoch == tag.epoch)
                    .map(|r| (r.object.clone(), r.kind, r.frames_per_segment, class))
            })
        }) else {
            return;
        };
        let net = api.net();
        let Some(tier) = self.media.as_mut() else {
            return;
        };
        let candidates: Vec<(NodeId, i64)> = tier
            .placement
            .replicas(&object)
            .iter()
            .filter(|&&n| n != tag.replica && api.node_is_up(n))
            .map(|&n| {
                let prop: i64 = net
                    .path_links(node, n)
                    .unwrap_or_default()
                    .iter()
                    .filter_map(|(a, b)| net.link(*a, *b))
                    .map(|l| l.spec.propagation.as_micros())
                    .sum();
                let penalty = if tier.cfg.breaker {
                    tier.health.penalty_micros(n)
                } else {
                    0
                };
                (n, prop * 2 + penalty)
            })
            .collect();
        let Some(alt) = tier.selector.pick(&candidates) else {
            return; // single-replica object: nothing to race against
        };
        if tier.cfg.breaker && !tier.health.admit(alt, now) {
            return;
        }
        // Hedging pays only when slowness is idiosyncratic to the primary.
        // If the alternative is observably slow too (a symmetric flash
        // crowd queues every replica alike), a duplicate fetch would feed
        // the overload rather than route around it.
        if tier
            .health
            .health(alt)
            .is_some_and(|h| h.ewma_latency_micros > tier.cfg.pressure_target.as_micros() as f64)
        {
            return;
        }
        let hedge = tier.next_fetch;
        tier.next_fetch += 1;
        tier.selector.fetch_started(alt);
        tier.inflight.insert(
            hedge,
            FetchTag {
                session: tag.session,
                component: tag.component,
                segment: tag.segment,
                level: tag.level,
                epoch: tag.epoch,
                replica: alt,
                issued_at: now,
                deadline: tag.deadline,
                hedged: true,
            },
        );
        tier.hedge_pairs.insert(fetch, hedge);
        tier.hedge_pairs.insert(hedge, fetch);
        tier.stats.hedges += 1;
        api.send_reliable(
            node,
            alt,
            ServiceMsg::MediaFetchRequest {
                fetch: hedge,
                server: server_id,
                kind,
                object,
                level: tag.level.0,
                segment: tag.segment,
                frames_per_segment: fps,
                deadline_micros: tag.deadline.as_micros(),
                class,
            },
        );
    }

    /// Arm the degradation-ladder evaluation chain once a tier with the
    /// ladder enabled is in place (idempotent; called on session arrival).
    fn ensure_ladder(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        let enabled = self.media.as_ref().map(|t| t.cfg.ladder).unwrap_or(false);
        if enabled && !self.ladder_armed {
            self.ladder_armed = true;
            let period = self.media.as_ref().unwrap().cfg.ladder_period;
            api.set_timer(self.node, period, timers::TK_LADDER, 0);
        }
    }

    /// Periodic degradation-ladder evaluation (timer `TK_LADDER`): under
    /// sustained fetch pressure walk one victim session one grade level
    /// down; once pressure has stayed clear for the hysteresis, restore
    /// one step (LIFO), level by level.
    fn on_ladder_tick(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        let now = api.now();
        let (enabled, period, hysteresis, overloaded) = match self.media.as_ref() {
            Some(t) => (
                t.cfg.ladder,
                t.cfg.ladder_period,
                t.cfg.ladder_hysteresis,
                t.pressure.overloaded(now),
            ),
            None => (false, MediaDuration::ZERO, MediaDuration::ZERO, false),
        };
        if !enabled {
            self.ladder_armed = false;
            return;
        }
        if overloaded {
            self.ladder_last_pressure = now;
            self.ladder_degrade_step(api);
        } else if !self.ladder_stack.is_empty() && now - self.ladder_last_pressure >= hysteresis {
            self.ladder_restore_step(api);
            // Space successive restores a full hysteresis apart.
            self.ladder_last_pressure = now;
        }
        api.set_timer(self.node, period, timers::TK_LADDER, 0);
    }

    /// One ladder step down: pick the victim (cheapest pricing class first,
    /// most recently admitted — LIFO — within the class) and walk each of
    /// its live continuous streams one grade level lower.
    fn ladder_degrade_step(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        let victim = self
            .sessions
            .iter()
            .filter(|(_, s)| !s.suspended)
            .filter_map(|(sid, s)| {
                let degradable = s.streams.values().any(|tx| {
                    tx.plan.kind.is_continuous()
                        && !tx.done
                        && !tx.stopped
                        && tx.source.level() < tx.source.model().max_level()
                });
                degradable.then_some((s.class, std::cmp::Reverse(s.connected_at), *sid))
            })
            .min_by_key(|&(class, at, sid)| (class, at, std::cmp::Reverse(sid.raw())))
            .map(|(_, _, sid)| sid);
        let Some(sid) = victim else {
            return; // everyone is already at the bottom of the ladder
        };
        let Some(s) = self.sessions.get_mut(&sid) else {
            return;
        };
        let client = s.client;
        let mut prior: Vec<(ComponentId, GradeLevel)> = Vec::new();
        let mut regrades: Vec<(ComponentId, GradeLevel)> = Vec::new();
        for (cid, tx) in s.streams.iter_mut() {
            if !tx.plan.kind.is_continuous() || tx.done || tx.stopped {
                continue;
            }
            let cur = tx.source.level();
            if cur >= tx.source.model().max_level() {
                continue;
            }
            let new = GradeLevel(cur.0 + 1);
            s.qos.force_level(*cid, new);
            tx.source.set_level(new);
            // Buffered and in-flight segments were computed at the old
            // level; re-point the fetch window at the pacer's position.
            let seq = tx.source.next_seq();
            if let Some(r) = tx.remote.as_mut() {
                r.retarget(seq);
            }
            prior.push((*cid, cur));
            regrades.push((*cid, new));
        }
        if prior.is_empty() {
            return;
        }
        for &(cid, new) in &regrades {
            api.send_reliable(
                self.node,
                client,
                ServiceMsg::StreamRegraded {
                    session: sid,
                    component: cid,
                    level: new.0,
                },
            );
        }
        api.emit_val(
            self.node,
            Severity::Warn,
            "ladder_degrade",
            Labels::session(sid.raw()),
            regrades.len() as i64,
        );
        self.ladder_stack.push(LadderStep {
            session: sid,
            prior,
        });
        if let Some(tier) = self.media.as_mut() {
            tier.stats.ladder_degrades += 1;
        }
    }

    /// One ladder step back up: restore the most recently degraded session
    /// to the levels it held before that step.
    fn ladder_restore_step(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        let Some(step) = self.ladder_stack.pop() else {
            return;
        };
        let Some(s) = self.sessions.get_mut(&step.session) else {
            return; // the victim disconnected meanwhile
        };
        let client = s.client;
        let mut regrades: Vec<(ComponentId, GradeLevel)> = Vec::new();
        for (cid, level) in step.prior {
            let Some(tx) = s.streams.get_mut(&cid) else {
                continue;
            };
            if tx.done || tx.stopped {
                continue;
            }
            s.qos.force_level(cid, level);
            tx.source.set_level(level);
            let seq = tx.source.next_seq();
            if let Some(r) = tx.remote.as_mut() {
                r.retarget(seq);
            }
            regrades.push((cid, level));
        }
        for &(cid, level) in &regrades {
            api.send_reliable(
                self.node,
                client,
                ServiceMsg::StreamRegraded {
                    session: step.session,
                    component: cid,
                    level: level.0,
                },
            );
        }
        api.emit_val(
            self.node,
            Severity::Info,
            "ladder_restore",
            Labels::session(step.session.raw()),
            regrades.len() as i64,
        );
        if let Some(tier) = self.media.as_mut() {
            tier.stats.ladder_restores += 1;
        }
    }

    /// A media node crashed or restarted. Fetches outstanding to it will
    /// never complete; every stream pulling from it drops its in-flight
    /// window and re-points at the best live replica — the stateless fetch
    /// protocol makes failover exactly a re-request from `next_append`,
    /// i.e. from the first frame the client has not yet been sent.
    pub fn on_media_node_event(&mut self, api: &mut SimApi<'_, ServiceMsg>, media_node: NodeId) {
        if self.media.is_none() {
            return;
        }
        api.emit(
            self.node,
            Severity::Warn,
            "media_failover",
            Labels::for_peer(media_node.raw()),
        );
        api.flight_dump(
            self.node,
            "media_failover",
            Labels::for_peer(media_node.raw()),
        );
        let Some(tier) = self.media.as_mut() else {
            return;
        };
        tier.selector.clear_outstanding(media_node);
        // A new incarnation is a new server: forget the old one's health
        // score and breaker state along with the load estimate (its trips
        // stay in the cumulative totals).
        tier.health.reset(media_node);
        let lost: Vec<u64> = tier
            .inflight
            .iter()
            .filter(|(_, tag)| tag.replica == media_node)
            .map(|(f, _)| *f)
            .collect();
        tier.stats.fetches_lost += lost.len() as u64;
        for f in lost {
            tier.inflight.remove(&f);
            // A written-off half of a hedge race leaves the survivor
            // racing nobody; it completes (or fails) on its own.
            if let Some(p) = tier.hedge_pairs.remove(&f) {
                tier.hedge_pairs.remove(&p);
            }
        }
        let mut affected: Vec<(SessionId, ComponentId)> = Vec::new();
        for (sid, s) in self.sessions.iter_mut() {
            for (cid, tx) in s.streams.iter_mut() {
                if tx.done || tx.stopped {
                    continue;
                }
                let Some(r) = tx.remote.as_mut() else {
                    continue;
                };
                if r.replica != media_node {
                    continue;
                }
                // Keep `ready` (already fetched, in order); drop the rest.
                r.pending.clear();
                r.inflight.clear();
                r.next_request = r.next_append;
                r.epoch += 1;
                api.emit_val(
                    self.node,
                    Severity::Info,
                    "stream_epoch",
                    Labels::session(sid.raw()).stream(cid.raw()),
                    r.epoch as i64,
                );
                affected.push((*sid, *cid));
            }
        }
        for &(sid, cid) in &affected {
            if self.reselect_replica(api, sid, cid) {
                if let Some(tier) = self.media.as_mut() {
                    tier.stats.failovers += 1;
                }
                self.pump_remote(api, sid, cid);
            }
            // No live replica: parked until a restart event re-points us.
        }
        // Shared groups fail over as one unit: exactly ONE epoch bump per
        // group per media-node event, announced to the whole group — the
        // leader's per-stream failover above already re-pointed the fetch
        // window, so members see an uninterrupted frame sequence.
        let mut bumped: Vec<(u64, u64)> = Vec::new();
        for (gid, g) in self.groups.iter_mut() {
            if affected.iter().any(|(sid, _)| *sid == g.leader) {
                g.epoch += 1;
                bumped.push((*gid, g.epoch));
            }
        }
        for (gid, epoch) in bumped {
            self.sharing_stats.epoch_bumps += 1;
            api.emit_val(
                self.node,
                Severity::Info,
                "group_epoch",
                Labels::NONE.stream(gid),
                epoch as i64,
            );
            api.send_mcast(self.node, gid, ServiceMsg::GroupEpoch { group: gid, epoch });
        }
        self.drain_breaker_events(api);
    }

    fn start_stream(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        component: ComponentId,
    ) {
        // The first frame goes out immediately; the chain continues in
        // send_frame.
        self.send_frame(api, session, component);
    }

    /// Send one discrete object (timer TK_DISCRETE).
    pub(crate) fn send_discrete(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        component: ComponentId,
    ) {
        {
            let Some(s) = self.sessions.get_mut(&session) else {
                return;
            };
            if s.paused || s.suspended {
                // Retry after a pause-poll interval.
                api.set_timer(
                    self.node,
                    MediaDuration::from_millis(200),
                    timers::TK_DISCRETE,
                    timers::pack(session, component),
                );
                return;
            }
            let Some(tx) = s.streams.get(&component) else {
                return;
            };
            if tx.done || tx.stopped {
                return;
            }
        }
        // With a media tier, the object's bytes must first arrive from a
        // replica (or the cache); until then, poll.
        let mut fetched_total = None;
        let is_remote = self
            .sessions
            .get(&session)
            .and_then(|s| s.streams.get(&component))
            .map(|tx| tx.remote.is_some())
            .unwrap_or(false);
        if is_remote {
            self.pump_remote(api, session, component);
            let Some(r) = self
                .sessions
                .get(&session)
                .and_then(|s| s.streams.get(&component))
                .and_then(|tx| tx.remote.as_ref())
            else {
                return;
            };
            match r.ready.front() {
                Some(spec) => fetched_total = Some(spec.size),
                None => {
                    let tier = self.media.as_mut().expect("remote stream without tier");
                    tier.stats.stalls += 1;
                    api.set_timer(
                        self.node,
                        tier.cfg.stall_poll,
                        timers::TK_DISCRETE,
                        timers::pack(session, component),
                    );
                    return;
                }
            }
        }
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        let client = s.client;
        let Some(tx) = s.streams.get_mut(&component) else {
            return;
        };
        let total = match fetched_total {
            Some(size) => size,
            None => tx
                .source
                .clone()
                .next_frame()
                .map(|f| f.size)
                .unwrap_or(10_000),
        };
        tx.done = true;
        tx.frames_sent = 1;
        tx.bytes_sent = total as u64;
        let now = api.now();
        if let Some(s) = self.sessions.get_mut(&session) {
            s.last_media = now;
        }
        // Segment to MTU-sized chunks, as TCP would.
        const SEGMENT: u32 = 1_400;
        let mut remaining = total;
        loop {
            let size = remaining.min(SEGMENT);
            remaining -= size;
            let last = remaining == 0;
            api.send_reliable(
                self.node,
                client,
                ServiceMsg::DiscreteData {
                    session,
                    component,
                    size,
                    total,
                    last,
                    sent_at: now,
                },
            );
            if last {
                break;
            }
        }
    }

    fn send_frame(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        component: ComponentId,
    ) {
        {
            let Some(s) = self.sessions.get_mut(&session) else {
                return;
            };
            if s.suspended {
                return; // resumes re-arm the chain
            }
            if s.paused {
                // Poll until resumed (resume also re-arms immediately).
                api.set_timer(
                    self.node,
                    MediaDuration::from_millis(100),
                    timers::TK_FRAME,
                    timers::pack(session, component),
                );
                return;
            }
            let Some(tx) = s.streams.get_mut(&component) else {
                return;
            };
            if tx.done || tx.stopped {
                return;
            }
            if let Some(limit) = tx.patch_until {
                // Patch complete: the stream's next pts is carried by the
                // shared flow. Strictly exclusive — equal pts stops here.
                if tx.source.next_pts() >= limit {
                    tx.done = true;
                    return;
                }
            }
        }
        // Media tier: top up the fetch window, then gate this frame on
        // fetched content — the pacer only advances once the frame's bytes
        // have actually come off the wire from a replica (or the cache).
        let mut fetched = None;
        let is_remote = self
            .sessions
            .get(&session)
            .and_then(|s| s.streams.get(&component))
            .map(|tx| tx.remote.is_some())
            .unwrap_or(false);
        if is_remote {
            self.pump_remote(api, session, component);
            let Some(r) = self
                .sessions
                .get_mut(&session)
                .and_then(|s| s.streams.get_mut(&component))
                .and_then(|tx| tx.remote.as_mut())
            else {
                return;
            };
            match r.ready.pop_front() {
                Some(spec) => fetched = Some(spec),
                None => {
                    let tier = self.media.as_mut().expect("remote stream without tier");
                    tier.stats.stalls += 1;
                    api.set_timer(
                        self.node,
                        tier.cfg.stall_poll,
                        timers::TK_FRAME,
                        timers::pack(session, component),
                    );
                    return;
                }
            }
        }
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        let client = s.client;
        // A group leader's streams feed the whole group: one multicast send
        // replaces the per-member unicasts (single copy per egress link).
        let shared = s
            .group
            .and_then(|gid| self.groups.get(&gid))
            .filter(|g| g.leader == session)
            .map(|g| g.id);
        let Some(tx) = s.streams.get_mut(&component) else {
            return;
        };
        let mut stream_finished = false;
        match tx.source.next_frame() {
            Some(frame) => {
                if let Some(spec) = fetched {
                    // The fetched spec and the pacer derive from the same
                    // deterministic codec model — they must agree exactly.
                    debug_assert_eq!((spec.size, spec.key), (frame.size, frame.key));
                }
                tx.frames_sent += 1;
                tx.bytes_sent += frame.size as u64;
                let now = api.now();
                for packet in tx.sender.packetize(&frame) {
                    let msg = ServiceMsg::RtpData {
                        session,
                        component,
                        packet,
                        sent_at: now,
                    };
                    match shared {
                        Some(gid) => {
                            api.send_mcast(self.node, gid, msg);
                        }
                        None => {
                            api.send(self.node, client, msg);
                        }
                    }
                }
                if shared.is_some() {
                    self.sharing_stats.mcast_frames += 1;
                }
                // Periodic RTCP sender report (RFC 3550): every 64 frames.
                if tx.frames_sent % 64 == 1 {
                    let sr = tx.sender.sender_report(now);
                    let msg = ServiceMsg::RtcpSenderReport {
                        session,
                        component,
                        packet: sr,
                    };
                    match shared {
                        Some(gid) => {
                            api.send_mcast(self.node, gid, msg);
                        }
                        None => {
                            api.send(self.node, client, msg);
                        }
                    }
                }
                let period = tx.source.model().level(tx.source.level()).frame_period();
                api.set_timer(
                    self.node,
                    period,
                    timers::TK_FRAME,
                    timers::pack(session, component),
                );
                s.last_media = now;
            }
            None => {
                tx.done = true;
                stream_finished = true;
            }
        }
        if stream_finished {
            if let Some(gid) = shared {
                // The group ends when the leader's last continuous stream
                // finishes; members keep draining their playout buffers.
                let all_done = self
                    .sessions
                    .get(&session)
                    .map(|s| {
                        s.streams
                            .values()
                            .filter(|t| t.plan.kind.is_continuous())
                            .all(|t| t.done || t.stopped)
                    })
                    .unwrap_or(true);
                if all_done {
                    self.end_group(api, gid);
                }
            }
        }
    }

    fn on_feedback(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        measurements: &[(ComponentId, hermes_core::QosMeasurement)],
    ) {
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        let client = s.client;
        let actions = s.qos.on_feedback(measurements);
        for act in actions {
            if let Some(tx) = s.streams.get_mut(&act.component) {
                match act.decision {
                    GradeDecision::Degrade | GradeDecision::Upgrade => {
                        tx.source.set_level(act.new_level);
                        // A level switch changes every frame size from here
                        // on: buffered and in-flight segments were computed
                        // at the old level and are now wrong. Re-point the
                        // fetch window at the pacer's position.
                        let seq = tx.source.next_seq();
                        if let Some(r) = tx.remote.as_mut() {
                            r.retarget(seq);
                        }
                        if tx.stopped && !act.stopped {
                            // Restarted after a stop: re-arm the chain.
                            tx.stopped = false;
                            api.set_timer(
                                self.node,
                                MediaDuration::ZERO,
                                timers::TK_FRAME,
                                timers::pack(session, act.component),
                            );
                        }
                        api.emit_val(
                            self.node,
                            if act.decision == GradeDecision::Degrade {
                                Severity::Warn
                            } else {
                                Severity::Info
                            },
                            if act.decision == GradeDecision::Degrade {
                                "qos_degrade"
                            } else {
                                "qos_upgrade"
                            },
                            Labels::session(session.raw()).stream(act.component.raw()),
                            act.new_level.0 as i64,
                        );
                        api.send_reliable(
                            self.node,
                            client,
                            ServiceMsg::StreamRegraded {
                                session,
                                component: act.component,
                                level: act.new_level.0,
                            },
                        );
                    }
                    GradeDecision::Stop => {
                        tx.stopped = true;
                        api.emit(
                            self.node,
                            Severity::Warn,
                            "qos_stop",
                            Labels::session(session.raw()).stream(act.component.raw()),
                        );
                        api.send_reliable(
                            self.node,
                            client,
                            ServiceMsg::StreamStopped {
                                session,
                                component: act.component,
                            },
                        );
                    }
                    GradeDecision::Hold => {}
                }
            }
        }
    }

    fn on_resume(&mut self, api: &mut SimApi<'_, ServiceMsg>, session: SessionId) {
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        if !s.paused {
            return;
        }
        s.paused = false;
        let components: Vec<ComponentId> = s
            .streams
            .iter()
            .filter(|(_, tx)| !tx.done && !tx.stopped)
            .map(|(c, _)| *c)
            .collect();
        for c in components {
            api.set_timer(
                self.node,
                MediaDuration::ZERO,
                timers::TK_FRAME,
                timers::pack(session, c),
            );
        }
    }

    fn teardown_session(&mut self, api: &mut SimApi<'_, ServiceMsg>, session: SessionId) {
        self.leave_group(api, session);
        self.release_session_readers(session);
        if let Some(conn) = self.admission.release(session) {
            api.net_mut().release(conn);
        }
        if let Some(s) = self.sessions.remove(&session) {
            api.emit(
                self.node,
                Severity::Info,
                "session_teardown",
                Labels::session(session.raw()),
            );
            api.span_end(s.obs_admission);
            api.span_end(s.obs_root);
        }
    }

    /// Snapshot this server's counters into the unified metrics registry.
    /// Every metric is labelled with the server's node id (`peer`) so a
    /// multi-server world publishes without key collisions.
    pub fn publish_metrics(&self, obs: &mut Obs) {
        let l = Labels::for_peer(self.node.raw());
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut requests = 0u64;
        for cs in self.admission.stats.values() {
            requests += cs.requests;
            admitted += cs.admitted;
            rejected += cs.rejected;
        }
        obs.registry
            .counter_set("server.admit_requests", l, requests);
        obs.registry.counter_set("server.admitted", l, admitted);
        obs.registry
            .counter_set("server.admit_rejected", l, rejected);
        obs.registry
            .gauge_set("server.sessions", l, self.sessions.len() as f64);
        obs.registry.counter_set(
            "server.share_groups_opened",
            l,
            self.sharing_stats.groups_opened,
        );
        obs.registry.counter_set(
            "server.share_joins_pending",
            l,
            self.sharing_stats.joins_pending,
        );
        obs.registry.counter_set(
            "server.share_joins_patched",
            l,
            self.sharing_stats.joins_patched,
        );
        obs.registry.counter_set(
            "server.share_patch_streams",
            l,
            self.sharing_stats.patch_streams,
        );
        obs.registry.counter_set(
            "server.share_mcast_frames",
            l,
            self.sharing_stats.mcast_frames,
        );
        obs.registry.counter_set(
            "server.share_epoch_bumps",
            l,
            self.sharing_stats.epoch_bumps,
        );
        if let Some(tier) = self.media.as_ref() {
            let st = &tier.stats;
            obs.registry.counter_set("server.fetches", l, st.fetches);
            obs.registry.counter_set("server.chunks", l, st.chunks);
            obs.registry.counter_set("server.stalls", l, st.stalls);
            obs.registry
                .counter_set("server.failovers", l, st.failovers);
            obs.registry
                .counter_set("server.fetch_errors", l, st.fetch_errors);
            obs.registry.counter_set("server.fetch_busy", l, st.busy);
            obs.registry.counter_set("server.hedges", l, st.hedges);
            obs.registry
                .counter_set("server.hedge_wins", l, st.hedge_wins);
            obs.registry
                .counter_set("server.breaker_trips", l, st.breaker_trips);
            obs.registry
                .counter_set("server.fetches_lost", l, st.fetches_lost);
            obs.registry
                .counter_set("server.parts_received", l, st.parts_received);
            obs.registry
                .counter_set("server.ladder_degrades", l, st.ladder_degrades);
            obs.registry
                .counter_set("server.ladder_restores", l, st.ladder_restores);
            let c = tier.cache.stats;
            obs.registry.counter_set("server.cache_hits", l, c.hits);
            obs.registry.counter_set("server.cache_misses", l, c.misses);
            obs.registry
                .counter_set("server.cache_evicted", l, c.evicted);
            obs.registry
                .hist_set("server.fetch_latency", l, tier.fetch_latency.clone());
        }
    }

    fn on_disconnect(&mut self, api: &mut SimApi<'_, ServiceMsg>, session: SessionId) {
        let now = api.now();
        if let Some(s) = self.sessions.get(&session) {
            if let Some(u) = s.user {
                let dur = now - s.connected_at;
                let bytes: u64 = s.streams.values().map(|t| t.bytes_sent).sum();
                self.accounts.charge(u, Charge::Duration(dur));
                self.accounts.charge(u, Charge::Volume(bytes));
            }
        }
        self.teardown_session(api, session);
    }

    fn local_hits(&self, token: &str) -> Vec<SearchHit> {
        self.db
            .search(token)
            .into_iter()
            .map(|(document, title)| SearchHit {
                server: self.server_id,
                document,
                title,
            })
            .collect()
    }

    fn on_search_request(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        token: String,
        query: u64,
    ) {
        let Some(s) = self.sessions.get(&session) else {
            return;
        };
        let client = s.client;
        let hits = self.local_hits(&token);
        if self.peers.is_empty() {
            api.send_reliable(
                self.node,
                client,
                ServiceMsg::SearchResponse {
                    session,
                    query,
                    hits,
                },
            );
            return;
        }
        self.queries.insert(
            query,
            PendingQuery {
                session,
                client,
                hits,
                awaiting: self.peers.len(),
            },
        );
        // "this particular server sends the query to all other Hermes
        // servers for the same reason" (§6.2.2).
        for peer in self.peers.clone() {
            api.send_reliable(
                self.node,
                peer,
                ServiceMsg::SearchFanout {
                    query,
                    token: token.clone(),
                    origin: self.node,
                },
            );
        }
    }

    fn on_search_partial(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        query: u64,
        hits: Vec<SearchHit>,
    ) {
        let done = {
            let Some(q) = self.queries.get_mut(&query) else {
                return;
            };
            q.hits.extend(hits);
            q.awaiting -= 1;
            q.awaiting == 0
        };
        if done {
            let q = self.queries.remove(&query).unwrap();
            api.send_reliable(
                self.node,
                q.client,
                ServiceMsg::SearchResponse {
                    session: q.session,
                    query,
                    hits: q.hits,
                },
            );
        }
    }
}

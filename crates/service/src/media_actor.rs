//! The media-server node actor of the distributed media tier.
//!
//! The paper attaches per-kind media servers to the multimedia server
//! (§2, §6.1); here they become real simnet nodes. A media node holds
//! replicated content *shards* — the media objects the placement map
//! assigned to it, keyed by origin multimedia server and media kind — and
//! serves stateless [`ServiceMsg::MediaFetchRequest`]s: every segment is
//! recomputed on demand from the object's metadata, so a crashed node
//! loses nothing and a failed-over stream can resume from any replica.

use crate::protocol::ServiceMsg;
use hermes_core::{GradeLevel, MediaKind, NodeId, ServerId};
use hermes_media::{segment_bytes, segment_frames, MediaObject, MediaStore};
use hermes_simnet::SimApi;
use std::collections::BTreeMap;

/// Serving statistics of one media node (the per-node load the placement
/// experiment reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediaNodeStats {
    /// Fetch requests served with a chunk.
    pub requests_served: u64,
    /// Frames shipped in chunks.
    pub frames_served: u64,
    /// Frame payload bytes shipped in chunks.
    pub bytes_served: u64,
    /// Fetches for objects this node does not hold.
    pub not_found: u64,
}

/// A media-server node: replicated content shards plus serving stats.
pub struct MediaActor {
    /// The node this media server runs on.
    pub node: NodeId,
    /// Replica shards by (origin multimedia server, media kind). Keys from
    /// different origin servers may collide, so shards are kept separate.
    pub shards: BTreeMap<(ServerId, MediaKind), MediaStore>,
    /// Serving statistics.
    pub stats: MediaNodeStats,
}

impl MediaActor {
    /// An empty media node.
    pub fn new(node: NodeId) -> Self {
        MediaActor {
            node,
            shards: BTreeMap::new(),
            stats: MediaNodeStats::default(),
        }
    }

    /// Install a replica of `object` for origin server `server` (content
    /// distribution at deployment time).
    pub fn install(&mut self, server: ServerId, object: MediaObject) {
        self.shards
            .entry((server, object.kind()))
            .or_default()
            .insert(object);
    }

    /// Total objects replicated onto this node.
    pub fn objects(&self) -> usize {
        self.shards.values().map(MediaStore::len).sum()
    }

    /// Handle an incoming message addressed to this media node.
    pub fn on_message(&mut self, api: &mut SimApi<'_, ServiceMsg>, from: NodeId, msg: ServiceMsg) {
        let ServiceMsg::MediaFetchRequest {
            fetch,
            server,
            kind,
            object,
            level,
            segment,
            frames_per_segment,
        } = msg
        else {
            return; // media nodes speak only the fetch protocol
        };
        let stored = self
            .shards
            .get(&(server, kind))
            .and_then(|s| s.get(&object));
        let Some(stored) = stored else {
            self.stats.not_found += 1;
            api.send_reliable(
                self.node,
                from,
                ServiceMsg::MediaFetchError {
                    fetch,
                    reason: format!("object '{object}' not replicated here"),
                },
            );
            return;
        };
        let frames = segment_frames(stored, GradeLevel(level), segment, frames_per_segment);
        let total = segment_bytes(&frames);
        self.stats.requests_served += 1;
        self.stats.frames_served += frames.len() as u64;
        self.stats.bytes_served += total;
        // Stream the segment as bounded transport parts — TCP does not
        // deliver megabytes atomically, and a single oversized message
        // could never clear a finite link queue. Only the final part
        // carries the frame specs; earlier parts model payload on the wire.
        const PART_BYTES: u64 = 64 * 1024;
        let mut frames = Some(frames);
        let mut remaining = total;
        loop {
            let part = remaining.min(PART_BYTES);
            remaining -= part;
            let last = remaining == 0;
            api.send_reliable(
                self.node,
                from,
                ServiceMsg::MediaFetchChunk {
                    fetch,
                    payload_bytes: part as u32,
                    last,
                    frames: if last {
                        frames.take().unwrap()
                    } else {
                        Vec::new()
                    },
                },
            );
            if last {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{Encoding, MediaDuration};

    #[test]
    fn install_and_count() {
        let mut m = MediaActor::new(NodeId::new(7));
        m.install(
            ServerId::new(0),
            MediaObject {
                key: "v.mpg".into(),
                encoding: Encoding::Mpeg,
                duration: MediaDuration::from_secs(8),
                seed: 1,
            },
        );
        m.install(
            ServerId::new(1),
            MediaObject {
                key: "v.mpg".into(),
                encoding: Encoding::Mpeg,
                duration: MediaDuration::from_secs(4),
                seed: 2,
            },
        );
        // Same key, different origin servers: two distinct replicas.
        assert_eq!(m.objects(), 2);
        assert_eq!(m.shards.len(), 2);
    }
}

//! The metrics registry: counters, gauges and fixed-bucket histograms keyed
//! by `(name, labels)`, behind one deterministic snapshot/export surface.
//!
//! The registry unifies what four PRs of subsystems grew separately —
//! `SimStats`, link totals, breaker/health state, segment-cache hit
//! accounting, sharing/multicast counters, per-session QoS counters — so an
//! experiment dumps *one* ordered text snapshot instead of fishing in five
//! structs. Keys are `BTreeMap`-ordered, so two identical runs snapshot
//! byte-identically.

use crate::event::Labels;
use crate::stats::DurationHistogram;
use hermes_core::MediaDuration;
use std::collections::BTreeMap;

/// A metric identity: static name plus the fixed label set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Static metric name (`snake_case`, dotted namespaces welcome).
    pub name: &'static str,
    /// Label set distinguishing instances of the same metric.
    pub labels: Labels,
}

impl MetricKey {
    fn new(name: &'static str, labels: Labels) -> Self {
        MetricKey { name, labels }
    }
    /// Canonical `name{labels}` rendering.
    pub fn render(&self) -> String {
        format!("{}{}", self.name, self.labels.render())
    }
}

/// Counter / gauge / histogram store with a deterministic snapshot.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    hists: BTreeMap<MetricKey, DurationHistogram>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add to a counter (created at 0).
    pub fn counter_add(&mut self, name: &'static str, labels: Labels, n: u64) {
        *self
            .counters
            .entry(MetricKey::new(name, labels))
            .or_insert(0) += n;
    }

    /// Set a counter to an absolute value — how subsystems that keep their
    /// own cumulative totals (e.g. `SimStats`) publish into the registry.
    pub fn counter_set(&mut self, name: &'static str, labels: Labels, v: u64) {
        self.counters.insert(MetricKey::new(name, labels), v);
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &'static str, labels: Labels) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &'static str, labels: Labels, v: f64) {
        self.gauges.insert(MetricKey::new(name, labels), v);
    }

    /// Read a gauge (0 when absent).
    pub fn gauge(&self, name: &'static str, labels: Labels) -> f64 {
        self.gauges
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0.0)
    }

    /// Record into a histogram, creating it on first use with the given
    /// bucket layout (later calls keep the original layout).
    pub fn hist_record(
        &mut self,
        name: &'static str,
        labels: Labels,
        width: MediaDuration,
        buckets: usize,
        d: MediaDuration,
    ) {
        self.hists
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| DurationHistogram::new(width, buckets))
            .record(d);
    }

    /// Install an externally-built histogram under a key (replacing any
    /// prior one) — how the media tier publishes its fetch-latency buckets.
    pub fn hist_set(&mut self, name: &'static str, labels: Labels, h: DurationHistogram) {
        self.hists.insert(MetricKey::new(name, labels), h);
    }

    /// Look up a histogram.
    pub fn hist(&self, name: &'static str, labels: Labels) -> Option<&DurationHistogram> {
        self.hists.get(&MetricKey::new(name, labels))
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    /// Number of registered metrics across all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministic text snapshot: one line per metric, key-ordered within
    /// each kind; histograms render count plus p50/p99/max-edge and the
    /// overflow fraction.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {} {v}\n", k.render()));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge {} {v}\n", k.render()));
        }
        for (k, h) in &self.hists {
            out.push_str(&format!(
                "hist {} count={} p50={}us p99={}us overflow={:.4}\n",
                k.render(),
                h.count(),
                h.quantile(0.5).as_micros(),
                h.quantile(0.99).as_micros(),
                h.overflow_fraction(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut r = MetricsRegistry::new();
        r.counter_add("sim.delivered", Labels::NONE, 3);
        r.counter_add("sim.delivered", Labels::NONE, 2);
        r.counter_set("cache.hits", Labels::for_peer(4), 77);
        r.gauge_set("buffer.occupancy", Labels::session(1).stream(2), 0.5);
        assert_eq!(r.counter("sim.delivered", Labels::NONE), 5);
        assert_eq!(r.counter("cache.hits", Labels::for_peer(4)), 77);
        assert_eq!(r.counter("missing", Labels::NONE), 0);
        assert_eq!(
            r.gauge("buffer.occupancy", Labels::session(1).stream(2)),
            0.5
        );
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn snapshot_is_deterministic_and_ordered() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.counter_set("b.metric", Labels::NONE, 2);
            r.counter_set("a.metric", Labels::session(9), 1);
            r.gauge_set("g", Labels::NONE, 1.25);
            r.hist_record(
                "lat",
                Labels::NONE,
                MediaDuration::from_millis(1),
                10,
                MediaDuration::from_millis(3),
            );
            r
        };
        let a = build().snapshot();
        let b = build().snapshot();
        assert_eq!(a, b);
        let a_pos = a.find("a.metric{session=9}").unwrap();
        let b_pos = a.find("b.metric").unwrap();
        assert!(a_pos < b_pos, "snapshot must be key-ordered:\n{a}");
        assert!(a.contains("hist lat count=1"));
    }

    #[test]
    fn hist_keeps_first_layout() {
        let mut r = MetricsRegistry::new();
        let w = MediaDuration::from_millis(10);
        r.hist_record("h", Labels::NONE, w, 4, MediaDuration::from_millis(35));
        r.hist_record(
            "h",
            Labels::NONE,
            MediaDuration::from_millis(1), // ignored: layout fixed at creation
            100,
            MediaDuration::from_millis(5),
        );
        let h = r.hist("h", Labels::NONE).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), MediaDuration::from_millis(40));
    }
}

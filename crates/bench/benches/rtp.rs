//! Criterion bench: RTP packet encode/decode, packetization/reassembly and
//! the receiver-statistics pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hermes_core::{ComponentId, Encoding, GradeLevel, MediaDuration, MediaTime};
use hermes_media::{FrameSource, MediaFrame};
use hermes_rtp::{PayloadType, RtpPacket, RtpReceiver, RtpSender};

fn bench_rtp(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtp");

    let pkt = RtpPacket::synthetic(PayloadType::Mpeg, true, 42, 90_000, 7, 1_400);
    g.throughput(Throughput::Bytes(pkt.encode().len() as u64));
    g.bench_function("encode_1400B", |b| b.iter(|| pkt.encode()));
    let wire = pkt.encode();
    g.bench_function("decode_1400B", |b| {
        b.iter(|| RtpPacket::decode(wire.clone()).unwrap())
    });

    // Packetize + receive one second of MPEG video (25 frames, fragmented).
    let frames: Vec<MediaFrame> = FrameSource::new(
        ComponentId::new(1),
        Encoding::Mpeg,
        9,
        MediaDuration::from_secs(1),
    )
    .collect_all();
    g.throughput(Throughput::Elements(frames.len() as u64));
    g.bench_function("packetize_receive_1s_mpeg", |b| {
        b.iter(|| {
            let mut tx = RtpSender::new(3, Encoding::Mpeg);
            let mut rx = RtpReceiver::new(Encoding::Mpeg);
            let mut t = MediaTime::ZERO;
            for f in &frames {
                for p in tx.packetize(f) {
                    rx.on_packet(&p, t);
                    t += MediaDuration::from_micros(500);
                }
            }
            let got = rx.take_frames();
            assert_eq!(got.len(), frames.len());
            got
        })
    });

    // Receiver report generation over a lossy stream.
    g.bench_function("receiver_report_after_1s", |b| {
        let mut tx = RtpSender::new(3, Encoding::Mpeg);
        let all: Vec<RtpPacket> = frames.iter().flat_map(|f| tx.packetize(f)).collect();
        b.iter(|| {
            let mut rx = RtpReceiver::new(Encoding::Mpeg);
            let mut t = MediaTime::ZERO;
            for (i, p) in all.iter().enumerate() {
                if i % 10 != 0 {
                    rx.on_packet(p, t);
                }
                t += MediaDuration::from_micros(500);
            }
            rx.receiver_report(1, t)
        })
    });

    let _ = GradeLevel::NOMINAL;
    g.finish();
}

criterion_group!(benches, bench_rtp);
criterion_main!(benches);

//! Structured trace events: fixed-shape, allocation-free records stamped
//! with sim-time.
//!
//! An [`Event`] is `Copy`: the name is a `&'static str`, the label set is a
//! fixed struct of optional ids, and the payload is a single `i64`. Emitting
//! one on the hot path costs a couple of field writes and a `Vec` push —
//! nothing is formatted or heap-allocated until an exporter runs.

use hermes_core::MediaTime;

/// Event severity. `Debug` events are retained only in the per-node flight
/// ring (they are the high-frequency context a crash dump wants); `Info` and
/// above also land in the main trace log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// High-frequency context (per-tick buffer occupancy, per-segment
    /// progress). Flight-ring only.
    Debug,
    /// Lifecycle progress (session connect, playout start, regrades).
    Info,
    /// Degraded-but-recoverable conditions (playout gap, ladder step).
    Warn,
    /// Failures (breaker trip, session abandonment, media failover).
    Error,
}

impl Severity {
    /// Lower-case label used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// The fixed label set every event and metric key carries. All fields are
/// optional raw ids; absent labels are omitted by the exporters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Labels {
    /// Session the event belongs to.
    pub session: Option<u64>,
    /// Stream / component within the session.
    pub stream: Option<u64>,
    /// The *other* node involved (media replica, client, peer).
    pub peer: Option<u64>,
    /// Media segment index.
    pub segment: Option<u64>,
}

impl Labels {
    /// The empty label set.
    pub const NONE: Labels = Labels {
        session: None,
        stream: None,
        peer: None,
        segment: None,
    };

    /// Label set with just a session id.
    pub fn session(id: u64) -> Labels {
        Labels {
            session: Some(id),
            ..Labels::NONE
        }
    }
    /// Add a stream/component id.
    pub fn stream(mut self, id: u64) -> Labels {
        self.stream = Some(id);
        self
    }
    /// Add a peer-node id.
    pub fn peer(mut self, id: u64) -> Labels {
        self.peer = Some(id);
        self
    }
    /// Add a segment index.
    pub fn segment(mut self, id: u64) -> Labels {
        self.segment = Some(id);
        self
    }
    /// Label set with just a peer-node id.
    pub fn for_peer(id: u64) -> Labels {
        Labels {
            peer: Some(id),
            ..Labels::NONE
        }
    }

    /// Render as `{k=v,...}` (empty string when no label is set) — the
    /// canonical deterministic form shared by every exporter.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(v) = self.session {
            parts.push(format!("session={v}"));
        }
        if let Some(v) = self.stream {
            parts.push(format!("stream={v}"));
        }
        if let Some(v) = self.peer {
            parts.push(format!("peer={v}"));
        }
        if let Some(v) = self.segment {
            parts.push(format!("segment={v}"));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }
}

/// One trace record. `seq` is a global monotone counter assigned at emit
/// time, so events from different nodes at the same sim-time tick always
/// merge in one deterministic order: `(at, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Sim-time stamp.
    pub at: MediaTime,
    /// Global emit order (tie-break within a tick).
    pub seq: u64,
    /// Raw id of the emitting node.
    pub node: u64,
    /// Severity class.
    pub severity: Severity,
    /// Static event name (`snake_case`).
    pub name: &'static str,
    /// Label set.
    pub labels: Labels,
    /// Free payload (occupancy micros, grade level, gap count, …).
    pub value: i64,
}

impl Event {
    /// The deterministic merge key.
    pub fn sort_key(&self) -> (MediaTime, u64) {
        (self.at, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn labels_render_deterministically() {
        assert_eq!(Labels::NONE.render(), "");
        let l = Labels::session(3).stream(1).peer(9).segment(42);
        assert_eq!(l.render(), "{session=3,stream=1,peer=9,segment=42}");
        assert_eq!(Labels::for_peer(7).render(), "{peer=7}");
    }
}

//! Media-quality grading — the long-term synchronization recovery mechanism.
//!
//! §4: the flow scheduler "in cooperation with the corresponding Media Stream
//! Quality Converter gracefully degrades (upgrades) the stream's quality,
//! e.g. by increasing (decreasing) video compression factor or decreasing
//! (increasing) audio sampling frequency. ... the service first applies the
//! grading technique to the video stream, since audio or voice is considered
//! to be more important to users."
//!
//! This module defines the *policy* types (ladders, ordering, hysteresis);
//! the codec-specific ladders live in `hermes-media`, and the control loop
//! that applies them lives in `hermes-server`.

use crate::media_kind::MediaKind;
use serde::{Deserialize, Serialize};

/// A quality level on a grading ladder. Level 0 is nominal (best); higher
/// levels are progressively degraded.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GradeLevel(pub u8);

impl GradeLevel {
    /// Nominal (authored) quality.
    pub const NOMINAL: GradeLevel = GradeLevel(0);

    /// One step worse, saturating at `max`.
    pub fn degraded(self, max: GradeLevel) -> GradeLevel {
        if self >= max {
            max
        } else {
            GradeLevel(self.0 + 1)
        }
    }
    /// One step better, saturating at nominal.
    pub fn upgraded(self) -> GradeLevel {
        GradeLevel(self.0.saturating_sub(1))
    }
}

/// One rung of a quality ladder: a named quality with a bandwidth cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadderRung {
    /// Human-readable description (e.g. "25 fps, Q=0.9" or "16 kHz ADPCM").
    pub label: String,
    /// Bandwidth this rung requires, bits/second.
    pub bandwidth_bps: u64,
}

/// An ordered quality ladder for one stream: rung 0 is nominal, the last rung
/// is the deepest degradation the encoder supports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityLadder {
    /// Rungs from best (index 0) to worst.
    pub rungs: Vec<LadderRung>,
}

impl QualityLadder {
    /// Build a ladder; panics if empty or if bandwidth is not non-increasing
    /// (degrading must never cost more bandwidth).
    pub fn new(rungs: Vec<LadderRung>) -> Self {
        assert!(
            !rungs.is_empty(),
            "quality ladder must have at least one rung"
        );
        for w in rungs.windows(2) {
            assert!(
                w[1].bandwidth_bps <= w[0].bandwidth_bps,
                "ladder bandwidth must be non-increasing"
            );
        }
        QualityLadder { rungs }
    }
    /// Deepest level on this ladder.
    pub fn max_level(&self) -> GradeLevel {
        GradeLevel((self.rungs.len() - 1) as u8)
    }
    /// The rung at a level, clamped to the ladder depth.
    pub fn rung(&self, level: GradeLevel) -> &LadderRung {
        let i = (level.0 as usize).min(self.rungs.len() - 1);
        &self.rungs[i]
    }
    /// Bandwidth at a level.
    pub fn bandwidth_at(&self, level: GradeLevel) -> u64 {
        self.rung(level).bandwidth_bps
    }
    /// Bandwidth saved by moving from `from` one step down.
    pub fn step_saving(&self, from: GradeLevel) -> u64 {
        let next = from.degraded(self.max_level());
        self.bandwidth_at(from)
            .saturating_sub(self.bandwidth_at(next))
    }
}

/// Which kind of stream the grading engine degrades first — the paper's rule
/// is video-first ("users can tolerate lower video quality rather than 'not
/// hear well'"); the EXP-ABLATE experiment flips it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GradingOrder {
    /// Degrade video streams before audio streams (paper's rule).
    #[default]
    VideoFirst,
    /// Degrade audio streams before video streams (ablation).
    AudioFirst,
    /// Degrade whichever stream yields the largest bandwidth saving.
    LargestSaving,
}

impl GradingOrder {
    /// Rank a media kind for degradation: lower rank degrades first.
    pub fn degrade_rank(self, kind: MediaKind) -> u8 {
        match self {
            GradingOrder::VideoFirst => match kind {
                MediaKind::Video => 0,
                MediaKind::Audio => 1,
                _ => 2,
            },
            GradingOrder::AudioFirst => match kind {
                MediaKind::Audio => 0,
                MediaKind::Video => 1,
                _ => 2,
            },
            // Rank is resolved by the caller using step savings; kinds tie.
            GradingOrder::LargestSaving => 0,
        }
    }
}

/// Hysteresis configuration for the grading control loop: degrade promptly,
/// upgrade cautiously ("gracefully upgrade the media quality when the
/// network's condition permits it").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradingHysteresis {
    /// Congestion score above which a degradation step is taken.
    pub degrade_above: f64,
    /// Congestion score below which an upgrade step may be taken.
    pub upgrade_below: f64,
    /// Consecutive healthy reports required before upgrading.
    pub upgrade_patience: u32,
}

impl Default for GradingHysteresis {
    fn default() -> Self {
        GradingHysteresis {
            degrade_above: 1.0,
            upgrade_below: 0.5,
            upgrade_patience: 3,
        }
    }
}

impl GradingHysteresis {
    /// Validate the dead-band: upgrade threshold must sit below degrade
    /// threshold or the loop oscillates.
    pub fn is_valid(&self) -> bool {
        self.upgrade_below < self.degrade_above && self.upgrade_patience >= 1
    }
}

/// The decision the grading engine reaches for one stream on one report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GradeDecision {
    /// Leave the stream at its current level.
    Hold,
    /// Move one rung down (degrade).
    Degrade,
    /// Move one rung up (upgrade).
    Upgrade,
    /// The stream is already at the user's floor and the network is still
    /// congested: stop transmitting it (§4: "when falling to the lower
    /// threshold, the service may choose to stop transmitting").
    Stop,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> QualityLadder {
        QualityLadder::new(vec![
            LadderRung {
                label: "nominal".into(),
                bandwidth_bps: 1_500_000,
            },
            LadderRung {
                label: "q1".into(),
                bandwidth_bps: 1_000_000,
            },
            LadderRung {
                label: "q2".into(),
                bandwidth_bps: 600_000,
            },
            LadderRung {
                label: "q3".into(),
                bandwidth_bps: 300_000,
            },
        ])
    }

    #[test]
    fn level_stepping_saturates() {
        let max = GradeLevel(3);
        let mut l = GradeLevel::NOMINAL;
        for _ in 0..10 {
            l = l.degraded(max);
        }
        assert_eq!(l, GradeLevel(3));
        for _ in 0..10 {
            l = l.upgraded();
        }
        assert_eq!(l, GradeLevel::NOMINAL);
    }

    #[test]
    fn ladder_lookup_and_clamp() {
        let l = ladder();
        assert_eq!(l.max_level(), GradeLevel(3));
        assert_eq!(l.bandwidth_at(GradeLevel(0)), 1_500_000);
        assert_eq!(l.bandwidth_at(GradeLevel(3)), 300_000);
        // Beyond-depth levels clamp to the deepest rung.
        assert_eq!(l.bandwidth_at(GradeLevel(9)), 300_000);
    }

    #[test]
    fn step_saving_computed() {
        let l = ladder();
        assert_eq!(l.step_saving(GradeLevel(0)), 500_000);
        assert_eq!(l.step_saving(GradeLevel(2)), 300_000);
        assert_eq!(l.step_saving(GradeLevel(3)), 0); // already at bottom
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn increasing_ladder_rejected() {
        let _ = QualityLadder::new(vec![
            LadderRung {
                label: "a".into(),
                bandwidth_bps: 100,
            },
            LadderRung {
                label: "b".into(),
                bandwidth_bps: 200,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one rung")]
    fn empty_ladder_rejected() {
        let _ = QualityLadder::new(vec![]);
    }

    #[test]
    fn video_first_ordering() {
        let o = GradingOrder::VideoFirst;
        assert!(o.degrade_rank(MediaKind::Video) < o.degrade_rank(MediaKind::Audio));
        let o = GradingOrder::AudioFirst;
        assert!(o.degrade_rank(MediaKind::Audio) < o.degrade_rank(MediaKind::Video));
    }

    #[test]
    fn hysteresis_validity() {
        assert!(GradingHysteresis::default().is_valid());
        let bad = GradingHysteresis {
            degrade_above: 0.5,
            upgrade_below: 0.9,
            upgrade_patience: 1,
        };
        assert!(!bad.is_valid());
    }
}

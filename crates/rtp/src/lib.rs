//! # hermes-rtp
//!
//! The Real-time Transport Protocol substrate (paper §6.3, after the
//! Schulzrinne et al. Internet-Draft [SCH 95]): RTP data packets with exact
//! header encode/decode, RTCP sender/receiver reports, the RFC 3550
//! interarrival-jitter estimator, and per-stream sessions that packetize
//! media frames (MTU fragmentation, marker bits) and reassemble them with
//! full reception statistics.

#![warn(missing_docs)]

pub mod packet;
pub mod rtcp;
pub mod session;
pub mod stats;

pub use packet::{
    clock_to_micros, micros_to_clock, PayloadType, RtpDecodeError, RtpPacket, RTP_HEADER_LEN,
    UDP_IP_OVERHEAD,
};
pub use rtcp::{ReportBlock, RtcpDecodeError, RtcpPacket};
pub use session::{
    payload_type_for, wire_bytes_for_frame, ReceivedFrame, RtpReceiver, RtpSender,
    DEFAULT_MAX_PAYLOAD,
};
pub use stats::ReceiverStats;

#![allow(clippy::field_reassign_with_default)]
//! EXP-OVERLOAD — claim: the overload-resilience stack (per-replica circuit
//! breaking, hedged fetches and the mid-session degradation ladder) lets the
//! service ride out a ≥3.5× flash-crowd spike with bounded playout gaps,
//! while the all-off baseline measurably collapses under the same arrivals.
//!
//! An open-loop Poisson stream of session requests over a Zipf catalog
//! drives one server backed by a deliberately tight two-node media tier
//! (small service queues, slow disks, no segment cache, no stream sharing —
//! every session pays full tier cost). Partway through, the arrival rate
//! multiplies by 3.5×, either permanently (`step`) or for a window
//! (`spike`). The sweep crosses arrival pattern × overload mode
//! (off / hedge / ladder / full) and reports goodput, the playout-gap rate
//! and its across-session P99, shed and hedged fetch counts, breaker trips,
//! ladder activity and the P99 tier fetch latency.
//!
//! `--smoke` runs a reduced grid (spike only, off vs full, two seeds) for
//! the CI determinism gate; `--seed`/`--out` as in every experiment binary.

use hermes_bench::{percentile, Arrival, ExpOpts, Table, ZipfCatalog};
use hermes_core::{MediaDuration, MediaTime, NodeId, ServerId};
use hermes_server::{SharingMode, SharingPolicy};
use hermes_service::{
    install_course, ClientConfig, LessonShape, MediaNodeConfig, MediaTierConfig, ServerConfig,
    ServiceMsg, ServiceWorld, WorldBuilder,
};
use hermes_simnet::{LinkSpec, Sim, SimRng};

/// Which overload-control features are armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Everything off: the PR-1 service with a queueing media tier.
    Off,
    /// Circuit breaker + hedged fetches.
    Hedge,
    /// Circuit breaker + degradation ladder.
    Ladder,
    /// The full stack.
    Full,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Hedge => "hedge",
            Mode::Ladder => "ladder",
            Mode::Full => "full",
        }
    }

    fn tier(self) -> MediaTierConfig {
        let (breaker, hedging, ladder) = match self {
            Mode::Off => (false, false, false),
            Mode::Hedge => (true, true, false),
            Mode::Ladder => (true, false, true),
            Mode::Full => (true, true, true),
        };
        // The breaker's latency trip-wire sits above the full-queue delay
        // (queue 24 × ~70 ms/segment ≈ 1.7 s): under a symmetric flash crowd
        // every replica queues alike, and tripping on shared queueing would
        // only strangle throughput. The error-rate wire still catches shed
        // storms and sick nodes.
        let mut breaker_cfg = hermes_server::BreakerConfig::default();
        breaker_cfg.latency_threshold = MediaDuration::from_millis(3_000);
        MediaTierConfig {
            replication: 2,
            cache_bytes: 0, // every fetch reaches the tier: overload is real
            breaker,
            breaker_cfg,
            hedging,
            ladder,
            // One victim session per tick: 20/s walks a flash crowd down
            // the ladder fast enough to shed demand inside the spike.
            ladder_period: MediaDuration::from_millis(50),
            ..Default::default()
        }
    }
}

/// Arrival-rate shape of the flash crowd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    /// Rate steps up at `spike_at` and stays up.
    Step,
    /// Rate spikes for `spike_len`, then returns to base.
    Spike,
}

impl Pattern {
    fn label(self) -> &'static str {
        match self {
            Pattern::Step => "step",
            Pattern::Spike => "spike",
        }
    }
}

/// Sweep dimensions (full vs `--smoke`).
struct Grid {
    patterns: Vec<Pattern>,
    modes: Vec<Mode>,
    seeds: Vec<u64>,
    base_rate: f64,
    spike_mult: f64,
    spike_at: MediaTime,
    spike_len: MediaDuration,
    arrival_horizon: MediaTime,
    pool: usize,
    catalog: usize,
    clip_secs: i64,
}

impl Grid {
    fn new(opts: &ExpOpts) -> Self {
        if opts.smoke {
            Grid {
                patterns: vec![Pattern::Spike],
                modes: vec![Mode::Off, Mode::Full],
                seeds: opts.seeds(&[1, 2]),
                base_rate: 2.0,
                spike_mult: 3.5,
                spike_at: MediaTime::from_secs(6),
                spike_len: MediaDuration::from_secs(8),
                arrival_horizon: MediaTime::from_secs(20),
                pool: 60,
                catalog: 6,
                clip_secs: 8,
            }
        } else {
            Grid {
                patterns: vec![Pattern::Step, Pattern::Spike],
                modes: vec![Mode::Off, Mode::Hedge, Mode::Ladder, Mode::Full],
                seeds: opts.seeds(&[1]),
                base_rate: 2.5,
                spike_mult: 3.5,
                spike_at: MediaTime::from_secs(8),
                spike_len: MediaDuration::from_secs(10),
                arrival_horizon: MediaTime::from_secs(26),
                pool: 90,
                catalog: 8,
                clip_secs: 8,
            }
        }
    }
}

/// Piecewise-Poisson flash crowd: base rate outside the crowd window,
/// `base × spike_mult` inside it. Same seed ⇒ same schedule for every
/// overload mode, so mode columns are directly comparable.
fn flash_crowd(seed: u64, pattern: Pattern, g: &Grid) -> Vec<Arrival> {
    let mut rng = SimRng::seed_from_u64(seed);
    let catalog = ZipfCatalog::new(g.catalog, 1.1);
    let mut out = Vec::new();
    let mut t = MediaTime::ZERO;
    loop {
        let hot = t >= g.spike_at && (pattern == Pattern::Step || t < g.spike_at + g.spike_len);
        let rate = if hot {
            g.base_rate * g.spike_mult
        } else {
            g.base_rate
        };
        let gap_secs = rng.exponential(1.0 / rate);
        t += MediaDuration::from_micros((gap_secs * 1e6) as i64);
        if t >= g.arrival_horizon {
            return out;
        }
        out.push(Arrival {
            at: t,
            rank: catalog.sample(&mut rng),
        });
    }
}

#[derive(Debug, Clone, Default)]
struct Point {
    arrivals: usize,
    completed: usize,
    rejected: usize,
    unserved: usize,
    gap_per_kframe: f64,
    gap_p99: f64,
    shed: u64,
    hedges: u64,
    hedge_wins: u64,
    trips: u64,
    degrades: u64,
    restores: u64,
    fetch_p99_ms: f64,
}

fn run_point(seed: u64, pattern: Pattern, mode: Mode, g: &Grid) -> Point {
    let mut b = WorldBuilder::new(seed);
    let mut cfg = ServerConfig::default();
    // No stream sharing: every session pays full media-tier cost, so the
    // flash crowd hits the tier head-on (sharing is EXP-SCALE's subject).
    cfg.sharing = SharingPolicy {
        mode: SharingMode::Off,
        ..Default::default()
    };
    let srv = b.add_server(ServerId::new(0), LinkSpec::lan(2_000_000_000), cfg);
    let nodes: Vec<NodeId> = (0..g.pool)
        .map(|_| b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default()))
        .collect();
    let media: Vec<NodeId> = (0..2)
        .map(|_| b.add_media_node(LinkSpec::san(1_000_000_000)))
        .collect();
    b.media_config(mode.tier());
    let mut sim: Sim<ServiceMsg, ServiceWorld> = b.build(seed);
    // Tight tier: short queues and slow disks so the spike actually
    // overloads serving capacity rather than the network.
    for &m in &media {
        sim.app_mut().media_mut(m).configure(MediaNodeConfig {
            queue_capacity: 24,
            fixed_service: MediaDuration::from_millis(1),
            per_mbyte: MediaDuration::from_millis(300),
        });
    }
    let mut rng = SimRng::seed_from_u64(seed ^ 0xF1A5);
    let lessons = install_course(
        sim.app_mut().server_mut(srv),
        "Crowd",
        &["overload"],
        1,
        g.catalog,
        LessonShape {
            images: 0,
            image_secs: 0,
            narrated_clip_secs: Some(g.clip_secs),
            closing_audio_secs: None,
        },
        &mut rng,
    );
    sim.app_mut().distribute_media();

    let arrivals = flash_crowd(seed, pattern, g);

    // Open-loop driver over a fixed client pool (same scheme as EXP-SCALE):
    // each arrival claims an idle client and reconnects it to the requested
    // lesson; a grown completed/errors count frees the slot.
    let mut slots: Vec<Option<(usize, usize)>> = vec![None; g.pool];
    let mut p = Point {
        arrivals: arrivals.len(),
        ..Point::default()
    };
    let mut glitches = 0u64;
    let mut frames = 0u64;
    let mut session_gaps: Vec<f64> = Vec::new();
    let mut harvest = |c: &hermes_service::ClientActor| {
        if let Some(pres) = &c.presentation {
            let s = pres.engine.total_stats();
            glitches += s.glitches;
            frames += s.frames_played;
            if s.frames_played > 0 {
                session_gaps.push(s.glitches as f64 * 1_000.0 / s.frames_played as f64);
            }
        }
    };
    for a in &arrivals {
        sim.run_until(a.at);
        let mut free = None;
        for i in 0..g.pool {
            match slots[i] {
                None => {
                    if free.is_none() {
                        free = Some(i);
                    }
                }
                Some((c0, e0)) => {
                    let c = sim.app().client(nodes[i]);
                    if c.completed.len() > c0 || c.errors.len() > e0 {
                        harvest(c);
                        slots[i] = None;
                        if free.is_none() {
                            free = Some(i);
                        }
                    }
                }
            }
        }
        let Some(i) = free else {
            p.unserved += 1;
            continue;
        };
        let node = nodes[i];
        let doc = lessons[a.rank];
        let c = sim.app().client(node);
        slots[i] = Some((c.completed.len(), c.errors.len()));
        sim.with_api(|w, api| {
            let cl = w.client_mut(node);
            cl.disconnect(api);
            cl.connect(api, srv, Some(doc));
        });
    }
    // Drain: let every in-flight session play out.
    let end = g.arrival_horizon + MediaDuration::from_secs(g.clip_secs + 15);
    sim.run_until(end);
    for (i, s) in slots.iter().enumerate() {
        if s.is_some() {
            harvest(sim.app().client(nodes[i]));
        }
    }

    for &node in &nodes {
        let c = sim.app().client(node);
        p.completed += c.completed.len();
        p.rejected += c.errors.len();
    }
    if frames > 0 {
        p.gap_per_kframe = glitches as f64 * 1_000.0 / frames as f64;
    }
    p.gap_p99 = percentile(&session_gaps, 0.99);
    let server = sim.app().server(srv);
    let tier = server.media.as_ref().expect("media tier not deployed");
    p.shed = tier.stats.busy;
    p.hedges = tier.stats.hedges;
    p.hedge_wins = tier.stats.hedge_wins;
    p.trips = tier.stats.breaker_trips;
    p.degrades = tier.stats.ladder_degrades;
    p.restores = tier.stats.ladder_restores;
    p.fetch_p99_ms = tier.fetch_latency.quantile(0.99).as_micros() as f64 / 1_000.0;
    sim.app().audit_media_parts(&sim.stats());
    p
}

fn main() {
    let opts = ExpOpts::parse();
    let g = Grid::new(&opts);
    let mut out = opts.sink();
    out.line(&format!(
        "workload: open-loop Poisson arrivals over a Zipf(1.1) catalog of {} clip\n\
         lessons ({} s each), client pool {}, two-node media tier (queue 24,\n\
         1 ms + 300 ms/MiB service, no cache, no sharing); base rate {}/s with a\n\
         {:.1}× flash crowd from {} s ({}); arrivals for {} s plus drain",
        g.catalog,
        g.clip_secs,
        g.pool,
        g.base_rate,
        g.spike_mult,
        (g.spike_at - MediaTime::ZERO).as_micros() / 1_000_000,
        if g.patterns.contains(&Pattern::Step) {
            "step and spike"
        } else {
            "spike only"
        },
        (g.arrival_horizon - MediaTime::ZERO).as_micros() / 1_000_000,
    ));
    let mut t = Table::new(vec![
        "pattern",
        "mode",
        "seed",
        "arrivals",
        "done",
        "rej",
        "unserved",
        "gaps/kframe",
        "gap p99",
        "shed",
        "hedges(won)",
        "trips",
        "ladder -/+",
        "fetch p99 ms",
    ]);
    // (pattern, mode) → worst-seed gap stats for the claim checks.
    let mut worst_gap = std::collections::BTreeMap::new();
    let mut worst_p99 = std::collections::BTreeMap::new();
    let mut armed = std::collections::BTreeMap::new();
    for &pattern in &g.patterns {
        for &mode in &g.modes {
            for &seed in &g.seeds {
                let p = run_point(seed, pattern, mode, &g);
                t.row(vec![
                    pattern.label().to_string(),
                    mode.label().to_string(),
                    seed.to_string(),
                    p.arrivals.to_string(),
                    p.completed.to_string(),
                    p.rejected.to_string(),
                    p.unserved.to_string(),
                    format!("{:.2}", p.gap_per_kframe),
                    format!("{:.2}", p.gap_p99),
                    p.shed.to_string(),
                    format!("{}({})", p.hedges, p.hedge_wins),
                    p.trips.to_string(),
                    format!("{}/{}", p.degrades, p.restores),
                    format!("{:.1}", p.fetch_p99_ms),
                ]);
                let key = (pattern.label(), mode.label());
                let wg: &mut f64 = worst_gap.entry(key).or_insert(0f64);
                *wg = wg.max(p.gap_per_kframe);
                let wp: &mut f64 = worst_p99.entry(key).or_insert(0f64);
                *wp = wp.max(p.gap_p99);
                let a: &mut u64 = armed.entry(key).or_insert(0);
                *a += p.trips + p.hedges + p.degrades;
            }
        }
    }
    out.table(
        "EXP-OVERLOAD — flash-crowd resilience vs arrival pattern × overload mode",
        &t,
    );
    out.line(
        "expected shape: with everything off the spike saturates the tier's serving\n\
         queues — fetch latency and sheds climb and playout gaps spread across most\n\
         sessions; hedging reroutes the latency tail to the sibling replica, the\n\
         ladder sheds decode work mid-session, and the full stack keeps the gap\n\
         P99 bounded through the same crowd.",
    );

    // The headline claim per pattern: the full stack keeps worst-seed gap
    // rates strictly below the all-off baseline through a ≥3.5× crowd, and
    // its control loops actually engaged (trips + hedges + ladder steps).
    for &pattern in &g.patterns {
        let k = |m: &'static str| (pattern.label(), m);
        let off = worst_gap[&k("off")];
        let full = worst_gap[&k("full")];
        out.line(&format!(
            "claim @ {} ×{:.1}: gaps/kframe {:.2} → {:.2}, session gap P99 {:.2} → {:.2}",
            pattern.label(),
            g.spike_mult,
            off,
            full,
            worst_p99[&k("off")],
            worst_p99[&k("full")],
        ));
        assert!(
            armed[&k("full")] > 0,
            "overload stack never engaged under the {} crowd",
            pattern.label()
        );
        assert!(
            full < off,
            "full stack did not beat the baseline gap rate: {full} vs {off}"
        );
        if !opts.smoke {
            assert!(
                off >= 2.0 * full.max(0.5),
                "baseline did not measurably collapse: off {off} vs full {full}"
            );
        }
    }
}

//! # hermes-hml
//!
//! The hypermedia markup language of the paper (§3): an HTML-like language
//! extended with `STARTIME`/`DURATION` timing, `AU_VI` synchronized pairs
//! and timed `HLINK` hyperlinks — the wire representation of a
//! pre-orchestrated presentation scenario.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast`] → [`scenario_build`] (lowering
//! to the substrate-independent [`hermes_core::Scenario`]); [`serializer`]
//! renders an AST back to markup (round-trip safe); [`builder`] offers a
//! fluent authoring API; [`keywords`] is the live registry behind the
//! paper's Table 1.

#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod keywords;
pub mod lexer;
pub mod parser;
pub mod scenario_build;
pub mod serializer;
pub mod values;

pub use ast::HmlDocument;
pub use builder::DocumentBuilder;
pub use parser::{parse, ParseError};
pub use scenario_build::{build_scenario, scenario_from_markup, BuildError};
pub use serializer::serialize;

use std::fmt;

/// Any error the HML pipeline can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Lowering to a scenario failed.
    Build(BuildError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Self {
        Error::Build(e)
    }
}

/// The markup text of the paper's Fig. 2 example scenario, used by the FIG2
/// experiment, the quickstart example and several tests.
pub const FIGURE2_MARKUP: &str = r#"
<TITLE> Figure 2 scenario </TITLE>
<TEXT> This formatted text is shown throughout the presentation </TEXT>
<IMG> SOURCE=i1.jpg STARTIME=0s DURATION=5s ID=1 NOTE="image I1" </IMG>
<IMG> SOURCE=i2.jpg STARTIME=5s DURATION=7s ID=2 NOTE="image I2" </IMG>
<AU_VI> STARTIME=6s DURATION=8s SOURCE=a1.pcm SOURCE=v.mpg ID=3 ID=4 NOTE="A1 synchronized with V" </AU_VI>
<AU> SOURCE=a2.pcm STARTIME=15s DURATION=4s ID=5 NOTE="audio A2" </AU>
<HLINK> AT=19s TO=doc2 KIND=SEQ NOTE="next document in the author's sequence" </HLINK>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{DocumentId, PlayoutSchedule, ServerId};

    #[test]
    fn figure2_markup_parses_and_schedules() {
        let s = scenario_from_markup(FIGURE2_MARKUP, DocumentId::new(1), ServerId::new(0)).unwrap();
        assert!(s.is_well_formed());
        let sched = PlayoutSchedule::from_scenario(&s);
        assert_eq!(sched.end, hermes_core::MediaTime::from_secs(19));
        assert_eq!(sched.peak_continuous_concurrency(), 2);
    }

    #[test]
    fn error_wrapping_displays() {
        let e = scenario_from_markup("<OOPS>", DocumentId::new(1), ServerId::new(0)).unwrap_err();
        assert!(matches!(e, Error::Parse(_)));
        assert!(e.to_string().contains("unknown tag"));
    }
}

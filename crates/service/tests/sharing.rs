#![allow(clippy::field_reassign_with_default)]
//! Stream-sharing tests: batching windows merge concurrent requests onto
//! one multicast flow, patching tiles a late joiner's missed prefix
//! exactly, and media-tier faults fail a whole group over with a single
//! epoch bump — all deterministic under fixed seeds.

use hermes_core::{DocumentId, MediaDuration, MediaTime, NodeId, ServerId};
use hermes_server::{SharingMode, SharingPolicy};
use hermes_service::{
    install_course, install_figure2, ClientConfig, LessonShape, ServerConfig, ServiceMsg,
    ServiceWorld, WorldBuilder,
};
use hermes_simnet::{FaultKind, LinkSpec, Sim, SimRng};

const DOC: u64 = 1;
const CLIP_DOC: u64 = 10;

/// One server (sharing per `mode`), three clients, three media nodes,
/// clean 10 Mbps LAN links. Fig. 2 is installed and distributed over the
/// media tier.
fn sharing_world(
    seed: u64,
    mode: SharingMode,
) -> (Sim<ServiceMsg, ServiceWorld>, NodeId, Vec<NodeId>) {
    let mut b = WorldBuilder::new(seed);
    let mut cfg = ServerConfig::default();
    cfg.sharing = SharingPolicy {
        mode,
        window: MediaDuration::from_millis(2_000),
        max_patch: MediaDuration::from_secs(4),
        hot_rank: 4,
    };
    // A fat server trunk: the test's claim is about egress *bytes*, not
    // congestion, and a starved trunk queues control messages behind
    // media-tier segment fetches (skewing patch-window timing).
    let srv = b.add_server(ServerId::new(0), LinkSpec::lan(100_000_000), cfg);
    let clients: Vec<NodeId> = (0..3)
        .map(|_| b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default()))
        .collect();
    for _ in 0..3 {
        b.add_media_node(LinkSpec::san(100_000_000));
    }
    let mut sim = b.build(seed);
    let mut rng = SimRng::seed_from_u64(99);
    install_figure2(
        sim.app_mut().server_mut(srv),
        DocumentId::new(DOC),
        &mut rng,
    );
    // A lesson whose narrated clip starts at scenario time zero: its
    // continuous frames flow from the moment the shared flow opens, so a
    // late joiner genuinely misses a prefix (Fig. 2's media start ~10 s in,
    // which a 4 s patch bound never reaches).
    install_course(
        sim.app_mut().server_mut(srv),
        "Patching",
        &["sharing"],
        CLIP_DOC,
        1,
        LessonShape {
            images: 0,
            image_secs: 0,
            narrated_clip_secs: Some(16),
            closing_audio_secs: None,
        },
        &mut rng,
    );
    sim.app_mut().distribute_media();
    (sim, srv, clients)
}

/// Connect each client `gap` apart, all requesting the same document.
fn staggered_connects(
    sim: &mut Sim<ServiceMsg, ServiceWorld>,
    srv: NodeId,
    clients: &[NodeId],
    doc: u64,
    gap: MediaDuration,
) {
    for (i, &cli) in clients.iter().enumerate() {
        sim.run_until(MediaTime::ZERO + gap * i as i64);
        sim.with_api(|w, api| {
            w.client_mut(cli)
                .connect(api, srv, Some(DocumentId::new(doc)));
        });
    }
}

/// Per-client reassembled frame counts by component, plus playout glitches.
fn client_frames(
    sim: &Sim<ServiceMsg, ServiceWorld>,
    clients: &[NodeId],
) -> Vec<std::collections::BTreeMap<hermes_core::ComponentId, u64>> {
    clients
        .iter()
        .map(|&cli| {
            let c = sim.app().client(cli);
            assert!(c.errors.is_empty(), "client {cli} errors: {:?}", c.errors);
            assert_eq!(c.completed.len(), 1, "client {cli} did not complete");
            let p = c.presentation.as_ref().unwrap();
            assert_eq!(p.engine.total_stats().glitches, 0, "client {cli} glitched");
            p.frames_received.clone()
        })
        .collect()
}

/// Bytes the server pushed onto its access trunk (server → backbone).
fn trunk_bytes(sim: &Sim<ServiceMsg, ServiceWorld>, srv: NodeId) -> u64 {
    sim.net()
        .link(srv, NodeId::new(0))
        .expect("server trunk")
        .stats
        .bytes_sent
}

/// Three requests inside one batching window ride a single multicast flow:
/// one group, two pending joins, and a trunk that carries roughly one copy
/// of the continuous media instead of three.
#[test]
fn batching_merges_concurrent_requests_and_cuts_trunk_egress() {
    let run = |mode: SharingMode| {
        let (mut sim, srv, clients) = sharing_world(31, mode);
        staggered_connects(
            &mut sim,
            srv,
            &clients,
            DOC,
            MediaDuration::from_millis(300),
        );
        sim.run_until(MediaTime::from_secs(45));
        let frames = client_frames(&sim, &clients);
        // Every member reassembled the identical stream.
        assert_eq!(frames[0], frames[1]);
        assert_eq!(frames[0], frames[2]);
        let server = sim.app().server(srv);
        (trunk_bytes(&sim, srv), server.sharing_stats)
    };

    let (off_bytes, off_stats) = run(SharingMode::Off);
    assert_eq!(off_stats.groups_opened, 0);
    assert_eq!(off_stats.mcast_frames, 0);

    let (shared_bytes, stats) = run(SharingMode::Batching);
    assert_eq!(stats.groups_opened, 1, "expected one batch: {stats:?}");
    assert_eq!(stats.joins_pending, 2, "both followers join pending");
    assert_eq!(stats.joins_patched, 0);
    assert!(stats.mcast_frames > 100, "shared flow never streamed");
    // Three unicast copies collapsed to one shared copy on the trunk.
    assert!(
        shared_bytes * 2 < off_bytes,
        "sharing saved too little: {shared_bytes} vs {off_bytes}"
    );
}

/// A viewer arriving after the shared flow started patches the missed
/// prefix over unicast while buffering the multicast tail: the patch and
/// the shared flow tile the stream exactly — the joiner ends with the same
/// per-component frame counts as the leader, no duplicate and no hole.
#[test]
fn late_joiner_patch_tiles_exactly_with_shared_flow() {
    let (mut sim, srv, clients) = sharing_world(37, SharingMode::BatchingPatching);
    // Leader at 0 s ("hot" content starts immediately, clip at scenario
    // zero); the late joiners arrive 1.5 s apart, inside the 4 s patch
    // bound but well after frames started flowing.
    staggered_connects(
        &mut sim,
        srv,
        &clients,
        CLIP_DOC,
        MediaDuration::from_millis(1_500),
    );
    sim.run_until(MediaTime::from_secs(45));

    let frames = client_frames(&sim, &clients);
    assert_eq!(frames[0], frames[1], "joiner 1 diverged from leader");
    assert_eq!(frames[0], frames[2], "joiner 2 diverged from leader");
    let server = sim.app().server(srv);
    let stats = server.sharing_stats;
    assert_eq!(stats.groups_opened, 1, "{stats:?}");
    assert_eq!(stats.joins_patched, 2, "{stats:?}");
    assert!(
        stats.patch_streams >= 2,
        "patch streams never opened: {stats:?}"
    );
    assert!(stats.mcast_frames > 100);
    // Both joiners ride the same group as the leader.
    let leader_group = sim.app().client(clients[0]).shared_group;
    assert!(leader_group.is_some());
    assert_eq!(sim.app().client(clients[1]).shared_group, leader_group);
    assert_eq!(sim.app().client(clients[2]).shared_group, leader_group);
}

/// A media node dies while feeding an active shared group: the tier fails
/// over, the group's epoch bumps exactly once, and every member finishes
/// with frame counts identical to a fault-free run.
#[test]
fn media_node_crash_recovers_whole_group_with_one_epoch_bump() {
    let run = |crash: bool| {
        let (mut sim, srv, clients) = sharing_world(41, SharingMode::Batching);
        staggered_connects(
            &mut sim,
            srv,
            &clients,
            CLIP_DOC,
            MediaDuration::from_millis(300),
        );
        // The batching window closes ~2 s in; by 6 s the shared flow is
        // live. Kill the media node actually feeding it.
        sim.run_until(MediaTime::from_secs(6));
        if crash {
            assert!(
                !sim.app().server(srv).groups.is_empty(),
                "no active shared group at 6 s"
            );
            let victim = sim
                .app()
                .server(srv)
                .sessions
                .values()
                .flat_map(|s| s.streams.values())
                .filter(|tx| !tx.done && !tx.stopped && tx.plan.kind.is_continuous())
                .filter_map(|tx| tx.remote.as_ref().map(|r| r.replica))
                .next()
                .expect("no active tier-backed stream at 6 s");
            sim.inject_fault(
                MediaTime::from_secs(6),
                FaultKind::NodeCrash { node: victim },
            );
        }
        sim.run_until(MediaTime::from_secs(45));
        let frames = client_frames(&sim, &clients);
        let server = sim.app().server(srv);
        let tier = server.media.as_ref().expect("media tier not deployed");
        (frames, server.sharing_stats, tier.stats.failovers)
    };

    let (base_frames, base_stats, base_failovers) = run(false);
    assert_eq!(base_failovers, 0);
    assert_eq!(base_stats.epoch_bumps, 0);
    assert!(
        base_frames[0].values().sum::<u64>() > 100,
        "continuous media never streamed: {base_frames:?}"
    );

    let (frames, stats, failovers) = run(true);
    assert!(failovers >= 1, "media-node crash triggered no failover");
    assert_eq!(
        stats.epoch_bumps, 1,
        "the group fails over as one unit: {stats:?}"
    );
    assert_eq!(
        frames, base_frames,
        "failover duplicated or dropped frames for some member"
    );
}

//! Overload-control primitives: replica health tracking with a three-state
//! circuit breaker, a bounded request queue with deadline-aware shedding, a
//! CoDel-style queue-delay pressure detector, and a retry-budget token
//! bucket.
//!
//! The paper's QoS managers recover from *congestion*; these mechanisms make
//! the service survive *overload* — the "heavy traffic from millions of
//! users" regime of §1. The design follows the tail-tolerance playbook:
//! eject slow-but-alive replicas instead of waiting on them (circuit
//! breaking), bound queues and shed work whose playout deadline is already
//! unmeetable (staged admission), and meter retries so recovery traffic can
//! never exceed useful throughput (retry budgets). Everything here is pure
//! policy — no simulator types — so the service layer wires it to timers
//! and the bench can sweep it.

use hermes_core::{MediaDuration, MediaTime, NodeId, PricingClass};
use std::collections::{BTreeMap, VecDeque};

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Configuration of the per-replica health tracker / circuit breaker.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// EWMA weight given to each new sample (0 < alpha ≤ 1).
    pub alpha: f64,
    /// Trip when the EWMA fetch latency exceeds this.
    pub latency_threshold: MediaDuration,
    /// Trip when the EWMA error rate exceeds this fraction.
    pub error_threshold: f64,
    /// Minimum samples before the breaker may trip (cold replicas are not
    /// judged on their first fetch).
    pub min_samples: u32,
    /// How long an Open breaker blocks traffic before letting probes through.
    pub open_timeout: MediaDuration,
    /// Maximum concurrent probe fetches admitted while HalfOpen.
    pub half_open_probes: u32,
    /// Consecutive probe successes required to close again.
    pub close_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            alpha: 0.2,
            latency_threshold: MediaDuration::from_millis(250),
            error_threshold: 0.5,
            min_samples: 5,
            open_timeout: MediaDuration::from_millis(500),
            half_open_probes: 2,
            close_successes: 3,
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all traffic admitted, health tracked.
    Closed,
    /// Tripped: no traffic until `open_timeout` elapses.
    Open,
    /// Probing: a bounded number of probe fetches decide the verdict.
    HalfOpen,
}

/// Health record of one replica node: EWMA latency and error-rate scores
/// plus the breaker state machine.
#[derive(Debug, Clone)]
pub struct NodeHealth {
    /// EWMA of observed fetch latencies, in microseconds.
    pub ewma_latency_micros: f64,
    /// EWMA of the error indicator (1 per failure, 0 per success).
    pub ewma_error_rate: f64,
    /// Samples absorbed since the last reset/close.
    pub samples: u32,
    /// Current breaker state.
    pub state: BreakerState,
    /// When the breaker last tripped to Open.
    opened_at: MediaTime,
    /// Probe fetches currently in flight (HalfOpen only).
    probes_in_flight: u32,
    /// Consecutive probe successes while HalfOpen.
    probe_successes: u32,
    /// When the last probe slot was granted (stale-slot reclamation).
    probed_at: MediaTime,
    /// Times this replica's breaker tripped Closed/HalfOpen → Open.
    pub trips: u64,
}

impl Default for NodeHealth {
    fn default() -> Self {
        NodeHealth::new()
    }
}

impl NodeHealth {
    /// A fresh record: Closed, no samples.
    pub fn new() -> Self {
        NodeHealth {
            ewma_latency_micros: 0.0,
            ewma_error_rate: 0.0,
            samples: 0,
            state: BreakerState::Closed,
            opened_at: MediaTime::ZERO,
            probes_in_flight: 0,
            probe_successes: 0,
            probed_at: MediaTime::ZERO,
            trips: 0,
        }
    }

    fn absorb(&mut self, cfg: &BreakerConfig, latency_micros: f64, error: f64) {
        if self.samples == 0 {
            self.ewma_latency_micros = latency_micros;
            self.ewma_error_rate = error;
        } else {
            self.ewma_latency_micros =
                cfg.alpha * latency_micros + (1.0 - cfg.alpha) * self.ewma_latency_micros;
            self.ewma_error_rate = cfg.alpha * error + (1.0 - cfg.alpha) * self.ewma_error_rate;
        }
        self.samples = self.samples.saturating_add(1);
    }

    fn trip(&mut self, now: MediaTime) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.probes_in_flight = 0;
        self.probe_successes = 0;
        self.trips += 1;
    }

    /// A fetch to this replica completed successfully after `latency`.
    pub fn record_success(&mut self, cfg: &BreakerConfig, now: MediaTime, latency: MediaDuration) {
        self.absorb(cfg, latency.as_micros() as f64, 0.0);
        match self.state {
            BreakerState::Closed => {
                if self.samples >= cfg.min_samples
                    && self.ewma_latency_micros > cfg.latency_threshold.as_micros() as f64
                {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                // A slow probe is not a recovery: only a probe under the
                // latency threshold counts toward closing.
                if latency <= cfg.latency_threshold {
                    self.probe_successes += 1;
                    if self.probe_successes >= cfg.close_successes {
                        self.close();
                    }
                } else {
                    self.trip(now);
                }
            }
            BreakerState::Open => {}
        }
    }

    /// A fetch to this replica failed (error, shed, or timed out).
    pub fn record_failure(&mut self, cfg: &BreakerConfig, now: MediaTime) {
        // A failure also counts as a worst-case latency sample so a replica
        // that only ever errors still accumulates a poisoned latency score.
        self.absorb(cfg, cfg.latency_threshold.as_micros() as f64 * 2.0, 1.0);
        match self.state {
            BreakerState::Closed => {
                if self.samples >= cfg.min_samples
                    && (self.ewma_error_rate > cfg.error_threshold
                        || self.ewma_latency_micros > cfg.latency_threshold.as_micros() as f64)
                {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                self.trip(now);
            }
            BreakerState::Open => {}
        }
    }

    /// A fetch to this replica was abandoned with no verdict (e.g. a hedge
    /// loser cancelled mid-flight): release any probe slot it held.
    pub fn record_abandon(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
        }
    }

    /// A hedge race resolved against this replica: its fetch was cancelled
    /// after `elapsed` with no reply — a censored, lower-bound latency
    /// observation (the true latency is *at least* `elapsed`). Scores the
    /// latency wire, so a chronically slow replica trips even when hedges
    /// beat it every time and no un-hedged completion ever samples it. It
    /// never counts toward closing a half-open circuit: no verdict arrived.
    pub fn record_slow_loss(
        &mut self,
        cfg: &BreakerConfig,
        now: MediaTime,
        elapsed: MediaDuration,
    ) {
        self.absorb(cfg, elapsed.as_micros() as f64, 0.0);
        match self.state {
            BreakerState::Closed => {
                if self.samples >= cfg.min_samples
                    && self.ewma_latency_micros > cfg.latency_threshold.as_micros() as f64
                {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                if elapsed > cfg.latency_threshold {
                    self.trip(now);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn close(&mut self) {
        self.state = BreakerState::Closed;
        // A fresh verdict: forget the poisoned scores so the recovered
        // replica is judged on post-recovery behaviour only.
        self.samples = 0;
        self.ewma_latency_micros = 0.0;
        self.ewma_error_rate = 0.0;
        self.probes_in_flight = 0;
        self.probe_successes = 0;
    }

    /// May a fetch be sent to this replica right now? Open breakers move to
    /// HalfOpen once `open_timeout` has elapsed; HalfOpen admits a bounded
    /// number of concurrent probes. Admission of a probe reserves its slot —
    /// the caller must follow up with `record_success`/`record_failure`/
    /// `record_abandon`. Should every verdict be lost anyway (a probe
    /// written off with a dead incarnation), the stale slots are reclaimed
    /// after a further `open_timeout` so the breaker can never wedge
    /// half-open.
    pub fn admit(&mut self, cfg: &BreakerConfig, now: MediaTime) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now - self.opened_at >= cfg.open_timeout {
                    self.state = BreakerState::HalfOpen;
                    self.probes_in_flight = 1;
                    self.probe_successes = 0;
                    self.probed_at = now;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_in_flight < cfg.half_open_probes {
                    self.probes_in_flight += 1;
                    self.probed_at = now;
                    true
                } else if now - self.probed_at >= cfg.open_timeout {
                    self.probes_in_flight = 1;
                    self.probe_successes = 0;
                    self.probed_at = now;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Selection penalty in microseconds: the EWMA latency, plus a large
    /// constant while the breaker is not Closed so probed replicas rank
    /// behind every healthy one.
    pub fn penalty_micros(&self) -> i64 {
        let base = self.ewma_latency_micros as i64;
        match self.state {
            BreakerState::Closed => base,
            _ => base + 10_000_000,
        }
    }
}

/// One observed breaker state change, recorded by [`ReplicaHealthMap`] so
/// the service layer can trace every transition (the chaos harness checks
/// the resulting event stream against the legal state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// The replica whose breaker moved.
    pub node: NodeId,
    /// State before the operation.
    pub from: BreakerState,
    /// State after the operation.
    pub to: BreakerState,
    /// Which operation moved it (`success`, `failure`, `slow_loss`,
    /// `probe`, `reset`).
    pub cause: &'static str,
}

/// Per-replica health map fronting [`crate::ReplicaSelector`]: the service
/// layer records fetch outcomes here and filters/penalizes candidates by
/// breaker verdicts before load/RTT selection.
#[derive(Debug, Clone)]
pub struct ReplicaHealthMap {
    /// Breaker configuration shared by all replicas.
    pub cfg: BreakerConfig,
    nodes: BTreeMap<NodeId, NodeHealth>,
    /// Trips of replicas whose health was since reset (kept so totals
    /// survive node restarts).
    retired_trips: u64,
    /// State changes since the last [`ReplicaHealthMap::take_transitions`].
    pending: Vec<BreakerTransition>,
}

impl ReplicaHealthMap {
    /// An empty map with the given breaker configuration.
    pub fn new(cfg: BreakerConfig) -> Self {
        ReplicaHealthMap {
            cfg,
            nodes: BTreeMap::new(),
            retired_trips: 0,
            pending: Vec::new(),
        }
    }

    fn entry(&mut self, node: NodeId) -> &mut NodeHealth {
        self.nodes.entry(node).or_default()
    }

    /// Run `op` on `node`'s record and log any state change under `cause`.
    fn traced(
        &mut self,
        node: NodeId,
        cause: &'static str,
        op: impl FnOnce(&mut NodeHealth, &BreakerConfig),
    ) {
        let cfg = self.cfg;
        let h = self.entry(node);
        let from = h.state;
        op(h, &cfg);
        let to = h.state;
        if from != to {
            self.pending.push(BreakerTransition {
                node,
                from,
                to,
                cause,
            });
        }
    }

    /// Drain the breaker state changes observed since the last call. The
    /// service layer calls this after each batch of health updates and
    /// emits a trace event per transition.
    pub fn take_transitions(&mut self) -> Vec<BreakerTransition> {
        std::mem::take(&mut self.pending)
    }

    /// Record a successful fetch to `node` with the observed latency.
    pub fn record_success(&mut self, node: NodeId, now: MediaTime, latency: MediaDuration) {
        self.traced(node, "success", |h, cfg| {
            h.record_success(cfg, now, latency);
        });
    }

    /// Record a failed fetch to `node`.
    pub fn record_failure(&mut self, node: NodeId, now: MediaTime) {
        self.traced(node, "failure", |h, cfg| h.record_failure(cfg, now));
    }

    /// Record an abandoned fetch to `node` (no verdict).
    pub fn record_abandon(&mut self, node: NodeId) {
        self.entry(node).record_abandon();
    }

    /// Record a lost hedge race against `node`: a censored latency sample
    /// of at least `elapsed` (see [`NodeHealth::record_slow_loss`]).
    pub fn record_slow_loss(&mut self, node: NodeId, now: MediaTime, elapsed: MediaDuration) {
        self.traced(node, "slow_loss", |h, cfg| {
            h.record_slow_loss(cfg, now, elapsed);
        });
    }

    /// May a fetch be sent to `node` right now? (May transition the node's
    /// breaker Open → HalfOpen and reserves a probe slot — see
    /// [`NodeHealth::admit`].)
    pub fn admit(&mut self, node: NodeId, now: MediaTime) -> bool {
        let mut admitted = false;
        self.traced(node, "probe", |h, cfg| {
            admitted = h.admit(cfg, now);
        });
        admitted
    }

    /// Selection penalty for `node` (0 for unknown nodes).
    pub fn penalty_micros(&self, node: NodeId) -> i64 {
        self.nodes.get(&node).map_or(0, NodeHealth::penalty_micros)
    }

    /// Current breaker state of `node` (Closed for unknown nodes).
    pub fn state(&self, node: NodeId) -> BreakerState {
        self.nodes
            .get(&node)
            .map_or(BreakerState::Closed, |h| h.state)
    }

    /// Forget all health state for `node`: called when the node restarts
    /// with a new incarnation, so stale-epoch scores cannot poison it. The
    /// trip count is folded into the running total first.
    pub fn reset(&mut self, node: NodeId) {
        if let Some(h) = self.nodes.remove(&node) {
            self.retired_trips += h.trips;
            if h.state != BreakerState::Closed {
                self.pending.push(BreakerTransition {
                    node,
                    from: h.state,
                    to: BreakerState::Closed,
                    cause: "reset",
                });
            }
        }
    }

    /// Total breaker trips across all replicas, including reset ones.
    pub fn trips(&self) -> u64 {
        self.retired_trips + self.nodes.values().map(|h| h.trips).sum::<u64>()
    }

    /// Health record of `node`, if any fetch outcome has been recorded.
    pub fn health(&self, node: NodeId) -> Option<&NodeHealth> {
        self.nodes.get(&node)
    }
}

// ---------------------------------------------------------------------------
// Bounded request queue with deadline-aware shedding
// ---------------------------------------------------------------------------

/// One queued request with its shedding metadata.
#[derive(Debug, Clone)]
pub struct QueuedRequest<T> {
    /// The request payload.
    pub item: T,
    /// When it entered the queue.
    pub enqueued_at: MediaTime,
    /// The playout deadline after which serving it is pointless.
    pub deadline: MediaTime,
    /// Pricing class of the requesting session (cheapest shed first).
    pub class: PricingClass,
}

/// Statistics of an [`OverloadQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadQueueStats {
    /// Requests accepted into the queue.
    pub enqueued: u64,
    /// Requests dequeued for service.
    pub served: u64,
    /// Requests shed because their deadline was already unmeetable.
    pub shed_deadline: u64,
    /// Requests shed to bound the queue (oldest-first within the cheapest
    /// class present).
    pub shed_capacity: u64,
}

/// A bounded FIFO request queue with deadline-aware shedding: requests whose
/// playout deadline has passed are dropped eagerly, and when the queue is
/// full the oldest request of the cheapest pricing class present is shed to
/// make room.
#[derive(Debug, Clone)]
pub struct OverloadQueue<T> {
    /// Maximum queued requests.
    pub capacity: usize,
    queue: VecDeque<QueuedRequest<T>>,
    /// Counters.
    pub stats: OverloadQueueStats,
}

impl<T> OverloadQueue<T> {
    /// An empty queue bounded to `capacity` requests.
    pub fn new(capacity: usize) -> Self {
        OverloadQueue {
            capacity: capacity.max(1),
            queue: VecDeque::new(),
            stats: OverloadQueueStats::default(),
        }
    }

    /// Queued requests right now.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True iff nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queueing delay the head request has accumulated (zero when empty).
    pub fn head_delay(&self, now: MediaTime) -> MediaDuration {
        self.queue
            .front()
            .map_or(MediaDuration::ZERO, |r| now - r.enqueued_at)
    }

    /// Drop every request whose deadline has already passed (unmeetable),
    /// returning them oldest-first so the caller can answer each.
    pub fn expire(&mut self, now: MediaTime) -> Vec<QueuedRequest<T>> {
        let mut shed = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].deadline < now {
                shed.push(self.queue.remove(i).unwrap());
            } else {
                i += 1;
            }
        }
        self.stats.shed_deadline += shed.len() as u64;
        shed
    }

    /// Enqueue a request, returning every request shed to admit it: first
    /// deadline-expired entries, then — if the queue is still over capacity —
    /// the oldest entry of the cheapest class present (which may be the new
    /// request itself).
    pub fn push(&mut self, req: QueuedRequest<T>, now: MediaTime) -> Vec<QueuedRequest<T>> {
        let mut shed = self.expire(now);
        self.queue.push_back(req);
        self.stats.enqueued += 1;
        while self.queue.len() > self.capacity {
            let cheapest = self.queue.iter().map(|r| r.class).min().unwrap();
            let victim = self.queue.iter().position(|r| r.class == cheapest).unwrap();
            shed.push(self.queue.remove(victim).unwrap());
            self.stats.shed_capacity += 1;
        }
        shed
    }

    /// Keep only requests whose payload satisfies the predicate (used for
    /// cancellations — removals are not counted as shed).
    pub fn retain(&mut self, f: impl Fn(&T) -> bool) {
        self.queue.retain(|r| f(&r.item));
    }

    /// Dequeue the next request in arrival order.
    pub fn pop(&mut self) -> Option<QueuedRequest<T>> {
        let r = self.queue.pop_front();
        if r.is_some() {
            self.stats.served += 1;
        }
        r
    }
}

// ---------------------------------------------------------------------------
// CoDel-style pressure detector
// ---------------------------------------------------------------------------

/// A CoDel-style queue-delay pressure detector: pressure is declared when
/// the observed delay stays above `target` continuously for at least
/// `interval` — transient bursts pass, standing queues do not.
#[derive(Debug, Clone, Copy)]
pub struct PressureDetector {
    /// The acceptable standing queue delay.
    pub target: MediaDuration,
    /// How long the delay must stay above target before pressure is declared.
    pub interval: MediaDuration,
    first_above: Option<MediaTime>,
}

impl PressureDetector {
    /// A detector with the given delay target and confirmation interval.
    pub fn new(target: MediaDuration, interval: MediaDuration) -> Self {
        PressureDetector {
            target,
            interval,
            first_above: None,
        }
    }

    /// Feed one delay observation taken at `now`.
    pub fn observe(&mut self, now: MediaTime, delay: MediaDuration) {
        if delay < self.target {
            self.first_above = None;
        } else if self.first_above.is_none() {
            self.first_above = Some(now);
        }
    }

    /// True iff the delay has been above target for at least `interval`.
    pub fn overloaded(&self, now: MediaTime) -> bool {
        self.first_above.is_some_and(|t| now - t >= self.interval)
    }
}

// ---------------------------------------------------------------------------
// Retry budget
// ---------------------------------------------------------------------------

/// A retry-budget token bucket: each retransmission spends a token, each
/// acknowledged request refills one. An empty bucket suppresses resends so a
/// reconnect wave against a recovering server is bounded to the budget
/// instead of amplifying into a retry storm.
#[derive(Debug, Clone, Copy)]
pub struct RetryBudget {
    /// Bucket capacity (also the initial fill).
    pub max_tokens: u32,
    tokens: u32,
    /// Retries granted.
    pub spent: u64,
    /// Retries suppressed because the bucket was empty.
    pub suppressed: u64,
}

impl RetryBudget {
    /// A full bucket holding `max_tokens`.
    pub fn new(max_tokens: u32) -> Self {
        RetryBudget {
            max_tokens,
            tokens: max_tokens,
            spent: 0,
            suppressed: 0,
        }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> u32 {
        self.tokens
    }

    /// Spend one token for a retry. Returns false (and counts a suppression)
    /// when the bucket is empty — the caller should skip the resend and only
    /// re-arm its timer.
    pub fn try_spend(&mut self) -> bool {
        if self.tokens > 0 {
            self.tokens -= 1;
            self.spent += 1;
            true
        } else {
            self.suppressed += 1;
            false
        }
    }

    /// A request succeeded (was acknowledged): refill one token.
    pub fn on_success(&mut self) {
        self.tokens = (self.tokens + 1).min(self.max_tokens);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: i64) -> MediaDuration {
        MediaDuration::from_millis(v)
    }
    fn at(v: i64) -> MediaTime {
        MediaTime::from_millis(v)
    }

    #[test]
    fn breaker_trips_on_sustained_latency_and_recovers_via_probes() {
        let cfg = BreakerConfig::default();
        let mut h = NodeHealth::new();
        // Healthy samples keep it closed.
        for i in 0..10 {
            h.record_success(&cfg, at(i * 10), ms(20));
            assert_eq!(h.state, BreakerState::Closed);
        }
        // Sustained slowness trips it.
        let mut t = 100;
        while h.state == BreakerState::Closed {
            h.record_success(&cfg, at(t), ms(800));
            t += 10;
        }
        assert_eq!(h.state, BreakerState::Open);
        assert_eq!(h.trips, 1);
        // Blocked while Open, admitted as a probe after the timeout.
        assert!(!h.admit(&cfg, at(t)));
        let after = at(t) + cfg.open_timeout;
        assert!(h.admit(&cfg, after));
        assert_eq!(h.state, BreakerState::HalfOpen);
        // Fast probes close it again.
        for i in 0..cfg.close_successes {
            if i > 0 {
                assert!(h.admit(&cfg, after));
            }
            h.record_success(&cfg, after, ms(10));
        }
        assert_eq!(h.state, BreakerState::Closed);
    }

    #[test]
    fn breaker_trips_on_error_rate() {
        let cfg = BreakerConfig::default();
        let mut h = NodeHealth::new();
        let mut t = 0;
        while h.state == BreakerState::Closed && t < 1000 {
            h.record_failure(&cfg, at(t));
            t += 10;
        }
        assert_eq!(h.state, BreakerState::Open);
    }

    #[test]
    fn half_open_failure_reopens() {
        let cfg = BreakerConfig::default();
        let mut h = NodeHealth::new();
        for _ in 0..10 {
            h.record_failure(&cfg, at(0));
        }
        assert_eq!(h.state, BreakerState::Open);
        let probe_at = at(0) + cfg.open_timeout;
        assert!(h.admit(&cfg, probe_at));
        h.record_failure(&cfg, probe_at);
        assert_eq!(h.state, BreakerState::Open);
        assert_eq!(h.trips, 2);
    }

    #[test]
    fn half_open_probes_are_bounded() {
        let cfg = BreakerConfig::default();
        let mut h = NodeHealth::new();
        for _ in 0..10 {
            h.record_failure(&cfg, at(0));
        }
        let probe_at = at(0) + cfg.open_timeout;
        let mut admitted = 0;
        for _ in 0..20 {
            if h.admit(&cfg, probe_at) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, cfg.half_open_probes);
        // An abandoned probe releases its slot.
        h.record_abandon();
        assert!(h.admit(&cfg, probe_at));
    }

    #[test]
    fn half_open_stale_probe_slots_are_reclaimed() {
        // If every probe verdict is lost (e.g. the replica's incarnation died
        // with the probes in flight), the breaker must not wedge half-open:
        // after a further open_timeout the slots are reclaimed.
        let cfg = BreakerConfig::default();
        let mut h = NodeHealth::new();
        for _ in 0..10 {
            h.record_failure(&cfg, at(0));
        }
        let t1 = at(0) + cfg.open_timeout;
        for _ in 0..cfg.half_open_probes {
            assert!(h.admit(&cfg, t1));
        }
        assert!(!h.admit(&cfg, t1), "probe slots exhausted");
        // No verdict ever arrives; a full open_timeout later probing resumes.
        let t2 = t1 + cfg.open_timeout;
        assert!(h.admit(&cfg, t2), "stale slots must be reclaimed");
        assert!(h.admit(&cfg, t2));
        assert!(!h.admit(&cfg, t2), "reclaimed probes are bounded again");
    }

    #[test]
    fn health_map_reset_forgets_state_but_keeps_trip_total() {
        let n = NodeId::new(9);
        let mut m = ReplicaHealthMap::new(BreakerConfig::default());
        for _ in 0..10 {
            m.record_failure(n, at(0));
        }
        assert_eq!(m.state(n), BreakerState::Open);
        assert_eq!(m.trips(), 1);
        m.reset(n);
        assert_eq!(m.state(n), BreakerState::Closed);
        assert!(m.admit(n, at(0)));
        assert_eq!(m.trips(), 1, "trip history survives the reset");
        assert_eq!(m.penalty_micros(n), 0);
    }

    #[test]
    fn queue_sheds_expired_deadlines_first() {
        let mut q: OverloadQueue<u32> = OverloadQueue::new(8);
        for i in 0..4 {
            let shed = q.push(
                QueuedRequest {
                    item: i,
                    enqueued_at: at(0),
                    deadline: at(100 + i as i64),
                    class: PricingClass::Standard,
                },
                at(0),
            );
            assert!(shed.is_empty());
        }
        // Two deadlines pass; both are shed on the next push.
        let shed = q.push(
            QueuedRequest {
                item: 9,
                enqueued_at: at(102),
                deadline: at(500),
                class: PricingClass::Standard,
            },
            at(102),
        );
        assert_eq!(shed.iter().map(|r| r.item).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(q.stats.shed_deadline, 2);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn queue_capacity_sheds_oldest_of_cheapest_class() {
        let mut q: OverloadQueue<u32> = OverloadQueue::new(3);
        let classes = [
            PricingClass::Premium,
            PricingClass::Economy,
            PricingClass::Economy,
        ];
        for (i, class) in classes.iter().enumerate() {
            q.push(
                QueuedRequest {
                    item: i as u32,
                    enqueued_at: at(i as i64),
                    deadline: at(1_000),
                    class: *class,
                },
                at(i as i64),
            );
        }
        // Full: a premium push evicts the oldest economy entry (item 1).
        let shed = q.push(
            QueuedRequest {
                item: 3,
                enqueued_at: at(10),
                deadline: at(1_000),
                class: PricingClass::Premium,
            },
            at(10),
        );
        assert_eq!(shed.iter().map(|r| r.item).collect::<Vec<_>>(), [1]);
        assert_eq!(q.stats.shed_capacity, 1);
        // Queue is now [0 Premium, 2 Economy, 3 Premium]: a further economy
        // push evicts the *older* economy entry, not the newcomer...
        let shed = q.push(
            QueuedRequest {
                item: 4,
                enqueued_at: at(11),
                deadline: at(1_000),
                class: PricingClass::Economy,
            },
            at(11),
        );
        assert_eq!(shed.iter().map(|r| r.item).collect::<Vec<_>>(), [2]);
        // ...and once it is the only economy entry left, a premium push
        // sheds the newcomer's own class mate — the newcomer survives only
        // if it outranks something.
        let shed = q.push(
            QueuedRequest {
                item: 5,
                enqueued_at: at(12),
                deadline: at(1_000),
                class: PricingClass::Premium,
            },
            at(12),
        );
        assert_eq!(shed.iter().map(|r| r.item).collect::<Vec<_>>(), [4]);
    }

    #[test]
    fn pressure_needs_sustained_delay() {
        let mut p = PressureDetector::new(ms(20), ms(100));
        p.observe(at(0), ms(50));
        assert!(!p.overloaded(at(0)));
        p.observe(at(60), ms(50));
        assert!(!p.overloaded(at(60)), "above target but not long enough");
        // A dip below target resets the episode.
        p.observe(at(80), ms(5));
        p.observe(at(90), ms(50));
        assert!(!p.overloaded(at(150)));
        p.observe(at(200), ms(50));
        assert!(p.overloaded(at(200)), "90→200 stayed above target");
    }

    #[test]
    fn retry_budget_bounds_a_storm_and_refills_on_success() {
        let mut b = RetryBudget::new(3);
        let mut granted = 0;
        for _ in 0..10 {
            if b.try_spend() {
                granted += 1;
            }
        }
        assert_eq!(granted, 3);
        assert_eq!(b.suppressed, 7);
        b.on_success();
        assert!(b.try_spend());
        assert!(!b.try_spend());
        for _ in 0..100 {
            b.on_success();
        }
        assert_eq!(b.tokens(), b.max_tokens, "refill saturates at capacity");
    }
}

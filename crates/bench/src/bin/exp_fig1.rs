//! FIG1 — exercise every production of the markup-language grammar
//! (paper Fig. 1, BNF) against the hand-written parser, and report a
//! production-coverage table plus parser throughput on a generated corpus.

use hermes_bench::{ExpOpts, Table};
use hermes_core::{DocumentId, ServerId};
use hermes_hml::{parse, scenario_from_markup, serialize};
use std::time::Instant;

/// One grammar production and a witness document exercising it.
fn witnesses() -> Vec<(&'static str, String)> {
    vec![
        ("<Hdocument> (TITLE)", "<TITLE> t </TITLE>".into()),
        ("<HSentence> (empty)", "<TITLE> t </TITLE>".into()),
        ("<Heading1>", "<TITLE>t</TITLE> <H1> h </H1> <TEXT> x </TEXT>".into()),
        ("<Heading2>", "<TITLE>t</TITLE> <H2> h </H2> <TEXT> x </TEXT>".into()),
        ("<Heading3>", "<TITLE>t</TITLE> <H3> h </H3> <TEXT> x </TEXT>".into()),
        ("<Par>", "<TITLE>t</TITLE> <PAR>".into()),
        ("<Separator>", "<TITLE>t</TITLE> <TEXT> a </TEXT> <SEP> <TEXT> b </TEXT>".into()),
        ("<Document>/<Text>", "<TITLE>t</TITLE> <TEXT> some text </TEXT>".into()),
        ("<Image> + <ImgOptions>", "<TITLE>t</TITLE> <IMG> SOURCE=a.jpg STARTIME=1s DURATION=2s HEIGHT=10 WIDTH=20 ID=1 NOTE=\"n\" </IMG>".into()),
        ("<Audio> + <AuOptions>", "<TITLE>t</TITLE> <AU> SOURCE=a.pcm STARTIME=0s DURATION=3s ID=1 </AU>".into()),
        ("<Video> + <ViOptions>", "<TITLE>t</TITLE> <VI> SOURCE=v.mpg STARTIME=0s DURATION=3s ID=1 </VI>".into()),
        ("<Audio_Video> + <SyncOption>", "<TITLE>t</TITLE> <AU_VI> STARTIME=1s STARTIME=1s DURATION=4s SOURCE=a SOURCE=v ID=1 ID=2 </AU_VI>".into()),
        ("<HyperLink> (to_HyperText)", "<TITLE>t</TITLE> <HLINK> TO=doc2 KIND=SEQ </HLINK>".into()),
        ("<HyperLink> (to_OtherHost)", "<TITLE>t</TITLE> <HLINK> TO=doc2 HOST=srv3 KIND=EXP </HLINK>".into()),
        ("<TimeOption> (AT link)", "<TITLE>t</TITLE> <HLINK> AT=5s TO=doc2 </HLINK>".into()),
        ("<Note>", "<TITLE>t</TITLE> <IMG> SOURCE=a NOTE=\"annotated\" </IMG>".into()),
        ("styles B/I/U", "<TITLE>t</TITLE> <TEXT> <B> b </B> <I> i </I> <U> u </U> </TEXT>".into()),
        ("full Fig.2 scenario", hermes_hml::FIGURE2_MARKUP.to_string()),
    ]
}

fn big_corpus(docs: usize) -> Vec<String> {
    (0..docs)
        .map(|i| {
            let mut m = format!("<TITLE> Document {i} </TITLE>\n<H1> Section </H1>\n");
            for j in 0..10 {
                m.push_str(&format!(
                    "<TEXT> paragraph {j} with <B> bold </B> content </TEXT>\n<PAR>\n\
                     <IMG> SOURCE=figs/{i}-{j}.jpg STARTIME={j}s DURATION=2s ID={id} </IMG>\n",
                    id = j * 2 + 1
                ));
            }
            m.push_str("<AU_VI> STARTIME=20s DURATION=10s SOURCE=a.pcm SOURCE=v.mpg ID=100 ID=101 </AU_VI>\n");
            m.push_str("<HLINK> AT=30s TO=doc2 KIND=SEQ </HLINK>\n");
            m
        })
        .collect()
}

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let mut t = Table::new(vec![
        "production",
        "accepted",
        "round-trips",
        "lowers to scenario",
    ]);
    let mut all_ok = true;
    for (name, src) in witnesses() {
        let parsed = parse(&src);
        let accepted = parsed.is_ok();
        let (rt, lowered) = match &parsed {
            Ok(doc) => {
                let rt = parse(&serialize(doc)).as_ref() == Ok(doc);
                let low = scenario_from_markup(&src, DocumentId::new(1), ServerId::new(0)).is_ok();
                (rt, low)
            }
            Err(_) => (false, false),
        };
        all_ok &= accepted && rt && lowered;
        t.row(vec![
            name.to_string(),
            tick(accepted),
            tick(rt),
            tick(lowered),
        ]);
    }
    out.table("Fig. 1 — grammar production coverage", &t);

    // Throughput on a generated corpus.
    let corpus = big_corpus(200);
    let bytes: usize = corpus.iter().map(|s| s.len()).sum();
    let start = Instant::now();
    let mut parsed = 0;
    for src in &corpus {
        let doc = parse(src).expect("corpus parses");
        parsed += doc.media_count();
    }
    let dt = start.elapsed();
    out.line(&format!(
        "corpus: {} documents / {} KiB parsed in {:?} ({:.1} MiB/s), {} media elements",
        corpus.len(),
        bytes / 1024,
        dt,
        bytes as f64 / 1048576.0 / dt.as_secs_f64(),
        parsed
    ));
    if !all_ok {
        std::process::exit(1);
    }
    out.line("all productions accepted, round-tripped and lowered ✓");
}

fn tick(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "NO".into()
    }
}

//! Media frames and frame sources.
//!
//! A [`MediaFrame`] is the unit everything downstream operates on: the media
//! servers emit frames according to the flow scenario, RTP packetizes them,
//! the client buffers stage them and the playout engine presents them before
//! their deadline.

use crate::codec::CodecModel;
use hermes_core::{ComponentId, Encoding, GradeLevel, MediaDuration, MediaTime};
use serde::{Deserialize, Serialize};

/// One frame / audio block / image slice of a media stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaFrame {
    /// The component this frame belongs to (demultiplexing key).
    pub component: ComponentId,
    /// Frame sequence number within the stream, from 0.
    pub seq: u64,
    /// Presentation timestamp relative to the *stream's own start* (the
    /// client adds the component's `t_i` to get the absolute deadline).
    pub pts: MediaTime,
    /// Payload size in bytes (headers not included).
    pub size: u32,
    /// Key frame (independently decodable)?
    pub key: bool,
    /// The quality level this frame was encoded at.
    pub level: GradeLevel,
    /// True for the final frame of the stream.
    pub last: bool,
}

/// A deterministic generator of the frame sequence for one stored media
/// object at one quality level. Seeking and level switches are supported
/// mid-stream (the quality converter re-targets the generator).
#[derive(Debug, Clone)]
pub struct FrameSource {
    component: ComponentId,
    model: CodecModel,
    seed: u64,
    duration: MediaDuration,
    level: GradeLevel,
    next_seq: u64,
    /// Presentation time of the next frame. Tracked incrementally so that a
    /// mid-stream level switch (which may change the frame period) keeps the
    /// timeline continuous instead of rescaling history.
    next_pts: MediaTime,
}

impl FrameSource {
    /// Create a source for `component`, encoding `encoding`, with content
    /// seed `seed`, producing `duration` worth of frames.
    pub fn new(
        component: ComponentId,
        encoding: Encoding,
        seed: u64,
        duration: MediaDuration,
    ) -> Self {
        FrameSource {
            component,
            model: CodecModel::for_encoding(encoding),
            seed,
            duration,
            level: GradeLevel::NOMINAL,
            next_seq: 0,
            next_pts: MediaTime::ZERO,
        }
    }

    /// The codec model in use.
    pub fn model(&self) -> &CodecModel {
        &self.model
    }
    /// Current quality level.
    pub fn level(&self) -> GradeLevel {
        self.level
    }
    /// Switch quality level; takes effect from the next frame ("the Media
    /// Stream Quality Converter gracefully degrades (upgrades) the stream").
    pub fn set_level(&mut self, level: GradeLevel) {
        self.level = GradeLevel(level.0.min(self.model.max_level().0));
    }

    /// Remaining frames at the *current* level's rate (level switches change
    /// the rate, so this is an estimate until the stream ends).
    pub fn frames_remaining(&self) -> u64 {
        let period = self.model.level(self.level).frame_period();
        let left = self.duration - (self.next_pts - MediaTime::ZERO);
        (left.as_micros().max(0) / period.as_micros()) as u64
    }

    /// Presentation timestamp of the next frame.
    pub fn next_pts(&self) -> MediaTime {
        self.next_pts
    }

    /// Global sequence number of the next frame (segment addressing: the
    /// media tier fetches the segment holding this index).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Produce the next frame, or `None` when the stream is exhausted.
    pub fn next_frame(&mut self) -> Option<MediaFrame> {
        let pts = self.next_pts;
        if (pts - MediaTime::ZERO) >= self.duration {
            return None;
        }
        let period = self.model.level(self.level).frame_period();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.next_pts = pts + period;
        let size = self.model.frame_size(self.seed, seq, self.level);
        let last = ((pts + period) - MediaTime::ZERO) >= self.duration;
        Some(MediaFrame {
            component: self.component,
            seq,
            pts,
            size,
            key: self.model.is_key_frame(seq),
            level: self.level,
            last,
        })
    }

    /// Collect the entire remaining stream (tests/workloads).
    pub fn collect_all(mut self) -> Vec<MediaFrame> {
        let mut v = Vec::new();
        while let Some(f) = self.next_frame() {
            v.push(f);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(enc: Encoding, secs: i64) -> FrameSource {
        FrameSource::new(ComponentId::new(1), enc, 42, MediaDuration::from_secs(secs))
    }

    #[test]
    fn frame_count_matches_rate_and_duration() {
        let frames = src(Encoding::Mpeg, 8).collect_all();
        assert_eq!(frames.len(), 200); // 25 fps × 8 s
        assert!(frames.last().unwrap().last);
        assert!(!frames[0].last);
        assert_eq!(frames[0].seq, 0);
        assert_eq!(frames[199].seq, 199);
    }

    #[test]
    fn pts_monotone_and_periodic() {
        let frames = src(Encoding::Pcm, 2).collect_all();
        assert_eq!(frames.len(), 100); // 50 blocks/s × 2 s
        for w in frames.windows(2) {
            assert_eq!(w[1].pts - w[0].pts, MediaDuration::from_millis(20));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = src(Encoding::Mpeg, 4).collect_all();
        let b = src(Encoding::Mpeg, 4).collect_all();
        assert_eq!(a, b);
    }

    #[test]
    fn level_switch_mid_stream() {
        let mut s = src(Encoding::Mpeg, 8);
        let mut sizes_hi = Vec::new();
        for _ in 0..50 {
            sizes_hi.push(s.next_frame().unwrap().size);
        }
        s.set_level(GradeLevel(2));
        let mut sizes_lo = Vec::new();
        for _ in 0..50 {
            let f = s.next_frame().unwrap();
            assert_eq!(f.level, GradeLevel(2));
            sizes_lo.push(f.size);
        }
        let hi: u64 = sizes_hi.iter().map(|&x| x as u64).sum();
        let lo: u64 = sizes_lo.iter().map(|&x| x as u64).sum();
        assert!(hi > lo * 2, "hi {hi} lo {lo}");
    }

    #[test]
    fn level_switch_keeps_pts_continuous() {
        let mut s = src(Encoding::Mpeg, 8);
        for _ in 0..100 {
            s.next_frame().unwrap(); // 4 s at 25 fps
        }
        assert_eq!(s.next_pts(), MediaTime::from_secs(4));
        s.set_level(GradeLevel(4)); // 10 fps
        let f = s.next_frame().unwrap();
        assert_eq!(f.pts, MediaTime::from_secs(4)); // no jump
        let g = s.next_frame().unwrap();
        assert_eq!(g.pts - f.pts, MediaDuration::from_millis(100)); // new period
    }

    #[test]
    fn set_level_clamps_to_ladder() {
        let mut s = src(Encoding::Gif, 1);
        s.set_level(GradeLevel(9));
        assert_eq!(s.level(), GradeLevel(1));
    }

    #[test]
    fn image_stream_is_single_frame() {
        let frames = src(Encoding::Jpeg, 1).collect_all();
        assert_eq!(frames.len(), 1);
        assert!(frames[0].last && frames[0].key);
    }

    #[test]
    fn key_frame_cadence_in_output() {
        let frames = src(Encoding::Mpeg, 2).collect_all();
        let keys: Vec<u64> = frames.iter().filter(|f| f.key).map(|f| f.seq).collect();
        assert_eq!(keys, vec![0, 12, 24, 36, 48]);
    }
}

//! The flight recorder: a bounded ring of recent events per node, dumped
//! automatically when an anomaly fires (playout gap, breaker trip,
//! media-node failover, session drop) so failures ship their own context.
//!
//! Every emitted event — including `Debug`-severity records that never
//! reach the main trace log — lands in its node's ring. A dump snapshots
//! the ring at that instant; the ring itself keeps rolling, so back-to-back
//! anomalies each carry the window that preceded *them*.

use crate::event::{Event, Labels};
use hermes_core::MediaTime;
use std::collections::{BTreeMap, VecDeque};

/// Default events retained per node.
pub const DEFAULT_RING_CAP: usize = 64;
/// Default cap on retained dumps (later anomalies stop dumping — by then
/// the first few windows have told the story, and memory stays bounded).
pub const DEFAULT_MAX_DUMPS: usize = 32;

/// One anomaly dump: the triggering context plus the preceding window of
/// the node's events, oldest first.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// When the anomaly fired.
    pub at: MediaTime,
    /// The node whose ring was dumped.
    pub node: u64,
    /// Static anomaly name (`playout_gap`, `breaker_trip`, …).
    pub reason: &'static str,
    /// Labels of the triggering condition.
    pub labels: Labels,
    /// The ring contents at dump time, oldest first.
    pub events: Vec<Event>,
}

/// Per-node bounded rings plus the dumps collected so far.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    max_dumps: usize,
    rings: BTreeMap<u64, VecDeque<Event>>,
    dumps: Vec<FlightDump>,
    /// Anomalies seen after the dump cap was reached (still counted).
    pub suppressed: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_RING_CAP, DEFAULT_MAX_DUMPS)
    }
}

impl FlightRecorder {
    /// Recorder with explicit ring capacity and dump cap.
    pub fn new(cap: usize, max_dumps: usize) -> Self {
        assert!(cap > 0);
        FlightRecorder {
            cap,
            max_dumps,
            rings: BTreeMap::new(),
            dumps: Vec::new(),
            suppressed: 0,
        }
    }

    /// Append an event to its node's ring, evicting the oldest past `cap`.
    pub fn record(&mut self, ev: Event) {
        let ring = self.rings.entry(ev.node).or_default();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Snapshot `node`'s ring as an anomaly dump.
    pub fn dump(&mut self, at: MediaTime, node: u64, reason: &'static str, labels: Labels) {
        if self.dumps.len() >= self.max_dumps {
            self.suppressed += 1;
            return;
        }
        let events: Vec<Event> = self
            .rings
            .get(&node)
            .map(|r| r.iter().copied().collect())
            .unwrap_or_default();
        self.dumps.push(FlightDump {
            at,
            node,
            reason,
            labels,
            events,
        });
    }

    /// Dumps collected so far, in trigger order.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Current ring length of a node (test/diagnostic hook).
    pub fn ring_len(&self, node: u64) -> usize {
        self.rings.get(&node).map(|r| r.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Severity;

    fn ev(at: i64, node: u64, seq: u64, name: &'static str) -> Event {
        Event {
            at: MediaTime::from_millis(at),
            seq,
            node,
            severity: Severity::Debug,
            name,
            labels: Labels::NONE,
            value: 0,
        }
    }

    #[test]
    fn ring_is_bounded_and_dump_snapshots_it() {
        let mut f = FlightRecorder::new(3, 8);
        for i in 0..5 {
            f.record(ev(i, 1, i as u64, "tick"));
        }
        assert_eq!(f.ring_len(1), 3);
        f.dump(
            MediaTime::from_millis(9),
            1,
            "playout_gap",
            Labels::session(7),
        );
        let d = &f.dumps()[0];
        assert_eq!(d.reason, "playout_gap");
        // Oldest two were evicted; the window holds ticks 2..5.
        let ats: Vec<i64> = d.events.iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(ats, vec![2, 3, 4]);
        // The ring keeps rolling after a dump.
        f.record(ev(10, 1, 9, "tick"));
        assert_eq!(f.ring_len(1), 3);
    }

    #[test]
    fn rings_are_per_node_and_dump_cap_holds() {
        let mut f = FlightRecorder::new(4, 1);
        f.record(ev(1, 1, 0, "a"));
        f.record(ev(2, 2, 1, "b"));
        f.dump(MediaTime::from_millis(3), 2, "breaker_trip", Labels::NONE);
        assert_eq!(f.dumps()[0].events.len(), 1);
        assert_eq!(f.dumps()[0].events[0].name, "b");
        f.dump(MediaTime::from_millis(4), 1, "breaker_trip", Labels::NONE);
        assert_eq!(f.dumps().len(), 1);
        assert_eq!(f.suppressed, 1);
    }

    #[test]
    fn dump_of_quiet_node_is_empty() {
        let mut f = FlightRecorder::default();
        f.dump(MediaTime::ZERO, 42, "session_drop", Labels::NONE);
        assert!(f.dumps()[0].events.is_empty());
    }
}

//! The multimedia (Hermes) server actor: session management, document
//! delivery, media-server transmission loops, QoS feedback handling,
//! distributed search and the mail service — everything on the left half of
//! paper Fig. 3, driven by simulator messages and timers.

use crate::protocol::{MailMessage, SearchHit, ServiceMsg};
use crate::timers;
use hermes_core::{
    ComponentId, DocumentId, GradeDecision, GradeLevel, GradingHysteresis, GradingOrder,
    MediaDuration, MediaKind, MediaTime, NodeId, PresentationFloor, PricingClass, ServerId,
    SessionId, UserId,
};
use hermes_media::{CodecModel, FrameSource};
use hermes_rtp::RtpSender;
use hermes_server::{
    compute_flow_scenario, AccountsDb, AdmissionController, AdmissionDecision, Charge,
    ConnectionRequest, FlowConfig, FlowPlan, MultimediaDb, PathCondition, ServerQosManager,
};
use hermes_simnet::SimApi;
use std::collections::BTreeMap;

/// One active outgoing media stream of a session.
#[derive(Debug)]
pub struct StreamTx {
    /// The transmission plan.
    pub plan: FlowPlan,
    /// The frame generator (owned by the media server).
    pub source: FrameSource,
    /// The RTP sender session.
    pub sender: RtpSender,
    /// Stream finished transmitting naturally.
    pub done: bool,
    /// Stream stopped by the grading engine.
    pub stopped: bool,
    /// Frames sent so far.
    pub frames_sent: u64,
    /// Payload bytes sent so far.
    pub bytes_sent: u64,
}

/// One client session's server-side state.
#[derive(Debug)]
pub struct SessionState {
    /// The client's node.
    pub client: NodeId,
    /// The authenticated user, once known.
    pub user: Option<UserId>,
    /// Pricing contract.
    pub class: PricingClass,
    /// The QoS manager/grading engine for this session's streams.
    pub qos: ServerQosManager,
    /// Active media transmissions by component.
    pub streams: BTreeMap<ComponentId, StreamTx>,
    /// The document being delivered.
    pub current_doc: Option<DocumentId>,
    /// Paused by the user.
    pub paused: bool,
    /// Suspended pending migration.
    pub suspended: bool,
    /// Connect time (for duration pricing).
    pub connected_at: MediaTime,
}

/// A distributed search in progress.
#[derive(Debug)]
struct PendingQuery {
    session: SessionId,
    client: NodeId,
    hits: Vec<SearchHit>,
    awaiting: usize,
}

/// Configuration of a server actor.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Flow-scheduler lead configuration.
    pub flow: FlowConfig,
    /// Grading order policy (video-first per the paper).
    pub grading_order: GradingOrder,
    /// Grading hysteresis.
    pub hysteresis: GradingHysteresis,
    /// Presentation floors applied to admitted streams.
    pub floor: PresentationFloor,
    /// Grace period for suspended connections.
    pub suspend_grace: MediaDuration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            flow: FlowConfig::default(),
            grading_order: GradingOrder::default(),
            hysteresis: GradingHysteresis::default(),
            floor: PresentationFloor::default(),
            suspend_grace: MediaDuration::from_secs(30),
        }
    }
}

/// The multimedia server actor.
pub struct ServerActor {
    /// The node this server runs on.
    pub node: NodeId,
    /// The server's logical id.
    pub server_id: ServerId,
    /// Document + media database.
    pub db: MultimediaDb,
    /// Subscribers and pricing.
    pub accounts: AccountsDb,
    /// Admission control.
    pub admission: AdmissionController,
    /// Configuration.
    pub cfg: ServerConfig,
    /// Live sessions.
    pub sessions: BTreeMap<SessionId, SessionState>,
    next_session: u64,
    /// Other servers (for search fan-out), set by the world builder.
    pub peers: Vec<NodeId>,
    /// Tutor / user mailboxes by address.
    pub mailboxes: BTreeMap<String, Vec<MailMessage>>,
    /// Per-user document annotations (§5).
    pub annotations: BTreeMap<(UserId, DocumentId), Vec<String>>,
    queries: BTreeMap<u64, PendingQuery>,
    /// Subscription forms processed here that the world must replicate.
    pub pending_replications: Vec<(UserId, hermes_server::SubscriptionForm)>,
}

impl ServerActor {
    /// Create a server actor for a node.
    pub fn new(node: NodeId, server_id: ServerId, cfg: ServerConfig) -> Self {
        ServerActor {
            node,
            server_id,
            db: MultimediaDb::new(server_id),
            accounts: AccountsDb::new(),
            admission: AdmissionController::new(),
            cfg,
            sessions: BTreeMap::new(),
            next_session: 1,
            peers: Vec::new(),
            mailboxes: BTreeMap::new(),
            annotations: BTreeMap::new(),
            queries: BTreeMap::new(),
            pending_replications: Vec::new(),
        }
    }

    /// Handle an incoming message addressed to this server.
    pub fn on_message(&mut self, api: &mut SimApi<'_, ServiceMsg>, from: NodeId, msg: ServiceMsg) {
        match msg {
            ServiceMsg::Connect { user, class } => self.on_connect(api, from, user, class),
            ServiceMsg::Subscribe { session, form } => self.on_subscribe(api, session, form),
            ServiceMsg::DocRequest { session, document } => {
                self.on_doc_request(api, session, document)
            }
            ServiceMsg::Feedback {
                session,
                measurements,
                ..
            } => self.on_feedback(api, session, &measurements),
            ServiceMsg::Pause { session } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    s.paused = true;
                }
            }
            ServiceMsg::Resume { session } => self.on_resume(api, session),
            ServiceMsg::DisableStream { session, component } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    if let Some(tx) = s.streams.get_mut(&component) {
                        tx.stopped = true;
                    }
                }
            }
            ServiceMsg::SuspendConnection { session } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    s.suspended = true;
                    s.paused = true;
                    api.set_timer(
                        self.node,
                        self.cfg.suspend_grace,
                        timers::TK_GRACE,
                        session.raw(),
                    );
                }
            }
            ServiceMsg::ResumeSuspended { session } => {
                if let Some(s) = self.sessions.get_mut(&session) {
                    if s.suspended {
                        s.suspended = false;
                        s.paused = false;
                        let topics = self.db.topics().to_vec();
                        let client = s.client;
                        api.send_reliable(
                            self.node,
                            client,
                            ServiceMsg::TopicList { session, topics },
                        );
                    }
                }
            }
            ServiceMsg::Disconnect { session } => self.on_disconnect(api, session),
            ServiceMsg::SearchRequest {
                session,
                token,
                query,
            } => self.on_search_request(api, session, token, query),
            ServiceMsg::SearchFanout {
                query,
                token,
                origin,
            } => {
                let hits = self.local_hits(&token);
                api.send_reliable(self.node, origin, ServiceMsg::SearchPartial { query, hits });
            }
            ServiceMsg::SearchPartial { query, hits } => self.on_search_partial(api, query, hits),
            ServiceMsg::Annotate {
                session,
                document,
                text,
            } => {
                if let Some(user) = self.sessions.get(&session).and_then(|s| s.user) {
                    self.annotations
                        .entry((user, document))
                        .or_default()
                        .push(text);
                }
            }
            ServiceMsg::AnnotationsFetch { session, document } => {
                if let Some(sess) = self.sessions.get(&session) {
                    if let Some(user) = sess.user {
                        let notes = self
                            .annotations
                            .get(&(user, document))
                            .cloned()
                            .unwrap_or_default();
                        api.send_reliable(
                            self.node,
                            sess.client,
                            ServiceMsg::Annotations { document, notes },
                        );
                    }
                }
            }
            ServiceMsg::MailSend { mail } => {
                self.mailboxes
                    .entry(mail.to.clone())
                    .or_default()
                    .push(mail);
            }
            ServiceMsg::MailFetch { address } => {
                let messages = self.mailboxes.get(&address).cloned().unwrap_or_default();
                api.send_reliable(self.node, from, ServiceMsg::MailBox { messages });
            }
            _ => { /* messages addressed to clients are ignored here */ }
        }
    }

    /// Handle a timer addressed to this server.
    pub fn on_timer(&mut self, api: &mut SimApi<'_, ServiceMsg>, key: u64, payload: u64) {
        match key {
            timers::TK_STREAM_START => {
                let (session, component) = timers::unpack(payload);
                self.start_stream(api, session, component);
            }
            timers::TK_FRAME => {
                let (session, component) = timers::unpack(payload);
                self.send_frame(api, session, component);
            }
            timers::TK_GRACE => {
                let session = SessionId::new(payload);
                let expired = self
                    .sessions
                    .get(&session)
                    .map(|s| s.suspended)
                    .unwrap_or(false);
                if expired {
                    let client = self.sessions[&session].client;
                    self.teardown_session(api, session);
                    api.send_reliable(self.node, client, ServiceMsg::SuspendExpired { session });
                }
            }
            _ => {}
        }
    }

    fn on_connect(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        from: NodeId,
        user: Option<UserId>,
        class: PricingClass,
    ) {
        let session = SessionId::new(self.next_session);
        self.next_session += 1;
        let authorized = user
            .map(|u| self.accounts.is_authorized(u))
            .unwrap_or(false);
        let now = api.now();
        self.sessions.insert(
            session,
            SessionState {
                client: from,
                user: if authorized { user } else { None },
                class,
                qos: ServerQosManager::new(self.cfg.grading_order, self.cfg.hysteresis),
                streams: BTreeMap::new(),
                current_doc: None,
                paused: false,
                suspended: false,
                connected_at: now,
            },
        );
        if authorized {
            let u = user.unwrap();
            self.accounts.record_login(u, now);
            self.accounts.charge(u, Charge::Connection);
        }
        api.send_reliable(
            self.node,
            from,
            ServiceMsg::ConnectAck {
                session,
                must_subscribe: !authorized,
            },
        );
        if authorized {
            let topics = self.db.topics().to_vec();
            api.send_reliable(self.node, from, ServiceMsg::TopicList { session, topics });
        }
    }

    fn on_subscribe(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        form: hermes_server::SubscriptionForm,
    ) {
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        let user = self.accounts.subscribe(form.clone());
        s.user = Some(user);
        s.class = form.class;
        let client = s.client;
        self.accounts.record_login(user, api.now());
        self.accounts.charge(user, Charge::Connection);
        // The world replicates the form to every other server (§5).
        self.pending_replications.push((user, form));
        api.send_reliable(
            self.node,
            client,
            ServiceMsg::SubscribeAck { session, user },
        );
        let topics = self.db.topics().to_vec();
        api.send_reliable(self.node, client, ServiceMsg::TopicList { session, topics });
    }

    fn path_condition(&self, api: &SimApi<'_, ServiceMsg>, client: NodeId) -> PathCondition {
        let now = api.now();
        let net = api.net();
        let links = net.path_links(self.node, client).unwrap_or_default();
        let capacity = links
            .iter()
            .filter_map(|(a, b)| net.link(*a, *b))
            .map(|l| l.spec.bandwidth_bps)
            .min()
            .unwrap_or(0);
        let free = net.path_free_bandwidth(self.node, client, now).unwrap_or(0);
        let prop: i64 = links
            .iter()
            .filter_map(|(a, b)| net.link(*a, *b))
            .map(|l| l.spec.propagation.as_micros())
            .sum();
        PathCondition {
            capacity_bps: capacity,
            committed_bps: capacity.saturating_sub(free),
            rtt: MediaDuration::from_micros(prop * 2 + 2_000),
        }
    }

    fn on_doc_request(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        document: DocumentId,
    ) {
        let Some(s) = self.sessions.get(&session) else {
            return;
        };
        let client = s.client;
        let class = s.class;
        let user = s.user;
        let doc = match self.db.document(document) {
            Ok(d) => d,
            Err(e) => {
                api.send_reliable(
                    self.node,
                    client,
                    ServiceMsg::DocError {
                        session,
                        reason: e.to_string(),
                    },
                );
                return;
            }
        };
        let markup = doc.markup.clone();
        let scenario = doc.scenario.clone();
        let flow = compute_flow_scenario(&scenario, self.cfg.flow);

        // Admission: evaluate the aggregate continuous bandwidth against the
        // path to this client, weighted by the pricing contract.
        let path = self.path_condition(api, client);
        let mut requirement =
            hermes_core::QosRequirement::continuous(flow.aggregate_bandwidth_bps(), 300, 0.05);
        requirement.bandwidth_bps = flow.aggregate_bandwidth_bps();
        let request = ConnectionRequest {
            session,
            class,
            requirement,
        };
        // Release any previous document's reservation first.
        if let Some(conn) = self.admission.release(session) {
            api.net_mut().release(conn);
        }
        let (decision, conn) = self.admission.evaluate(&request, path);
        match decision {
            AdmissionDecision::Reject { reason } => {
                api.send_reliable(self.node, client, ServiceMsg::DocError { session, reason });
                return;
            }
            AdmissionDecision::Admit { reserved_bps } => {
                let conn = conn.expect("admit without connection id");
                if !api.net_mut().reserve(conn, self.node, client, reserved_bps) {
                    self.admission.release(session);
                    api.send_reliable(
                        self.node,
                        client,
                        ServiceMsg::DocError {
                            session,
                            reason: "reservation failed on path".into(),
                        },
                    );
                    return;
                }
            }
        }

        if let Some(u) = user {
            self.accounts.record_retrieval(u, document);
            self.accounts.charge(u, Charge::Retrieval(document));
        }

        // Tear down any previous document's streams.
        let s = self.sessions.get_mut(&session).unwrap();
        s.streams.clear();
        s.qos = ServerQosManager::new(self.cfg.grading_order, self.cfg.hysteresis);
        s.current_doc = Some(document);
        s.paused = false;

        // Ship the presentation scenario.
        api.send_reliable(
            self.node,
            client,
            ServiceMsg::ScenarioResponse {
                session,
                document,
                markup,
                lead_micros: flow.lead.as_micros(),
            },
        );

        // Activate the media servers: discrete media ship directly at their
        // send start; continuous media get a transmission loop.
        let floor = self.cfg.floor;
        let now = api.now();
        for plan in &flow.plans {
            let delay = (plan.send_start - MediaTime::ZERO).max(MediaDuration::ZERO);
            if plan.kind.is_continuous() {
                let model = CodecModel::for_encoding(plan.encoding);
                let stream_floor = match plan.kind {
                    MediaKind::Audio => GradeLevel(floor.audio_floor),
                    _ => GradeLevel(floor.video_floor),
                };
                let s = self.sessions.get_mut(&session).unwrap();
                s.qos
                    .register(plan.component, model, stream_floor, plan.requirement);
                let object = self.db.store(plan.kind).get(&plan.source.object).cloned();
                let Some(object) = object else {
                    api.send_reliable(
                        self.node,
                        client,
                        ServiceMsg::DocError {
                            session,
                            reason: format!("media object '{}' missing", plan.source.object),
                        },
                    );
                    continue;
                };
                let source = object.open(plan.component, plan.duration);
                let ssrc = ((session.raw() as u32) << 16) ^ plan.component.raw() as u32;
                let s = self.sessions.get_mut(&session).unwrap();
                s.streams.insert(
                    plan.component,
                    StreamTx {
                        plan: plan.clone(),
                        source,
                        sender: RtpSender::new(ssrc, plan.encoding),
                        done: false,
                        stopped: false,
                        frames_sent: 0,
                        bytes_sent: 0,
                    },
                );
                api.set_timer(
                    self.node,
                    delay,
                    timers::TK_STREAM_START,
                    timers::pack(session, plan.component),
                );
            } else {
                // Discrete media: a single object over the reliable path at
                // its send start.
                let size = self
                    .db
                    .store(plan.kind)
                    .get(&plan.source.object)
                    .map(|o| {
                        o.open(plan.component, plan.duration)
                            .next_frame()
                            .map(|f| f.size)
                            .unwrap_or(0)
                    })
                    .unwrap_or_else(|| {
                        CodecModel::for_encoding(plan.encoding)
                            .level(GradeLevel::NOMINAL)
                            .mean_frame_bytes
                    });
                let component = plan.component;
                api.set_timer(
                    self.node,
                    delay,
                    timers::TK_DISCRETE,
                    timers::pack(session, component),
                );
                // Stash the size in the session for the timer to pick up.
                let s = self.sessions.get_mut(&session).unwrap();
                s.streams.insert(
                    component,
                    StreamTx {
                        plan: plan.clone(),
                        source: FrameSource::new(
                            component,
                            plan.encoding,
                            size as u64,
                            plan.duration.max(MediaDuration::from_millis(1)),
                        ),
                        sender: RtpSender::new(0, plan.encoding),
                        done: false,
                        stopped: false,
                        frames_sent: 0,
                        bytes_sent: 0,
                    },
                );
            }
        }
        let _ = now;
    }

    fn start_stream(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        component: ComponentId,
    ) {
        // The first frame goes out immediately; the chain continues in
        // send_frame.
        self.send_frame(api, session, component);
    }

    /// Send one discrete object (timer TK_DISCRETE).
    pub(crate) fn send_discrete(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        component: ComponentId,
    ) {
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        if s.paused || s.suspended {
            // Retry after a pause-poll interval.
            api.set_timer(
                self.node,
                MediaDuration::from_millis(200),
                timers::TK_DISCRETE,
                timers::pack(session, component),
            );
            return;
        }
        let client = s.client;
        let Some(tx) = s.streams.get_mut(&component) else {
            return;
        };
        if tx.done || tx.stopped {
            return;
        }
        let total = tx
            .source
            .clone()
            .next_frame()
            .map(|f| f.size)
            .unwrap_or(10_000);
        tx.done = true;
        tx.frames_sent = 1;
        tx.bytes_sent = total as u64;
        let now = api.now();
        // Segment to MTU-sized chunks, as TCP would.
        const SEGMENT: u32 = 1_400;
        let mut remaining = total;
        loop {
            let size = remaining.min(SEGMENT);
            remaining -= size;
            let last = remaining == 0;
            api.send_reliable(
                self.node,
                client,
                ServiceMsg::DiscreteData {
                    session,
                    component,
                    size,
                    total,
                    last,
                    sent_at: now,
                },
            );
            if last {
                break;
            }
        }
    }

    fn send_frame(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        component: ComponentId,
    ) {
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        if s.suspended {
            return; // resumes re-arm the chain
        }
        if s.paused {
            // Poll until resumed (resume also re-arms immediately).
            api.set_timer(
                self.node,
                MediaDuration::from_millis(100),
                timers::TK_FRAME,
                timers::pack(session, component),
            );
            return;
        }
        let client = s.client;
        let Some(tx) = s.streams.get_mut(&component) else {
            return;
        };
        if tx.done || tx.stopped {
            return;
        }
        match tx.source.next_frame() {
            Some(frame) => {
                tx.frames_sent += 1;
                tx.bytes_sent += frame.size as u64;
                let now = api.now();
                for packet in tx.sender.packetize(&frame) {
                    api.send(
                        self.node,
                        client,
                        ServiceMsg::RtpData {
                            session,
                            component,
                            packet,
                            sent_at: now,
                        },
                    );
                }
                // Periodic RTCP sender report (RFC 3550): every 64 frames.
                if tx.frames_sent % 64 == 1 {
                    let sr = tx.sender.sender_report(now);
                    api.send(
                        self.node,
                        client,
                        ServiceMsg::RtcpSenderReport {
                            session,
                            component,
                            packet: sr,
                        },
                    );
                }
                let period = tx.source.model().level(tx.source.level()).frame_period();
                api.set_timer(
                    self.node,
                    period,
                    timers::TK_FRAME,
                    timers::pack(session, component),
                );
            }
            None => {
                tx.done = true;
            }
        }
    }

    fn on_feedback(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        measurements: &[(ComponentId, hermes_core::QosMeasurement)],
    ) {
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        let client = s.client;
        let actions = s.qos.on_feedback(measurements);
        for act in actions {
            if let Some(tx) = s.streams.get_mut(&act.component) {
                match act.decision {
                    GradeDecision::Degrade | GradeDecision::Upgrade => {
                        tx.source.set_level(act.new_level);
                        if tx.stopped && !act.stopped {
                            // Restarted after a stop: re-arm the chain.
                            tx.stopped = false;
                            api.set_timer(
                                self.node,
                                MediaDuration::ZERO,
                                timers::TK_FRAME,
                                timers::pack(session, act.component),
                            );
                        }
                        api.send_reliable(
                            self.node,
                            client,
                            ServiceMsg::StreamRegraded {
                                session,
                                component: act.component,
                                level: act.new_level.0,
                            },
                        );
                    }
                    GradeDecision::Stop => {
                        tx.stopped = true;
                        api.send_reliable(
                            self.node,
                            client,
                            ServiceMsg::StreamStopped {
                                session,
                                component: act.component,
                            },
                        );
                    }
                    GradeDecision::Hold => {}
                }
            }
        }
    }

    fn on_resume(&mut self, api: &mut SimApi<'_, ServiceMsg>, session: SessionId) {
        let Some(s) = self.sessions.get_mut(&session) else {
            return;
        };
        if !s.paused {
            return;
        }
        s.paused = false;
        let components: Vec<ComponentId> = s
            .streams
            .iter()
            .filter(|(_, tx)| !tx.done && !tx.stopped)
            .map(|(c, _)| *c)
            .collect();
        for c in components {
            api.set_timer(
                self.node,
                MediaDuration::ZERO,
                timers::TK_FRAME,
                timers::pack(session, c),
            );
        }
    }

    fn teardown_session(&mut self, api: &mut SimApi<'_, ServiceMsg>, session: SessionId) {
        if let Some(conn) = self.admission.release(session) {
            api.net_mut().release(conn);
        }
        self.sessions.remove(&session);
    }

    fn on_disconnect(&mut self, api: &mut SimApi<'_, ServiceMsg>, session: SessionId) {
        let now = api.now();
        if let Some(s) = self.sessions.get(&session) {
            if let Some(u) = s.user {
                let dur = now - s.connected_at;
                let bytes: u64 = s.streams.values().map(|t| t.bytes_sent).sum();
                self.accounts.charge(u, Charge::Duration(dur));
                self.accounts.charge(u, Charge::Volume(bytes));
            }
        }
        self.teardown_session(api, session);
    }

    fn local_hits(&self, token: &str) -> Vec<SearchHit> {
        self.db
            .search(token)
            .into_iter()
            .map(|(document, title)| SearchHit {
                server: self.server_id,
                document,
                title,
            })
            .collect()
    }

    fn on_search_request(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        token: String,
        query: u64,
    ) {
        let Some(s) = self.sessions.get(&session) else {
            return;
        };
        let client = s.client;
        let hits = self.local_hits(&token);
        if self.peers.is_empty() {
            api.send_reliable(
                self.node,
                client,
                ServiceMsg::SearchResponse {
                    session,
                    query,
                    hits,
                },
            );
            return;
        }
        self.queries.insert(
            query,
            PendingQuery {
                session,
                client,
                hits,
                awaiting: self.peers.len(),
            },
        );
        // "this particular server sends the query to all other Hermes
        // servers for the same reason" (§6.2.2).
        for peer in self.peers.clone() {
            api.send_reliable(
                self.node,
                peer,
                ServiceMsg::SearchFanout {
                    query,
                    token: token.clone(),
                    origin: self.node,
                },
            );
        }
    }

    fn on_search_partial(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        query: u64,
        hits: Vec<SearchHit>,
    ) {
        let done = {
            let Some(q) = self.queries.get_mut(&query) else {
                return;
            };
            q.hits.extend(hits);
            q.awaiting -= 1;
            q.awaiting == 0
        };
        if done {
            let q = self.queries.remove(&query).unwrap();
            api.send_reliable(
                self.node,
                q.client,
                ServiceMsg::SearchResponse {
                    session: q.session,
                    query,
                    hits: q.hits,
                },
            );
        }
    }
}

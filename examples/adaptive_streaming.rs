//! Adaptive streaming under congestion: the long-term recovery mechanism in
//! action (paper §4).
//!
//! ```sh
//! cargo run --example adaptive_streaming
//! ```
//!
//! A lesson with a synchronized audio+video clip streams across a link that
//! suffers a heavy congestion epoch mid-presentation. The client's feedback
//! reports drive the server's grading engine: watch the video stream walk
//! down its quality ladder (video first — "users can tolerate lower video
//! quality rather than 'not hear well'") and climb back after the epoch.

use hermes_od::core::{MediaTime, ServerId};
use hermes_od::service::{install_course, ClientConfig, LessonShape, ServerConfig, WorldBuilder};
use hermes_od::simnet::{CongestionEpoch, CongestionProfile, LinkSpec, SimRng};

fn main() {
    let mut b = WorldBuilder::new(23);
    let server = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    // The client's access link: 4 Mbps with a shallow router queue (64 KiB —
    // deep queues turn congestion into unbounded delay) and a congestion
    // epoch from t=8 s to t=20 s taking half the capacity and adding loss.
    let mut access = LinkSpec::lan(4_000_000);
    access.queue_capacity_bytes = 64 << 10;
    access.congestion = CongestionProfile::new(vec![CongestionEpoch {
        start: MediaTime::from_secs(8),
        end: MediaTime::from_secs(20),
        load: 0.5,
        extra_loss: 0.02,
    }]);
    let client = b.add_client(access, ClientConfig::default());
    let mut sim = b.build(23);

    // One long lesson: 30 s narrated clip.
    let mut rng = SimRng::seed_from_u64(2);
    let lessons = install_course(
        sim.app_mut().server_mut(server),
        "Streaming",
        &["adaptation"],
        1,
        1,
        LessonShape {
            images: 0,
            image_secs: 0,
            narrated_clip_secs: Some(30),
            closing_audio_secs: None,
        },
        &mut rng,
    );

    sim.with_api(|w, api| {
        w.client_mut(client).connect(api, server, Some(lessons[0]));
    });

    // Sample the grading state once per second while running.
    println!("time   audio-level  video-level  video-kbps  note");
    let mut last_levels = (255u8, 255u8);
    for t in 1..=40 {
        sim.run_until(MediaTime::from_secs(t));
        let srv = sim.app().server(server);
        if let Some((_, sess)) = srv.sessions.iter().next() {
            let mut audio = None;
            let mut video = None;
            let mut vid_bw = 0u64;
            for (c, tx) in &sess.streams {
                match tx.plan.kind {
                    hermes_od::core::MediaKind::Audio => audio = sess.qos.level_of(*c).map(|l| l.0),
                    hermes_od::core::MediaKind::Video => {
                        video = sess.qos.level_of(*c).map(|l| l.0);
                        vid_bw = sess
                            .qos
                            .stream(*c)
                            .map(|s| s.converter.current_bandwidth_bps())
                            .unwrap_or(0);
                    }
                    _ => {}
                }
            }
            let (a, v) = (audio.unwrap_or(0), video.unwrap_or(0));
            let note = match ((8..20).contains(&t), (a, v) != last_levels) {
                (true, true) => "congestion epoch — degrading",
                (false, true) => "recovering",
                (true, false) => "congestion epoch",
                (false, false) => "",
            };
            println!("{t:>3}s   {a:>11}  {v:>11}  {:>10}  {note}", vid_bw / 1000);
            last_levels = (a, v);
        }
    }

    let c = sim.app().client(client);
    let srv = sim.app().server(server);
    let (_, sess) = srv.sessions.iter().next().unwrap();
    println!(
        "\ngrading totals: {} degrades, {} upgrades, {} stops",
        sess.qos.degrades_issued, sess.qos.upgrades_issued, sess.qos.stops_issued
    );
    let p = c.presentation.as_ref().expect("presentation exists");
    let stats = p.engine.total_stats();
    println!(
        "playout: {} frames, {} duplicates, {} glitches, max A/V skew {}",
        stats.frames_played, stats.duplicates_played, stats.glitches, p.engine.max_skew_observed
    );
    assert!(
        sess.qos.degrades_issued > 0,
        "congestion must trigger degradation"
    );
    assert!(
        sess.qos.upgrades_issued > 0,
        "recovery must trigger upgrades"
    );
}

//! # hermes-bench
//!
//! The experiment harness: shared world builders, metric extraction, table
//! printing and parallel parameter sweeps used by the `exp_*` binaries (one
//! per paper figure/table/claim — see DESIGN.md's reproduction index) and by
//! the criterion benches.

#![warn(missing_docs)]

pub mod chaos;
pub mod cli;
pub mod harness;
pub mod tables;
pub mod workload;

pub use cli::{ExpOpts, Sink};
pub use harness::{
    run_seeds, run_streaming_session, run_streaming_session_traced, standard_lesson,
    StreamingMetrics, StreamingParams,
};
// The sample-set helpers live in hermes-obs now; keep the historical bench
// names as aliases so the exp_* binaries read naturally.
pub use hermes_simnet::obs::{max_dur_by as max_dur_of, mean_by as mean_of, percentile};
pub use tables::{fmt_dur_ms, print_table, Table};
pub use workload::{poisson_arrivals, session_arrivals, Arrival, ZipfCatalog};

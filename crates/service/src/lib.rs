//! # hermes-service
//!
//! End-to-end service orchestration: the wire [`protocol`], the
//! [`server_actor`] and [`client_actor`] implementing both halves of paper
//! Fig. 3, the [`media_actor`] media-server nodes of the distributed media
//! tier, the [`world`] builder wiring them over the simulated broadband
//! network, and the [`hermes`] distance-education content layer (§6).
//!
//! A full on-demand session — connect, authenticate/subscribe, browse
//! topics, request a lesson, stream it with QoS feedback and grading,
//! follow links (including cross-server migration with suspend grace),
//! search the whole service and exchange tutor mail — runs as one
//! deterministic simulation.

#![warn(missing_docs)]

pub mod client_actor;
pub mod hermes;
pub mod media_actor;
pub mod protocol;
pub mod server_actor;
pub mod timers;
pub mod world;

pub use client_actor::{ClientActor, ClientConfig, Presentation};
pub use hermes::{install_course, install_figure2, lesson_markup, tutor_reply, LessonShape};
pub use media_actor::{MediaActor, MediaNodeConfig, MediaNodeStats};
pub use protocol::{MailMessage, SearchHit, ServiceMsg, StackPath};
pub use server_actor::{
    MediaTier, MediaTierConfig, MediaTierStats, RemoteStream, ServerActor, ServerConfig,
    SessionState, SharedGroup, SharingStats, StreamTx,
};
pub use world::{ServiceWorld, WorldBuilder};

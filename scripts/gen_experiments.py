#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from live experiment runs.

Usage: run every exp binary into /tmp/expout first (or let this script do it),
then: python3 scripts/gen_experiments.py
"""
import os, subprocess, sys

OUT = "/tmp/expout"
EXPERIMENTS = ["exp_tab1","exp_fig1","exp_fig2","exp_fig3","exp_fig4","exp_fig5",
               "exp_skew","exp_window","exp_grade","exp_admit","exp_search",
               "exp_migrate","exp_ablate","exp_concur","exp_faults",
               "exp_overload","exp_placement","exp_scale","exp_obs","exp_chaos"]

def run_all():
    os.makedirs(OUT, exist_ok=True)
    for e in EXPERIMENTS:
        with open(f"{OUT}/{e}.txt","w") as f:
            r = subprocess.run(["cargo","run","--release","-p","hermes-bench","--bin",e],
                               stdout=f, stderr=subprocess.DEVNULL)
            if r.returncode != 0:
                sys.exit(f"{e} FAILED")
        print(e, "OK")

def grab(name, start=None, maxlines=400):
    txt = open(f"{OUT}/{name}.txt").read().splitlines()
    if start:
        i = next(j for j,l in enumerate(txt) if start in l)
        txt = txt[i:]
    return "\n".join(txt[:maxlines]).rstrip()

def main():
    run_all()
    doc = []
    A = doc.append
    A("""# EXPERIMENTS — paper vs. measured

Every figure and table of the paper, plus every quantitative claim of its
design sections, reproduced on the simulated substrate. Regenerate any row
with `cargo run --release -p hermes-bench --bin <experiment>` (or everything
at once with `--bin exp_all`, or this file with
`python3 scripts/gen_experiments.py`). All runs are seeded and deterministic;
the tables below are verbatim program output.

The paper (HPDC-5 1996 / extended journal version) is a design/architecture
paper: its "evaluation" consists of the design artifacts Figs. 1–5 and
Table 1, plus qualitative claims about the two synchronization-recovery
mechanisms, the media time window, admission control, distributed search and
connection migration. We reproduce each artifact *executably* and each claim
*quantitatively* (see DESIGN.md's reproduction index). Absolute numbers are
simulator-scale, not 1996-testbed-scale; what is compared is the **shape**:
which mechanism wins, in which direction, and where behaviour changes.

---

## TAB1 — Table 1, the markup keyword table (`exp_tab1`)

**Paper:** a static table of the language's keywords.
**Measured:** the table regenerated from the live keyword registry, with a
coverage check that every keyword the parser accepts appears in it.

```""")
    A(grab("exp_tab1"))
    A("""```

**Verdict: reproduced.** The implementation adds the hyperlink/placement
keywords the paper's prose uses but its table omits (HLINK/AT/TO/HOST/KIND,
WHERE/HEIGHT/WIDTH); `ENCODING` and `SYNC` are documented extensions
(DESIGN.md).

---

## FIG1 — the language grammar (`exp_fig1`)

**Paper:** BNF grammar of the markup language.
**Measured:** every production exercised against the recursive-descent
parser: accepted, serializer round-trip, and lowering to a scenario.

```""")
    A(grab("exp_fig1", start="== Fig. 1"))
    A("""```

**Verdict: reproduced.** All productions (including the `AU_VI` paired
attributes and timed `AT` links) parse, round-trip and lower.

---

## FIG2 — the example scenario (`exp_fig2`)

**Paper:** a worked scenario — persistent text, images I1/I2, audio A1
synchronized with video V, audio A2 — drawn as a screen layout plus playout
timelines.
**Measured:** the same scenario written in the markup language, lowered,
analyzed (Allen interval relations), rendered, then streamed through the
full service.

```""")
    A(grab("exp_fig2", start="== Fig. 2 (lower half)"))
    A("""```

**Verdict: reproduced.** The derived timeline matches the paper's figure
exactly (I1 [0,5), I2 [5,12), A1‖V [6,14), A2 [15,19)); on a clean network
every stream starts within one frame period of its authored `t_i`, with zero
glitches and lip-sync-bounded skew.

---

## FIG3 — the general architecture (`exp_fig3`)

**Paper:** the block diagram (multimedia DB, flow scheduler, media servers,
client/server QoS managers, quality converters, buffers, presentation
scheduler).
**Measured:** a loaded WAN session in which every block reports activity.

```""")
    A(grab("exp_fig3", start="== Fig. 3"))
    A("""```

**Verdict: reproduced.** All components participate; the congestion epoch
drives the feedback → grading loop (degrades during, upgrades after).

---

## FIG4 — application state transition diagram (`exp_fig4`)

**Paper:** the session state diagram of §5.
**Measured:** the legal transition function (8 states; the transition count
is printed by the run) enumerated, then exercised to 100% coverage by
scripted live sessions plus machine-level scripts for the contrived edges.

```""")
    A(grab("exp_fig4", start="coverage:"))
    A("""```

**Verdict: reproduced** (every legal transition exercised; illegal
operations are rejected with `InvalidStateTransition`).

---

## FIG5 — the protocol stack (`exp_fig5`)

**Paper:** scenario/discrete media/control over TCP; audio/video over
RTP/UDP; feedback over RTCP (both directions — receiver reports up, sender
reports down); tutor mail over SMTP/MIME.
**Measured:** per-stack-path byte accounting over a full session.

```""")
    A(grab("exp_fig5", start="== Fig. 5"))
    A("""```

**Verdict: reproduced.** All four paths are exercised with the paper's
mapping, and continuous media dominates the byte count as expected.

---

## EXP-SKEW — short-term recovery bounds intermedia skew (`exp_skew`)

**Paper claim (§4):** buffer-occupancy-driven frame dropping/duplication is
a "short term synchronization incoherence recovery method".
**Measured:** max A/V skew vs background load, mechanism on vs off.

```""")
    A(grab("exp_skew", start="== EXP-SKEW"))
    A("""```

**Verdict: shape holds.** Without recovery, skew grows with load; with
recovery it stays near the 80 ms lip-sync tolerance, paid for in
duplicated/dropped frames. Beyond ~45% load the nominal-rate flows stop
fitting the link — admission's domain (EXP-ADMIT) and grading's (EXP-GRADE).

---

## EXP-WINDOW — the media time window smooths bursts (`exp_window`)

**Paper claim (§4):** the intentional prefill delay ("media time window")
smooths network delay variation before it can affect presentation.
**Measured:** disruptions vs window size under periodic congestion bursts.

```""")
    A(grab("exp_window", start="== EXP-WINDOW"))
    A("""```

**Verdict: shape holds.** Startup delay is the window (the paper's
intentional initial delay); for bursts shorter than the window, disruptions
fall monotonically toward zero. Long bursts show the expected regimes: tiny
windows recover by dropping the stale backlog wholesale, large windows
absorb the burst entirely.

---

## EXP-GRADE — long-term recovery by quality grading (`exp_grade`)

**Paper claim (§4):** feedback-driven grading degrades video before audio
under sustained congestion ("users can tolerate lower video quality rather
than 'not hear well'"), stops streams at the user's floor, and "gracefully
upgrade[s] the media quality when the network's condition permits it".
**Measured:** quality-level trace through a 12 s congestion epoch; grading
on vs off.

```""")
    A(grab("exp_grade", start="== EXP-GRADE"))
    A("""```

**Verdict: shape holds.** Video walks down the ladder during the epoch
(audio untouched), climbs back after it; with grading off the nominal-rate
flow overloads the link for the whole epoch (several times the network
drops, visible presentation disruptions).

---

## EXP-ADMIT — pricing-aware admission (`exp_admit`)

**Paper claim (§4):** admission evaluates network condition + requested QoS
+ pricing contract; "a user who pays more should be serviced, even though it
affects the other users".
**Measured:** per-class admission rates vs offered load on a shared uplink.

```""")
    A(grab("exp_admit", start="== EXP-ADMIT"))
    A("""```

**Verdict: shape holds.** Everyone is admitted at low load; Economy (70%
utilization ceiling) saturates first, Standard (85%) second, Premium (97%)
last — premium admission rate is ~2× the others at every overloaded point.

---

## EXP-SEARCH — distributed search fan-out (`exp_search`)

**Paper claim (§6.2.2):** the contacted server scans locally and forwards
the query to all other servers; only matching lessons plus their server
locations return.
**Measured:** completeness and latency vs number of servers.

```""")
    A(grab("exp_search", start="== EXP-SEARCH"))
    A("""```

**Verdict: reproduced.** Hits equal the matching lessons exactly at every
scale; latency grows with the slowest fanned-out server since the merge
waits for all partial results.

---

## EXP-MIGRATE — suspended-connection migration (`exp_migrate`)

**Paper claim (§5):** following a remote link suspends the old connection
for a grace period; a revisit inside it resumes, past it the connection is
closed "and the attached client is informed about the event".
**Measured:** outcome matrix of revisit delay vs grace period.

```""")
    A(grab("exp_migrate", start="== EXP-MIGRATE"))
    A("""```

**Verdict: reproduced** exactly as specified.

---

## EXP-ABLATE — design-choice ablations (`exp_ablate`)

Ablations of choices the paper states but does not evaluate.

```""")
    A(grab("exp_ablate", start="== EXP-ABLATE/1"))
    A("""```

**Findings.**
1. *Grading order*: audio-first grading spends steps on the low-bandwidth
   audio stream, sheds less rate per step and ends up stopping streams;
   video-first (the paper's rule) and largest-saving shed the expensive
   video rate first and keep audio intact.
2. *Skew policy*: drop-only repair cannot hold a starving partner back, so
   skew grows well past tolerance; any policy that can stall the leader
   (duplicate-laggard, or the paper's combined policy) bounds skew near the
   lip-sync limit.
3. *Feedback interval*: faster feedback adapts sooner — network drops during
   the epoch grow steadily as the report interval stretches from 250 ms to
   4 s; very slow feedback also reacts late on recovery.

---

## EXP-CONCUR — service scalability (`exp_concur`)

**Paper gap:** the HPDC-5 paper positions the service for broadband
deployment but never measures multi-client behaviour.
**Measured:** concurrent clients sharing one 25 Mbps server uplink.

```""")
    A(grab("exp_concur", start="== EXP-CONCUR"))
    A("""```

**Finding.** Per-client quality stays flat at every scale because bandwidth
reservations gate admission: once the uplink is committed (~10 nominal-rate
flows) further requests are rejected instead of degrading everyone — the
paper's "affects the other users" rule in action. Admission handles
*inter-session* contention; grading (EXP-GRADE) handles *in-session*
congestion.

---

## EXP-FAULTS — failure detection and recovery (`exp_faults`)

**Paper gap:** the paper assumes a reliable broadband substrate; server or
path failure mid-presentation is never considered.
**Measured:** a server crash (900 ms outage) injected at four points of the
Fig. 2 presentation, for three client heartbeat intervals; the client must
detect the silence, reconnect, and resume to completion.

```""")
    A(grab("exp_faults", start="== Server crash"))
    A("""```

**Finding.** Detection latency tracks the heartbeat interval (K = 3 missed
beats ⇒ detect in 3–4 intervals); the reconnect itself adds roughly one
tracked-request round trip on top. Every cell completes the presentation
with zero errors: the rebuilt session fast-forwards each stream past the
client's reported playout position, so recovery costs only the outage
window, never a replay.

---

## EXP-PLACEMENT — the distributed media tier (`exp_placement`)

**Paper gap:** the architecture (§2, §6.1) attaches dedicated media servers
to the multimedia server but never evaluates how content should be placed
across them, how a replica is chosen, or what happens when one dies.
**Measured:** the Fig. 2 document distributed over four media nodes via
rendezvous-hash placement and streamed to two staggered shared viewers,
sweeping the replication factor and the segment-cache budget; the final
cell crashes a live media node mid-playout.

```""")
    A(grab("exp_placement", start="== Fig. 2 over"))
    A("""```

**Finding.** Every cell completes both presentations with zero errors. The
interval cache (Dan–Sitaram admission: only segments with concurrent
readers are cached) lets the trailing viewer ride the leader's fetches —
the 1 MB budget turns ~14% of lookups into hits and measurably cuts
network fetch volume, while the no-cache cell pays full price for every
segment. Crashing the serving replica triggers failover for each of its
live streams (stateless segment addressing resumes from the exact next
frame) and the presentations still complete with identical frame counts.

---

## EXP-SCALE — stream sharing at scale (`exp_scale`)

**Paper gap:** the service targets "a large number of users" over broadband,
but one-stream-per-viewer egress grows linearly with the audience; the paper
never quantifies when that breaks or what sharing buys back.
**Measured:** an open-loop Poisson arrival process over a Zipf-distributed
16-title catalog drives hundreds of concurrent sessions against one server
(2 Gbps trunk, 800-client pool, 4 media nodes), sweeping arrival rate ×
catalog skew × sharing policy (off / batching / batching+patching).

```""")
    A(grab("exp_scale", start="== EXP-SCALE"))
    A("""```

**Finding.** At 12 arrivals/s every policy serves everyone, and sharing
already cuts server egress ~3× on the skewed catalog — but batching alone
buys that with a ~1.3 s startup penalty (the window wait), which patching
mostly eliminates. At 50 arrivals/s the unshared service saturates: over
a third of arrivals go unserved because stalled sessions pin the client
pool, the served ones glitch at ~60–70 gaps per thousand frames, and
startup stretches past 4.5 s. Batching absorbs the same crowd outright —
all 2 292 arrivals served with **zero** playout gaps — while
batching+patching trades a small residual tail (~1 gap/kframe, a couple
hundred late joiners unserved) for the deepest egress cut: 77% versus off
(4046 → 928 MB) on the Zipf(1.2) catalog. Egress flattens as skew grows
because more arrivals land on hot titles whose groups already stream.
Multicast frame copies ride one trunk serialization each (`mcast`
column), which is exactly the saving.

---

## EXP-OVERLOAD — flash-crowd overload resilience (`exp_overload`)

**Paper gap:** the paper sizes its media servers for a planned audience
(§6.1) but says nothing about what happens when demand spikes past that
plan — the regime where every real on-demand service eventually lives.
**Measured:** an open-loop Poisson arrival process over a Zipf(1.1) clip
catalog drives a 90-client pool against one server backed by a
deliberately tight two-node media tier (24-deep service queues,
1 ms + 300 ms/MiB disks, no segment cache, no stream sharing). At 8 s the
arrival rate multiplies by 3.5× — permanently (`step`) or for a 10 s
window (`spike`) — and the sweep crosses pattern × overload mode: all
off, breaker+hedging, breaker+ladder, or the full stack.

```""")
    A(grab("exp_overload", start="== EXP-OVERLOAD"))
    A("""```

**Finding.** With everything off the crowd saturates the tier and playout
falls apart: a quarter of all frames glitch (257 gaps/kframe on the step
crowd) and the worst sessions spend more time stalled than playing
(P99 ≈ 1.45 gaps *per frame*), while naive immediate-retry turns ~17 M
shed fetches into pure message churn. Each control recovers a different
share: hedging alone reroutes the latency tail (−32% gaps) but cannot
create capacity; the ladder alone *does* create capacity (Q1→Q3 cuts
tier bytes ~2.5×, −45% gaps) at the price of picture quality; the full
stack composes them — **3.3× fewer playout gaps than the baseline on the
step crowd, 2.6× on the spike** — while paced surgical retries cut shed
churn ~3×. Breaker trips stay at zero by design: a symmetric flash crowd
makes every replica equally slow, and tripping on shared queueing would
only amplify the collapse (the brownout tests in
`crates/service/tests/overload.rs` cover the asymmetric case where the
breaker *does* fire). Note the step and spike rows coincide for the
modes that pin the client pool: once every slot is busy, late arrivals
are turned away either way and the served set — hence the tier dynamics
— is identical; the crowd's *shape* stops mattering once admission, not
serving, is the bottleneck. CI re-runs the smoke grid twice and diffs
the output: every number above — including hedge races, which are
resolved by simulated time — is deterministic.

---

## EXP-OBS — the trace tells the session's story (`exp_obs`)

**Paper gap:** the paper reports its QoS mechanisms working (§5) but never
says how anyone *saw* them work — there is no account of how a 1996
operator would reconstruct why one session glitched at minute three.
**Measured:** not a performance claim but an instrumentation one. One
session plays a 3-component clip over an access link with 8% Bernoulli
loss, starved below the media rate, with recovery and grading disabled so
playout gaps actually happen; the run's trace is then *asserted against*:
the `admission` → `prefill` → `playout` spans must nest under the session
root with correct sim-time ordering, the `playout_gap` event count must
equal the playout engine's own glitch counter, and the gap's
flight-recorder dump must carry the buffer-occupancy events that precede
it. A second run with grading on must surface every `qos_degrade` /
`stream_regraded` transition, and a timing loop compares wall-clock with
tracing runtime-enabled vs disabled.

```""")
    A(grab("exp_obs", start="gap trace", maxlines=12))
    A("  ...")
    A(grab("exp_obs", start="flight dump @", maxlines=3))
    A("    ...")
    A(grab("exp_obs", start="more dumps omitted", maxlines=2))
    A("""```

**Finding.** The whole lifecycle of a lossy session is reconstructable
from its trace alone: the 206 ms admission negotiation, the 760 ms
prefill, then a starving buffer (`stream=1` pinned at occupancy 0 in the
flight dump while `stream=2` holds ~1.6 s) until the deadline misses
begin at 5.85 s — every one of the engine's 122 glitches has a matching
`playout_gap` event, and each dump shows the buffer history *before* the
gap, which is exactly what a bounded ring buys over a plain log.
`--trace PATH` exports the same run as `PATH.jsonl` and
`PATH.trace.json` (Chrome trace-event; open in ui.perfetto.dev to see the
span waterfall). Because events are stamped with sim-time and sequenced
deterministically, the exports are byte-identical across runs — CI diffs
them — and the timing table (sink-only, never in the export) shows the
runtime toggle costs a few percent at most while the
`--no-default-features` build removes tracing entirely.

---

## EXP-CHAOS — randomized faults vs the invariant catalog (`exp_chaos`)

**Paper gap:** §5 describes recovery mechanisms one failure at a time;
it never argues the service stays *coherent* when failures compose —
a server crash during a partition during a brownout. **Measured:**
FoundationDB-style simulation testing. Each seed generates a random but
fully deterministic fault plan (crash storms, rolling restarts, pair and
hub partitions, link flaps, brownouts, correlated bursts) against a fixed
2-server / 3-media-node / 6-client deployment; after every run the
observability capture is judged against a global invariant catalog
(`hermes_obs::invariants`): epoch monotonicity, session lifecycle
discipline, frame discipline, breaker-state legality, conservation of
media-part accounting, bounded recovery. Any violating seed is
delta-debugged to a minimal fault plan and printed as a ready-to-paste
`FaultPlan` literal with flight-recorder context. `--chaos-seeds N`
widens the sweep, `--chaos-intensity X` scales the incident rate.

```""")
    A(grab("exp_chaos", start="workload:", maxlines=11))
    A("""```

**Finding.** The catalog holds over 500 seeds at intensity 1 and over
stress sweeps at intensity 3–5 (hundreds of seeds, ~8 000 fault events,
~1 400 session rebuilds per sweep). Getting there required fixing four
real service bugs the harness shrank to minimal reproducers: a server
`NodeRestart` without a preceding crash kept unreachable sessions
(restart must clear volatile state exactly like a crash); heartbeat acks
matched on session id alone, so a client failed over to another server
could keep a foreign server's orphaned session alive forever (ids are
per-server counters and collide); a migration-suspended session was
never released when the user disconnected; and a `Connect`/
`ReconnectRequest` still in flight when the user left would rebuild a
session nobody was behind, which the client then adopted. Each fix is
pinned by the sweep plus `crates/service/tests/faults.rs`'s compound
partition-plus-crash test.

---

## Benchmarks

`cargo bench --workspace` runs the criterion suites (`parser`, `simnet`,
`playout`, `rtp`, `session`) — micro-benchmarks for each substrate plus a
full end-to-end Fig. 2 session. See `bench_output.txt` for the most recent
numbers on this machine.
""")
    open("EXPERIMENTS.md","w").write("\n".join(doc))
    print("EXPERIMENTS.md written")

if __name__ == "__main__":
    main()

//! The Client QoS Manager (paper §4, Fig. 3).
//!
//! "Incoming data packets of a specific stream, besides other information,
//! carry a timestamping indication which is used by the Client QoS Manager
//! to carry out conclusions about the connection's condition, e.g. the
//! packet delay, the delay jitter. Based on this information, the client QoS
//! manager, periodically or in specifically calculated intervals, sends
//! feedback reports to the sending side."

use hermes_core::{ComponentId, MediaDuration, MediaTime, QosMeasurement};
use hermes_simnet::Accumulator;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One stream's reception-condition tracker inside the client QoS manager.
#[derive(Debug, Clone, Default)]
pub struct StreamCondition {
    delay: Accumulator,
    jitter_estimate: MediaDuration,
    packets: u64,
    lost_estimate: u64,
    /// Buffer occupancy snapshot supplied by the buffer layer.
    pub buffer_occupancy: f64,
}

impl StreamCondition {
    /// Record one packet's one-way delay (send timestamp is carried in the
    /// RTP header; the simulator's clocks are synchronized).
    pub fn on_packet(&mut self, delay: MediaDuration) {
        // RFC-style smoothed jitter over the one-way delays.
        let prev_mean = MediaDuration::from_micros(self.delay.mean() as i64);
        if self.packets > 0 {
            let d = (delay - prev_mean).abs();
            self.jitter_estimate = self.jitter_estimate
                + MediaDuration::from_micros(
                    (d.as_micros() - self.jitter_estimate.as_micros()) / 16,
                );
        }
        self.delay.push_duration(delay);
        self.packets += 1;
    }

    /// Record that `n` packets are known lost (from RTP sequence gaps).
    pub fn on_lost(&mut self, n: u64) {
        self.lost_estimate += n;
    }

    /// Snapshot the current window into a [`QosMeasurement`] and reset the
    /// window counters.
    pub fn take_measurement(&mut self, now: MediaTime) -> QosMeasurement {
        let total = self.packets + self.lost_estimate;
        let m = QosMeasurement {
            window_end: now,
            mean_delay: MediaDuration::from_micros(self.delay.mean() as i64),
            jitter: self.jitter_estimate,
            loss_fraction: if total == 0 {
                0.0
            } else {
                self.lost_estimate as f64 / total as f64
            },
            packets_received: self.packets,
            buffer_occupancy: self.buffer_occupancy,
        };
        self.delay = Accumulator::new();
        self.packets = 0;
        self.lost_estimate = 0;
        m
    }
}

/// Feedback cadence configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackConfig {
    /// Period between feedback reports.
    pub interval: MediaDuration,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            interval: MediaDuration::from_millis(1_000),
        }
    }
}

/// The client QoS manager: per-stream condition tracking and feedback
/// scheduling.
#[derive(Debug, Default)]
pub struct ClientQosManager {
    streams: BTreeMap<ComponentId, StreamCondition>,
    cfg: FeedbackConfig,
    last_report: Option<MediaTime>,
    /// Reports emitted so far.
    pub reports_sent: u64,
}

impl ClientQosManager {
    /// Manager with the given feedback cadence.
    pub fn new(cfg: FeedbackConfig) -> Self {
        ClientQosManager {
            streams: BTreeMap::new(),
            cfg,
            last_report: None,
            reports_sent: 0,
        }
    }

    /// Register a stream (idempotent).
    pub fn track(&mut self, id: ComponentId) {
        self.streams.entry(id).or_default();
    }

    /// The tracker for a stream.
    pub fn stream_mut(&mut self, id: ComponentId) -> &mut StreamCondition {
        self.streams.entry(id).or_default()
    }

    /// Is a feedback report due at `now`?
    pub fn report_due(&self, now: MediaTime) -> bool {
        match self.last_report {
            None => true,
            Some(t) => now - t >= self.cfg.interval,
        }
    }

    /// Produce the per-stream measurements for a feedback report and roll
    /// the windows.
    pub fn make_report(&mut self, now: MediaTime) -> Vec<(ComponentId, QosMeasurement)> {
        self.last_report = Some(now);
        self.reports_sent += 1;
        self.streams
            .iter_mut()
            .map(|(id, c)| (*id, c.take_measurement(now)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_and_loss_measured() {
        let mut c = StreamCondition::default();
        for i in 0..10 {
            c.on_packet(MediaDuration::from_millis(10 + i % 2)); // 10 or 11 ms
        }
        c.on_lost(2);
        let m = c.take_measurement(MediaTime::from_secs(1));
        assert!(m.mean_delay >= MediaDuration::from_millis(10));
        assert!(m.mean_delay <= MediaDuration::from_millis(11));
        assert_eq!(m.packets_received, 10);
        assert!((m.loss_fraction - 2.0 / 12.0).abs() < 1e-9);
        // Window reset.
        let m2 = c.take_measurement(MediaTime::from_secs(2));
        assert_eq!(m2.packets_received, 0);
        assert_eq!(m2.loss_fraction, 0.0);
    }

    #[test]
    fn jitter_reflects_delay_variation() {
        let mut steady = StreamCondition::default();
        let mut vary = StreamCondition::default();
        for i in 0..100 {
            steady.on_packet(MediaDuration::from_millis(20));
            vary.on_packet(MediaDuration::from_millis(if i % 2 == 0 { 5 } else { 35 }));
        }
        let ms = steady.take_measurement(MediaTime::ZERO);
        let mv = vary.take_measurement(MediaTime::ZERO);
        assert_eq!(ms.jitter, MediaDuration::ZERO);
        assert!(mv.jitter > MediaDuration::from_millis(10), "{}", mv.jitter);
    }

    #[test]
    fn report_cadence() {
        let mut m = ClientQosManager::new(FeedbackConfig {
            interval: MediaDuration::from_millis(500),
        });
        m.track(ComponentId::new(1));
        assert!(m.report_due(MediaTime::ZERO));
        let r = m.make_report(MediaTime::ZERO);
        assert_eq!(r.len(), 1);
        assert!(!m.report_due(MediaTime::from_millis(300)));
        assert!(m.report_due(MediaTime::from_millis(500)));
        assert_eq!(m.reports_sent, 1);
    }

    #[test]
    fn buffer_occupancy_carried_into_measurement() {
        let mut m = ClientQosManager::new(FeedbackConfig::default());
        m.stream_mut(ComponentId::new(3)).buffer_occupancy = 0.7;
        let r = m.make_report(MediaTime::ZERO);
        assert_eq!(r[0].1.buffer_occupancy, 0.7);
    }
}

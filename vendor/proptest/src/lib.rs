//! Hermetic property-testing shim with the `proptest` API surface this
//! workspace uses: the `proptest!` macro, `Strategy` with `prop_map`/`boxed`,
//! integer-range / tuple / `Just` / union strategies, `collection::vec`,
//! `option::of`, `any::<T>()`, and a regex-subset string generator.
//!
//! Differences from real proptest, by design:
//! - **Deterministic seeds**: case `i` of test `t` always runs the same input
//!   (seeded from a hash of the test name and `i`), so failures reproduce
//!   without a persistence file.
//! - **No shrinking**: the failing input is printed as-is; tests that matter
//!   pin their regressions as explicit fixed cases.
//! - `.proptest-regressions` files are not read (their `cc` hashes encode the
//!   upstream RNG); keep shrunk cases alive as ordinary `#[test]`s instead.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A failed property check (returned by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Per-test configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator state handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // 128-bit multiply-shift keeps bias negligible for test sizes.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform value in the signed 128-bit range `[lo, hi)` (for any int type).
    pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty range");
        let width = (hi - lo) as u128;
        let draw = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % width;
        lo + draw as i128
    }
}

/// Seed the RNG for one case of one named test: stable across runs and
/// platforms so failures always reproduce.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng {
        state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe strategy core for boxing.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_i128(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Union of boxed strategies: each case picks one arm uniformly.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Build from the arms (at least one required).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Whole-domain generation for primitive types (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    /// Draw one value uniformly over the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with a size drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range_i128(self.size.start as i128, self.size.end as i128) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`proptest::option::of`).

    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategy: string literals act as strategies, supporting
// the pattern subset used in-tree — literal runs, escapes (\n, \t, \\),
// character classes with ranges, and {m,n} quantifiers.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AtomKind {
    Lit(char),
    /// Inclusive char ranges; single chars are (c, c).
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Atom {
    kind: AtomKind,
    min: usize,
    max: usize,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let mut chars = pat.chars().peekable();
    let mut atoms: Vec<Atom> = Vec::new();
    while let Some(c) = chars.next() {
        match c {
            '[' => {
                // Decode the class body (escapes first), then fold ranges.
                let mut decoded: Vec<char> = Vec::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('\\') => {
                            let e = chars.next().expect("dangling escape in class");
                            decoded.push(unescape(e));
                        }
                        Some(ch) => decoded.push(ch),
                        None => panic!("unterminated character class in pattern {pat:?}"),
                    }
                }
                let mut ranges: Vec<(char, char)> = Vec::new();
                let mut i = 0;
                while i < decoded.len() {
                    if i + 2 < decoded.len() && decoded[i + 1] == '-' {
                        assert!(
                            decoded[i] <= decoded[i + 2],
                            "inverted range in pattern {pat:?}"
                        );
                        ranges.push((decoded[i], decoded[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((decoded[i], decoded[i]));
                        i += 1;
                    }
                }
                atoms.push(Atom {
                    kind: AtomKind::Class(ranges),
                    min: 1,
                    max: 1,
                });
            }
            '{' => {
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                let (min, max) = match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n} quantifier"),
                        n.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                };
                let atom = atoms.last_mut().expect("quantifier with nothing to repeat");
                atom.min = min;
                atom.max = max;
            }
            '\\' => {
                let e = chars.next().expect("dangling escape");
                atoms.push(Atom {
                    kind: AtomKind::Lit(unescape(e)),
                    min: 1,
                    max: 1,
                });
            }
            other => atoms.push(Atom {
                kind: AtomKind::Lit(other),
                min: 1,
                max: 1,
            }),
        }
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.max > atom.min {
                rng.in_range_i128(atom.min as i128, atom.max as i128 + 1) as usize
            } else {
                atom.min
            };
            for _ in 0..n {
                match &atom.kind {
                    AtomKind::Lit(c) => out.push(*c),
                    AtomKind::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let span = (*hi as u64) - (*lo as u64) + 1;
                            if pick < span {
                                out.push(char::from_u32(*lo as u32 + pick as u32).unwrap());
                                break;
                            }
                            pick -= span;
                        }
                    }
                }
            }
        }
        out
    }
}

/// Drive one property: run `cases` deterministic inputs through `f`,
/// panicking (with the case's seed context) on the first failure.
pub fn run_prop_test<F>(cfg: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng, u32) -> Result<(), TestCaseError>,
{
    for case in 0..cfg.cases {
        let mut rng = test_rng(name, case);
        if let Err(e) = f(&mut rng, case) {
            panic!("property {name} failed at case {case}: {e}");
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Union strategy over heterogeneous arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current property case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                __l, __r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current property case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                __l, __r
            )));
        }
    }};
}

/// Define property tests: each `fn` runs `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_prop_test(__cfg, stringify!($name), |__rng, __case| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __args = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __out = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })
                    );
                    match __out {
                        Ok(Ok(())) => Ok(()),
                        Ok(Err(e)) => Err($crate::TestCaseError::fail(format!(
                            "{e}\n  inputs: {__args}"
                        ))),
                        Err(panic) => {
                            let msg = panic
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| panic.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "<non-string panic>".to_string());
                            Err($crate::TestCaseError::fail(format!(
                                "panic: {msg}\n  inputs: {__args} (case {__case})"
                            )))
                        }
                    }
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = test_rng("x", 3);
        let mut b = test_rng("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = test_rng("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn regex_subset_shapes() {
        let mut rng = test_rng("regex", 0);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let t = "[ -~\\n\\t]{0,40}".generate(&mut rng);
            assert!(t.len() <= 40);
            assert!(t
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));

            let u = "<A>[A-Z]{1,3}=[a-z]{1,2}</A>".generate(&mut rng);
            assert!(u.starts_with("<A>") && u.ends_with("</A>") && u.contains('='));
        }
    }

    #[test]
    fn ranges_tuples_unions_and_vec() {
        let mut rng = test_rng("mix", 0);
        for _ in 0..200 {
            let v = (1i64..12).generate(&mut rng);
            assert!((1..12).contains(&v));
            let w = (1u8..=3).generate(&mut rng);
            assert!((1..=3).contains(&w));
            let (a, b) = ((0u8..10), Just(7i32)).generate(&mut rng);
            assert!(a < 10);
            assert_eq!(b, 7);
            let u = prop_oneof![Just(1u8), Just(2u8), (5u8..8)].generate(&mut rng);
            assert!(u == 1 || u == 2 || (5..8).contains(&u));
            let xs = collection::vec(0u8..4, 2..5).generate(&mut rng);
            assert!((2..5).contains(&xs.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(x in 0u64..100, s in "[a-b]{1,4}", o in crate::option::of(1u8..3)) {
            prop_assert!(x < 100);
            prop_assert!(!s.is_empty(), "s empty: {s:?}");
            if let Some(v) = o {
                prop_assert!(v == 1 || v == 2, "only 1 or 2, got {}", v);
                prop_assert_ne!(v, 0);
                prop_assert_eq!(v / v, 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        run_prop_test(ProptestConfig::with_cases(4), "fp", |rng, _case| {
            let v = (0u8..10).generate(rng);
            prop_assert!(v > 100, "v was {v}");
            Ok(())
        });
    }
}

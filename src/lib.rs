//! # hermes-od
//!
//! Facade crate for **Hermes-OD**, a reproduction of *"On-Demand
//! Hypermedia/Multimedia Service over Broadband Networks"* (Bouras,
//! Kapoulas, Miras, Ouzounis, Spirakis, Tatakis — HPDC-5, 1996) and its
//! extended journal version.
//!
//! Re-exports every workspace crate under one roof:
//!
//! * [`core`] — scenario model, playout schedules, skew algebra, grading
//!   policies, QoS types;
//! * [`hml`] — the hypermedia markup language (lexer/parser/serializer,
//!   scenario lowering, builder API);
//! * [`simnet`] — the deterministic discrete-event network simulator;
//! * [`rtp`] — RTP/RTCP packets, sessions and receiver statistics;
//! * [`media`] — codec rate models, frame sources, media stores and the
//!   quality converter;
//! * [`server`] — multimedia database, flow scheduler, grading engine,
//!   admission control, accounts;
//! * [`client`] — buffers, playout engine, client QoS manager, the Fig. 4
//!   state machine, headless renderer and threaded playout;
//! * [`service`] — the wire protocol, actors, world builder and the Hermes
//!   distance-education layer.
//!
//! See `examples/quickstart.rs` for a complete session in ~40 lines.

pub use hermes_client as client;
pub use hermes_core as core;
pub use hermes_hml as hml;
pub use hermes_media as media;
pub use hermes_rtp as rtp;
pub use hermes_server as server;
pub use hermes_service as service;
pub use hermes_simnet as simnet;

//! The media-server node actor of the distributed media tier.
//!
//! The paper attaches per-kind media servers to the multimedia server
//! (§2, §6.1); here they become real simnet nodes. A media node holds
//! replicated content *shards* — the media objects the placement map
//! assigned to it, keyed by origin multimedia server and media kind — and
//! serves stateless [`ServiceMsg::MediaFetchRequest`]s: every segment is
//! recomputed on demand from the object's metadata, so a crashed node
//! loses nothing and a failed-over stream can resume from any replica.
//!
//! Serving is a single-server queue, not an instantaneous reply: each
//! admitted request costs a deterministic service time (fixed overhead plus
//! a per-byte disk/CPU cost, inflated by an injected brownout factor), and
//! requests wait in a bounded [`OverloadQueue`] with deadline-aware
//! shedding. Shed requests are answered with [`ServiceMsg::MediaFetchBusy`]
//! so the puller fails over instead of timing out.

use crate::protocol::ServiceMsg;
use crate::timers;
use hermes_core::{GradeLevel, MediaDuration, MediaKind, MediaTime, NodeId, ServerId};
use hermes_media::{segment_bytes, segment_frames, MediaObject, MediaStore};
use hermes_server::{OverloadQueue, QueuedRequest};
use hermes_simnet::{Labels, Obs, Severity, SimApi};
use std::collections::BTreeMap;

/// Service-model configuration of a media node.
#[derive(Debug, Clone)]
pub struct MediaNodeConfig {
    /// Maximum queued fetch requests before capacity shedding.
    pub queue_capacity: usize,
    /// Fixed per-request service overhead (seek + dispatch).
    pub fixed_service: MediaDuration,
    /// Service cost per mebibyte of segment payload (disk read + copy).
    pub per_mbyte: MediaDuration,
}

impl Default for MediaNodeConfig {
    fn default() -> Self {
        MediaNodeConfig {
            queue_capacity: 64,
            fixed_service: MediaDuration::from_micros(200),
            per_mbyte: MediaDuration::from_millis(2),
        }
    }
}

/// Serving statistics of one media node (the per-node load the placement
/// experiment reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediaNodeStats {
    /// Fetch requests served with a chunk.
    pub requests_served: u64,
    /// Frames shipped in chunks.
    pub frames_served: u64,
    /// Frame payload bytes shipped in chunks.
    pub bytes_served: u64,
    /// Fetches for objects this node does not hold.
    pub not_found: u64,
    /// Transport parts shipped (conservation audit: every part sent must be
    /// received by a server or die with an accounted fault).
    pub parts_sent: u64,
    /// Fetches shed with `MediaFetchBusy` (queue capacity or deadline).
    pub busy_sent: u64,
    /// Fetches cancelled while still queued (hedge losers).
    pub cancelled: u64,
}

/// One fetch waiting for (or receiving) service.
#[derive(Debug, Clone)]
struct PendingFetch {
    fetch: u64,
    from: NodeId,
    server: ServerId,
    kind: MediaKind,
    object: String,
    level: u8,
    segment: u64,
    frames_per_segment: u32,
}

/// A media-server node: replicated content shards, a bounded service queue
/// and serving stats.
pub struct MediaActor {
    /// The node this media server runs on.
    pub node: NodeId,
    /// Service-model configuration.
    pub cfg: MediaNodeConfig,
    /// Replica shards by (origin multimedia server, media kind). Keys from
    /// different origin servers may collide, so shards are kept separate.
    pub shards: BTreeMap<(ServerId, MediaKind), MediaStore>,
    /// Serving statistics.
    pub stats: MediaNodeStats,
    /// Service-time multiplier injected by a `NodeSlow` fault (1 = nominal).
    pub slowdown: u32,
    /// The bounded request queue.
    queue: OverloadQueue<PendingFetch>,
    /// The request currently in service, if any.
    serving: Option<PendingFetch>,
}

impl MediaActor {
    /// An empty media node with default service costs.
    pub fn new(node: NodeId) -> Self {
        let cfg = MediaNodeConfig::default();
        let queue = OverloadQueue::new(cfg.queue_capacity);
        MediaActor {
            node,
            cfg,
            shards: BTreeMap::new(),
            stats: MediaNodeStats::default(),
            slowdown: 1,
            queue,
            serving: None,
        }
    }

    /// Replace the service-model configuration (resizes the queue bound).
    pub fn configure(&mut self, cfg: MediaNodeConfig) {
        self.queue.capacity = cfg.queue_capacity.max(1);
        self.cfg = cfg;
    }

    /// Install a replica of `object` for origin server `server` (content
    /// distribution at deployment time).
    pub fn install(&mut self, server: ServerId, object: MediaObject) {
        self.shards
            .entry((server, object.kind()))
            .or_default()
            .insert(object);
    }

    /// Total objects replicated onto this node.
    pub fn objects(&self) -> usize {
        self.shards.values().map(MediaStore::len).sum()
    }

    /// Requests currently queued (not counting the one in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Shedding statistics of the request queue.
    pub fn queue_stats(&self) -> hermes_server::OverloadQueueStats {
        self.queue.stats
    }

    /// Apply/lift a brownout: service times multiply by `factor`.
    pub fn set_slowdown(&mut self, factor: u32) {
        self.slowdown = factor.max(1);
    }

    /// Snapshot this media node's serving counters into the unified metrics
    /// registry, labelled with the node id (`peer`).
    pub fn publish_metrics(&self, obs: &mut Obs) {
        let l = Labels::for_peer(self.node.raw());
        let st = self.stats;
        obs.registry
            .counter_set("media.requests_served", l, st.requests_served);
        obs.registry
            .counter_set("media.frames_served", l, st.frames_served);
        obs.registry
            .counter_set("media.bytes_served", l, st.bytes_served);
        obs.registry.counter_set("media.not_found", l, st.not_found);
        obs.registry
            .counter_set("media.parts_sent", l, st.parts_sent);
        obs.registry.counter_set("media.busy_sent", l, st.busy_sent);
        obs.registry.counter_set("media.cancelled", l, st.cancelled);
        obs.registry
            .gauge_set("media.queue_len", l, self.queue.len() as f64);
    }

    /// Handle an incoming message addressed to this media node.
    pub fn on_message(&mut self, api: &mut SimApi<'_, ServiceMsg>, from: NodeId, msg: ServiceMsg) {
        match msg {
            ServiceMsg::MediaFetchRequest {
                fetch,
                server,
                kind,
                object,
                level,
                segment,
                frames_per_segment,
                deadline_micros,
                class,
            } => {
                // Existence is a cheap metadata check answered immediately;
                // only real service work queues.
                if self
                    .shards
                    .get(&(server, kind))
                    .and_then(|s| s.get(&object))
                    .is_none()
                {
                    self.stats.not_found += 1;
                    api.send_reliable(
                        self.node,
                        from,
                        ServiceMsg::MediaFetchError {
                            fetch,
                            reason: format!("object '{object}' not replicated here"),
                        },
                    );
                    return;
                }
                let req = QueuedRequest {
                    item: PendingFetch {
                        fetch,
                        from,
                        server,
                        kind,
                        object,
                        level,
                        segment,
                        frames_per_segment,
                    },
                    enqueued_at: api.now(),
                    deadline: MediaTime::from_micros(deadline_micros),
                    class,
                };
                for shed in self.queue.push(req, api.now()) {
                    self.stats.busy_sent += 1;
                    api.emit_val(
                        self.node,
                        Severity::Warn,
                        "fetch_shed",
                        Labels::for_peer(shed.item.from.raw()).segment(shed.item.segment),
                        self.queue.len() as i64,
                    );
                    api.send_reliable(
                        self.node,
                        shed.item.from,
                        ServiceMsg::MediaFetchBusy {
                            fetch: shed.item.fetch,
                        },
                    );
                }
                self.maybe_start(api);
            }
            ServiceMsg::MediaFetchCancel { fetch } => {
                // Best effort: only a still-queued fetch can be abandoned;
                // one already in service streams to completion.
                let before = self.queue.len();
                self.queue.retain(|p| p.fetch != fetch);
                self.stats.cancelled += (before - self.queue.len()) as u64;
            }
            _ => {} // media nodes speak only the fetch protocol
        }
    }

    /// Handle a timer on this media node.
    pub fn on_timer(&mut self, api: &mut SimApi<'_, ServiceMsg>, key: u64, _payload: u64) {
        if key != timers::TK_MEDIA_SVC {
            return;
        }
        if let Some(p) = self.serving.take() {
            self.finish(api, p);
        }
        self.maybe_start(api);
    }

    /// Start serving the queue head if the server is idle.
    fn maybe_start(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        if self.serving.is_some() {
            return;
        }
        // Deadline-expired entries are shed eagerly at dispatch.
        for shed in self.queue.expire(api.now()) {
            self.stats.busy_sent += 1;
            api.send_reliable(
                self.node,
                shed.item.from,
                ServiceMsg::MediaFetchBusy {
                    fetch: shed.item.fetch,
                },
            );
        }
        let Some(next) = self.queue.pop() else {
            return;
        };
        let p = next.item;
        let bytes = self.segment_size(&p);
        let service = self.service_time(bytes);
        self.serving = Some(p);
        api.set_timer(self.node, service, timers::TK_MEDIA_SVC, 0);
    }

    /// Total payload bytes of the segment `p` addresses.
    fn segment_size(&self, p: &PendingFetch) -> u64 {
        let stored = self
            .shards
            .get(&(p.server, p.kind))
            .and_then(|s| s.get(&p.object))
            .expect("existence checked at enqueue; shards are immutable");
        let frames = segment_frames(stored, GradeLevel(p.level), p.segment, p.frames_per_segment);
        segment_bytes(&frames)
    }

    /// Deterministic service time for a segment of `bytes` payload bytes.
    fn service_time(&self, bytes: u64) -> MediaDuration {
        let per_byte = self.cfg.per_mbyte.as_micros().max(0) as u64;
        let us = self.cfg.fixed_service.as_micros().max(0) as u64 + bytes * per_byte / (1 << 20);
        MediaDuration::from_micros(us as i64) * self.slowdown.max(1) as i64
    }

    /// Service of `p` completed: stream the segment back as transport parts.
    fn finish(&mut self, api: &mut SimApi<'_, ServiceMsg>, p: PendingFetch) {
        let stored = self
            .shards
            .get(&(p.server, p.kind))
            .and_then(|s| s.get(&p.object))
            .expect("existence checked at enqueue; shards are immutable");
        let frames = segment_frames(stored, GradeLevel(p.level), p.segment, p.frames_per_segment);
        let total = segment_bytes(&frames);
        self.stats.requests_served += 1;
        self.stats.frames_served += frames.len() as u64;
        self.stats.bytes_served += total;
        // Stream the segment as bounded transport parts — TCP does not
        // deliver megabytes atomically, and a single oversized message
        // could never clear a finite link queue. Only the final part
        // carries the frame specs; earlier parts model payload on the wire.
        const PART_BYTES: u64 = 64 * 1024;
        let mut frames = Some(frames);
        let mut remaining = total;
        loop {
            let part = remaining.min(PART_BYTES);
            remaining -= part;
            let last = remaining == 0;
            self.stats.parts_sent += 1;
            api.send_reliable(
                self.node,
                p.from,
                ServiceMsg::MediaFetchChunk {
                    fetch: p.fetch,
                    payload_bytes: part as u32,
                    last,
                    frames: if last {
                        frames.take().unwrap()
                    } else {
                        Vec::new()
                    },
                },
            );
            if last {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{Encoding, MediaDuration};

    #[test]
    fn install_and_count() {
        let mut m = MediaActor::new(NodeId::new(7));
        m.install(
            ServerId::new(0),
            MediaObject {
                key: "v.mpg".into(),
                encoding: Encoding::Mpeg,
                duration: MediaDuration::from_secs(8),
                seed: 1,
            },
        );
        m.install(
            ServerId::new(1),
            MediaObject {
                key: "v.mpg".into(),
                encoding: Encoding::Mpeg,
                duration: MediaDuration::from_secs(4),
                seed: 2,
            },
        );
        // Same key, different origin servers: two distinct replicas.
        assert_eq!(m.objects(), 2);
        assert_eq!(m.shards.len(), 2);
    }

    #[test]
    fn service_time_scales_with_bytes_and_slowdown() {
        let mut m = MediaActor::new(NodeId::new(7));
        let one_mib = m.service_time(1 << 20);
        assert_eq!(
            one_mib,
            m.cfg.fixed_service + m.cfg.per_mbyte,
            "1 MiB costs fixed + per-MiB"
        );
        m.set_slowdown(8);
        assert_eq!(m.service_time(1 << 20), one_mib * 8);
        m.set_slowdown(0); // clamped to nominal
        assert_eq!(m.service_time(1 << 20), one_mib);
    }
}

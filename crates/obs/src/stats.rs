//! Measurement primitives shared by the QoS managers, the metrics registry
//! and the experiment harness: streaming mean/variance, fixed-bucket
//! latency histograms, windowed rate meters and small sample-set helpers.
//!
//! (Migrated here from `hermes-simnet::metrics`, which now re-exports these
//! types, so the registry and the simulator agree on one implementation.)

use hermes_core::{MediaDuration, MediaTime};
use serde::{Deserialize, Serialize};

/// Streaming mean / variance / min / max accumulator (Welford).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
    /// Record one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }
    /// Record a duration in microseconds.
    pub fn push_duration(&mut self, d: MediaDuration) {
        self.push(d.as_micros() as f64);
    }
    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Minimum (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }
    /// Maximum (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
    /// Mean as a duration (for latency accumulators).
    pub fn mean_duration(&self) -> MediaDuration {
        MediaDuration::from_micros(self.mean() as i64)
    }
    /// Max as a duration.
    pub fn max_duration(&self) -> MediaDuration {
        MediaDuration::from_micros(self.max() as i64)
    }
}

/// A fixed-width bucket histogram over durations, with overflow bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurationHistogram {
    bucket_width: MediaDuration,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl DurationHistogram {
    /// `buckets` buckets of `bucket_width` each, plus an overflow bucket.
    pub fn new(bucket_width: MediaDuration, buckets: usize) -> Self {
        assert!(bucket_width.as_micros() > 0 && buckets > 0);
        DurationHistogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }
    /// Record one duration (negative durations clamp into bucket 0).
    pub fn record(&mut self, d: MediaDuration) {
        self.total += 1;
        let idx = d.as_micros().max(0) / self.bucket_width.as_micros();
        if (idx as usize) < self.buckets.len() {
            self.buckets[idx as usize] += 1;
        } else {
            self.overflow += 1;
        }
    }
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }
    /// The approximate p-quantile (upper bucket edge), `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> MediaDuration {
        if self.total == 0 {
            return MediaDuration::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut cum = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return self.bucket_width * (i as i64 + 1);
            }
        }
        // In the overflow bucket: report one width past the last edge.
        self.bucket_width * (self.buckets.len() as i64 + 1)
    }
    /// Fraction of samples in the overflow bucket.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflow as f64 / self.total as f64
        }
    }
}

/// A windowed rate meter: events per second over a sliding window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateMeter {
    window: MediaDuration,
    events: std::collections::VecDeque<MediaTime>,
}

impl RateMeter {
    /// Meter with the given window length.
    pub fn new(window: MediaDuration) -> Self {
        assert!(window.as_micros() > 0);
        RateMeter {
            window,
            events: std::collections::VecDeque::new(),
        }
    }
    /// Record an event at `now`.
    pub fn record(&mut self, now: MediaTime) {
        self.events.push_back(now);
        self.evict(now);
    }
    fn evict(&mut self, now: MediaTime) {
        let cutoff = now - self.window;
        while matches!(self.events.front(), Some(&t) if t < cutoff) {
            self.events.pop_front();
        }
    }
    /// Events per second over the window ending at `now`.
    pub fn rate(&mut self, now: MediaTime) -> f64 {
        self.evict(now);
        self.events.len() as f64 / self.window.as_secs_f64()
    }
    /// Events currently inside the window.
    pub fn count(&self) -> usize {
        self.events.len()
    }
}

/// Mean of a projected metric over a sample set (0 if empty) — the one
/// shared implementation behind the experiment harness's per-run summaries.
pub fn mean_by<T>(items: &[T], f: impl Fn(&T) -> f64) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    items.iter().map(f).sum::<f64>() / items.len() as f64
}

/// Max of a projected duration metric over a sample set.
pub fn max_dur_by<T>(items: &[T], f: impl Fn(&T) -> MediaDuration) -> MediaDuration {
    items
        .iter()
        .map(f)
        .fold(MediaDuration::ZERO, |a, b| a.max(b))
}

/// Nearest-rank percentile of an unsorted sample set (0 if empty);
/// `q` in [0, 1]. Sorts a copy — meant for end-of-run summaries.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s[((s.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_moments() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.push(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-9);
        assert!((a.variance() - 4.0).abs() < 1e-9);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 9.0);
    }

    #[test]
    fn empty_accumulator_is_zeroes() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 0.0);
    }

    #[test]
    fn accumulator_durations() {
        let mut a = Accumulator::new();
        a.push_duration(MediaDuration::from_millis(10));
        a.push_duration(MediaDuration::from_millis(20));
        assert_eq!(a.mean_duration(), MediaDuration::from_millis(15));
        assert_eq!(a.max_duration(), MediaDuration::from_millis(20));
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = DurationHistogram::new(MediaDuration::from_millis(10), 10);
        for i in 0..100 {
            h.record(MediaDuration::from_millis(i)); // uniform 0..100ms
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), MediaDuration::from_millis(50));
        assert_eq!(h.quantile(1.0), MediaDuration::from_millis(100));
        assert_eq!(h.overflow_fraction(), 0.0);
    }

    #[test]
    fn histogram_overflow() {
        let mut h = DurationHistogram::new(MediaDuration::from_millis(1), 5);
        h.record(MediaDuration::from_millis(100));
        h.record(MediaDuration::from_millis(2));
        assert!((h.overflow_fraction() - 0.5).abs() < 1e-9);
        // Negative durations clamp into the first bucket.
        h.record(MediaDuration::from_millis(-5));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn empty_histogram_quantile_zero() {
        let h = DurationHistogram::new(MediaDuration::from_millis(1), 4);
        assert_eq!(h.quantile(0.9), MediaDuration::ZERO);
    }

    #[test]
    fn histogram_quantile_q_zero_is_first_bucket_edge() {
        let mut h = DurationHistogram::new(MediaDuration::from_millis(10), 10);
        h.record(MediaDuration::from_millis(35)); // bucket 3
        h.record(MediaDuration::from_millis(77)); // bucket 7
                                                  // q=0 degenerates to a zero-sample target, which the cumulative
                                                  // scan satisfies at the very first bucket edge; any q that needs
                                                  // at least one sample reports the first occupied bucket instead.
        assert_eq!(h.quantile(0.0), MediaDuration::from_millis(10));
        assert_eq!(h.quantile(0.01), MediaDuration::from_millis(40));
    }

    #[test]
    fn histogram_quantile_between_bucket_edges() {
        let mut h = DurationHistogram::new(MediaDuration::from_millis(10), 10);
        for _ in 0..10 {
            h.record(MediaDuration::from_millis(5)); // bucket 0
        }
        for _ in 0..10 {
            h.record(MediaDuration::from_millis(95)); // bucket 9
        }
        // Any q that lands strictly inside the low bucket's mass reports
        // that bucket's upper edge; just past it jumps to the high bucket.
        assert_eq!(h.quantile(0.25), MediaDuration::from_millis(10));
        assert_eq!(h.quantile(0.5), MediaDuration::from_millis(10));
        assert_eq!(h.quantile(0.51), MediaDuration::from_millis(100));
    }

    #[test]
    fn histogram_quantile_single_sample() {
        let mut h = DurationHistogram::new(MediaDuration::from_millis(10), 10);
        h.record(MediaDuration::from_millis(42)); // bucket 4
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), MediaDuration::from_millis(50), "q={q}");
        }
    }

    #[test]
    fn histogram_quantile_overflow_bucket() {
        let mut h = DurationHistogram::new(MediaDuration::from_millis(10), 4);
        h.record(MediaDuration::from_millis(5));
        h.record(MediaDuration::from_millis(1_000)); // overflow
                                                     // The median is in-range, the max is the overflow sentinel: one
                                                     // width past the last real edge (4 buckets ⇒ 50ms).
        assert_eq!(h.quantile(0.5), MediaDuration::from_millis(10));
        assert_eq!(h.quantile(1.0), MediaDuration::from_millis(50));
        // q clamps: out-of-range q behaves like the endpoints.
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
    }

    #[test]
    fn rate_meter_window() {
        let mut m = RateMeter::new(MediaDuration::from_secs(1));
        for i in 0..10 {
            m.record(MediaTime::from_millis(i * 100)); // 10 events in 1s
        }
        let r = m.rate(MediaTime::from_millis(900));
        assert!((r - 10.0).abs() < 1e-9, "{r}");
        // 2 seconds later everything expired.
        let r = m.rate(MediaTime::from_millis(2900));
        assert_eq!(r, 0.0);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn sample_set_helpers() {
        assert_eq!(mean_by::<f64>(&[], |x| *x), 0.0);
        assert_eq!(mean_by(&[1.0, 2.0, 3.0], |x| *x), 2.0);
        assert_eq!(
            max_dur_by(&[1i64, 5, 3], |x| MediaDuration::from_millis(*x)),
            MediaDuration::from_millis(5)
        );
        assert_eq!(percentile(&[], 0.5), 0.0);
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
    }
}

//! Global invariant checkers over a finished run's observability capture —
//! the back half of the chaos harness (`hermes_simnet::chaos` generates
//! the fault schedules whose runs these checkers judge).
//!
//! Each checker consumes the deterministic main event log (`Info` and
//! above, `(at, seq)`-ordered) and/or the final [`MetricsRegistry`]
//! snapshot, and returns [`Violation`]s — statements that a *system-wide*
//! property was broken, not that a component misbehaved locally. The
//! catalog:
//!
//! * **Epoch monotonicity** — `stream_epoch` / `group_epoch` announcements
//!   never regress for a given stream or shared group.
//! * **Session lifecycle** — every session a server opens is closed
//!   exactly once (teardown, crash loss, or supersession by a rebuild),
//!   never re-opened, never leaked past the end of the run; a client that
//!   abandoned a session never reports progress on it afterwards.
//! * **Frame discipline** — no client ever played a duplicate frame.
//! * **Breaker legality** — per-replica breaker transitions follow the
//!   Closed → Open → HalfOpen → {Open, Closed} machine.
//! * **Conservation** — every media transport part sent was received or
//!   died with an accounted fault (engine fault ledger).
//! * **Bounded recovery** — after the last injected fault clears, the
//!   system returns to quiet: no disruption events past a settle window.
//!
//! Checkers are individually public so property tests can feed each one
//! synthetic streams with known violations.

use crate::event::{Event, Labels};
use crate::registry::MetricsRegistry;
use hermes_core::{MediaDuration, MediaTime};
use std::collections::{BTreeMap, BTreeSet};

/// One broken invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which checker fired (`epoch_monotonicity`, `session_lifecycle`, …).
    pub invariant: &'static str,
    /// Sim-time of the offending observation ([`MediaTime::ZERO`] for
    /// registry-level checks, which see only the final snapshot).
    pub at: MediaTime,
    /// Human-readable statement of the breakage.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &'static str, at: MediaTime, detail: String) -> Self {
        Violation {
            invariant,
            at,
            detail,
        }
    }

    /// Canonical one-line rendering.
    pub fn render(&self) -> String {
        format!(
            "[{}] t={}µs {}",
            self.invariant,
            self.at.as_micros(),
            self.detail
        )
    }
}

/// Configuration for [`check_run`].
#[derive(Debug, Clone)]
pub struct InvariantConfig {
    /// The instant the last injected fault cleared (the fault plan's final
    /// event). `None` disables the bounded-recovery check.
    pub last_fault_clear: Option<MediaTime>,
    /// Grace window after `last_fault_clear` within which disruption
    /// events are still legitimate fallout.
    pub settle: MediaDuration,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        InvariantConfig {
            last_fault_clear: None,
            settle: MediaDuration::from_secs(5),
        }
    }
}

/// Run the full invariant catalog over a finished run.
pub fn check_run(
    events: &[Event],
    registry: &MetricsRegistry,
    cfg: &InvariantConfig,
) -> Vec<Violation> {
    let mut v = Vec::new();
    v.extend(check_epoch_monotonicity(events));
    v.extend(check_session_lifecycle(events));
    v.extend(check_frame_discipline(registry));
    v.extend(check_breaker_legality(events));
    v.extend(check_conservation(registry));
    if let Some(clear) = cfg.last_fault_clear {
        v.extend(check_bounded_recovery(events, clear, cfg.settle));
    }
    v
}

/// `stream_epoch` (per server node + session + stream) and `group_epoch`
/// (per server node + group, carried in the `stream` label) values must be
/// strictly increasing: an epoch regression means stale-fetch fencing is
/// broken and frames from a superseded window could be delivered.
pub fn check_epoch_monotonicity(events: &[Event]) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut last: BTreeMap<(u64, u64, u64, u64), i64> = BTreeMap::new();
    for e in events {
        let key = match e.name {
            "stream_epoch" => (
                e.node,
                0,
                e.labels.session.unwrap_or(0),
                e.labels.stream.unwrap_or(0),
            ),
            "group_epoch" => (e.node, 1, 0, e.labels.stream.unwrap_or(0)),
            _ => continue,
        };
        if let Some(&prev) = last.get(&key) {
            if e.value <= prev {
                v.push(Violation::new(
                    "epoch_monotonicity",
                    e.at,
                    format!(
                        "{}{} on node {} regressed {} → {}",
                        e.name,
                        e.labels.render(),
                        e.node,
                        prev,
                        e.value
                    ),
                ));
            }
        }
        last.insert(key, e.value);
    }
    v
}

/// Server-side session open/close discipline plus client-fate coherence.
///
/// Opens: `session_connect`, `session_rebuilt` (which also closes the old
/// session carried in its `value`). Closes: `session_teardown`,
/// `session_crash_lost`. Every open session must be closed exactly once
/// and never re-opened; a session still open when the log ends is leaked.
/// Client side: `session_abandoned` is absorbing — a later
/// `presentation_complete` or second abandonment on the same (client,
/// session) is a conflicting fate.
pub fn check_session_lifecycle(events: &[Event]) -> Vec<Violation> {
    let mut v = Vec::new();
    // (server node, session) -> still open?
    let mut open: BTreeSet<(u64, u64)> = BTreeSet::new();
    // Sessions that ever existed, to distinguish "close of unknown" from
    // "double close".
    let mut known: BTreeSet<(u64, u64)> = BTreeSet::new();
    // (client node, session) -> abandoned at.
    let mut abandoned: BTreeMap<(u64, u64), MediaTime> = BTreeMap::new();
    for e in events {
        let sid = e.labels.session.unwrap_or(0);
        match e.name {
            "session_connect" | "session_rebuilt" => {
                let key = (e.node, sid);
                if e.name == "session_rebuilt" {
                    let old = (e.node, e.value as u64);
                    // The rebuild supersedes the old incarnation's session:
                    // that id must have existed and may or may not still be
                    // open (a crash loss already closed it).
                    open.remove(&old);
                    if !known.contains(&old) {
                        v.push(Violation::new(
                            "session_lifecycle",
                            e.at,
                            format!(
                                "session_rebuilt{} supersedes unknown session {} on node {}",
                                e.labels.render(),
                                e.value,
                                e.node
                            ),
                        ));
                    }
                }
                if !open.insert(key) {
                    v.push(Violation::new(
                        "session_lifecycle",
                        e.at,
                        format!(
                            "{}{} re-opened live session on node {}",
                            e.name,
                            e.labels.render(),
                            e.node
                        ),
                    ));
                }
                known.insert(key);
            }
            "session_teardown" | "session_crash_lost" => {
                let key = (e.node, sid);
                if !open.remove(&key) {
                    v.push(Violation::new(
                        "session_lifecycle",
                        e.at,
                        format!(
                            "{}{} closed a session not open on node {} ({})",
                            e.name,
                            e.labels.render(),
                            e.node,
                            if known.contains(&key) {
                                "double close"
                            } else {
                                "never opened"
                            }
                        ),
                    ));
                }
            }
            "session_abandoned" => {
                let key = (e.node, sid);
                if abandoned.insert(key, e.at).is_some() {
                    v.push(Violation::new(
                        "session_lifecycle",
                        e.at,
                        format!("session {sid} abandoned twice by client node {}", e.node),
                    ));
                }
            }
            "presentation_complete" => {
                if let Some(&when) = abandoned.get(&(e.node, sid)) {
                    v.push(Violation::new(
                        "session_lifecycle",
                        e.at,
                        format!(
                            "client node {} completed a presentation on session {sid} \
                             abandoned at {}µs",
                            e.node,
                            when.as_micros()
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    for (node, sid) in open {
        v.push(Violation::new(
            "session_lifecycle",
            events.last().map(|e| e.at).unwrap_or(MediaTime::ZERO),
            format!("session {sid} on node {node} leaked: never reached a terminal state"),
        ));
    }
    v
}

/// No client may ever present the same *content* twice: a stale frame
/// reaching the renderer means epoch fencing or receiver reset logic let
/// an upstream layer re-deliver played material. Concealment replays
/// (`client.duplicates_played` — the previous frame re-presented to
/// smooth an underflow or skew repair) are deliberate degraded-mode
/// behavior under faults and are *not* violations.
pub fn check_frame_discipline(registry: &MetricsRegistry) -> Vec<Violation> {
    let mut v = Vec::new();
    for (key, value) in registry.counters() {
        if key.name == "client.stale_frames" && value > 0 {
            v.push(Violation::new(
                "frame_discipline",
                MediaTime::ZERO,
                format!("{} stale frames presented ({})", value, key.render()),
            ));
        }
    }
    v
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed,
    Open,
    HalfOpen,
}

/// Breaker state-machine legality per (server node, replica): trips only
/// from Closed/HalfOpen, probes only from Open, closes only from HalfOpen.
/// `breaker_reset` (replica incarnation change) and a crash of the server
/// node itself (whose health map is RAM) return circuits to Closed.
pub fn check_breaker_legality(events: &[Event]) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut state: BTreeMap<(u64, u64), Breaker> = BTreeMap::new();
    for e in events {
        match e.name {
            "node_crash" => {
                // The crashed node's own breaker map is volatile state.
                state.retain(|(srv, _), _| *srv != e.node);
                continue;
            }
            "breaker_trip" | "breaker_probe" | "breaker_close" | "breaker_reset" => {}
            _ => continue,
        }
        let key = (e.node, e.labels.peer.unwrap_or(0));
        let cur = *state.get(&key).unwrap_or(&Breaker::Closed);
        let next = match (e.name, cur) {
            ("breaker_trip", Breaker::Closed | Breaker::HalfOpen) => Breaker::Open,
            ("breaker_probe", Breaker::Open) => Breaker::HalfOpen,
            ("breaker_close", Breaker::HalfOpen) => Breaker::Closed,
            ("breaker_reset", _) => Breaker::Closed,
            _ => {
                v.push(Violation::new(
                    "breaker_legality",
                    e.at,
                    format!(
                        "{}{} on node {} illegal from state {:?}",
                        e.name,
                        e.labels.render(),
                        e.node,
                        cur
                    ),
                ));
                continue;
            }
        };
        state.insert(key, next);
    }
    v
}

/// Conservation of media transport accounting: every part a media node put
/// on the wire was received by a server or died with an accounted fault
/// (engine `fault_drops` — stale-incarnation deliveries, torn-down
/// reliable holds — or exhausted retransmission budgets). Valid only after
/// the run has drained; parts still in flight would read as leaks.
pub fn check_conservation(registry: &MetricsRegistry) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut sent = 0u64;
    let mut received = 0u64;
    let mut fetches = 0u64;
    let mut chunks = 0u64;
    for (key, value) in registry.counters() {
        match key.name {
            "media.parts_sent" => sent += value,
            "server.parts_received" => received += value,
            "server.fetches" => fetches += value,
            "server.chunks" => chunks += value,
            _ => {}
        }
    }
    let ledger = registry.counter("sim.fault_drops", Labels::NONE)
        + registry.counter("sim.reliable_failures", Labels::NONE);
    if received > sent {
        v.push(Violation::new(
            "conservation",
            MediaTime::ZERO,
            format!("servers received {received} media parts but only {sent} were sent"),
        ));
    } else if sent - received > ledger {
        v.push(Violation::new(
            "conservation",
            MediaTime::ZERO,
            format!(
                "media parts leaked: sent {sent}, received {received}, \
                 fault ledger explains only {ledger}"
            ),
        ));
    }
    if chunks > fetches {
        v.push(Violation::new(
            "conservation",
            MediaTime::ZERO,
            format!("{chunks} completed fetches exceed {fetches} issued"),
        ));
    }
    v
}

/// Event names that signal live disruption. Any of these firing after the
/// last fault cleared plus the settle window means the system failed to
/// return to steady state.
const DISRUPTION: &[&str] = &[
    "playout_gap",
    "server_silent",
    "session_abandoned",
    "session_crash_lost",
    "reliable_abandon",
    "breaker_trip",
    "media_failover",
    "fetch_error",
];

/// Bounded recovery: after `clear + settle`, no disruption events.
pub fn check_bounded_recovery(
    events: &[Event],
    clear: MediaTime,
    settle: MediaDuration,
) -> Vec<Violation> {
    let deadline = clear + settle;
    events
        .iter()
        .filter(|e| e.at > deadline && DISRUPTION.contains(&e.name))
        .map(|e| {
            Violation::new(
                "bounded_recovery",
                e.at,
                format!(
                    "{}{} on node {} at {}µs — {}µs past the recovery deadline",
                    e.name,
                    e.labels.render(),
                    e.node,
                    e.at.as_micros(),
                    (e.at - deadline).as_micros()
                ),
            )
        })
        .collect()
}

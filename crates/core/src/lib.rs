//! # hermes-core
//!
//! Foundational types for **Hermes-OD**, a reproduction of *"On-Demand
//! Hypermedia/Multimedia Service over Broadband Networks"* (Bouras et al.,
//! HPDC-5, 1996) and its extended journal version.
//!
//! This crate holds the paper's conceptual model, independent of any
//! substrate:
//!
//! * [`time`] — exact microsecond time arithmetic ([`MediaTime`],
//!   [`MediaDuration`]);
//! * [`ids`] — strongly-typed identifier namespaces;
//! * [`media_kind`] — media types and encodings of the protocol stack;
//! * [`layout`] — spatial placement (the `WHERE`/`HEIGHT`/`WIDTH` model);
//! * [`interval`] — temporal intervals with Allen's relations;
//! * [`scenario`] — the pre-orchestrated presentation scenario (content /
//!   layout / synchronization / interconnection abstractions);
//! * [`schedule`] — the client-side playout structures `E_i` and timeline;
//! * [`skew`] — intermedia-skew algebra and the short-term repair policy;
//! * [`grading`] — quality ladders and the long-term grading policy;
//! * [`qos`] — QoS requirements, measurements and pricing classes;
//! * [`error`] — shared error types.

#![warn(missing_docs)]

pub mod error;
pub mod grading;
pub mod ids;
pub mod interval;
pub mod layout;
pub mod media_kind;
pub mod qos;
pub mod scenario;
pub mod schedule;
pub mod skew;
pub mod time;

pub use error::{ServiceError, ServiceResult};
pub use grading::{
    GradeDecision, GradeLevel, GradingHysteresis, GradingOrder, LadderRung, QualityLadder,
};
pub use ids::{
    ComponentId, ConnectionId, DocumentId, IdAllocator, MediaServerId, NodeId, ServerId, SessionId,
    StreamId, UserId,
};
pub use interval::{AllenRelation, Interval};
pub use layout::{HeadingLevel, Region, TextStyle};
pub use media_kind::{Encoding, MediaKind};
pub use qos::{PresentationFloor, PricingClass, QosMeasurement, QosRequirement};
pub use scenario::{
    ComponentContent, HyperLink, LinkKind, LinkTarget, MediaComponent, MediaSource, Scenario,
    ScenarioIssue, SyncGroup, TextBlock, TextRun,
};
pub use schedule::{PlayoutEntry, PlayoutSchedule, TimelineEvent, TimelineEventKind};
pub use skew::{plan_repair, RepairSide, Skew, SkewPolicy, SkewRepair, SkewTolerance};
pub use time::{MediaDuration, MediaTime};

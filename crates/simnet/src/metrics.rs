//! Measurement helpers used by the QoS managers and the experiment harness.
//!
//! The implementations live in [`hermes_obs::stats`] (one shared set of
//! primitives for the simulator, the metrics registry and the bench
//! harness); this module re-exports them under their historical simnet
//! paths so existing call sites keep working.

pub use hermes_obs::stats::{
    max_dur_by, mean_by, percentile, Accumulator, DurationHistogram, RateMeter,
};

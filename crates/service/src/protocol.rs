//! The service's application protocol messages.
//!
//! The protocol stack (paper Fig. 5): the presentation scenario, discrete
//! media and all control traffic travel over the reliable (TCP-like)
//! transport; continuous media travel as RTP over the datagram (UDP-like)
//! transport; RTCP receiver reports ride the datagram path back. Each
//! message declares its wire size so the simulated links can charge
//! serialization delay faithfully.

use hermes_core::{
    ComponentId, DocumentId, MediaKind, MediaTime, PricingClass, QosMeasurement, ServerId,
    SessionId, UserId,
};
use hermes_media::SegmentFrame;
use hermes_rtp::{RtcpPacket, RtpPacket};
use hermes_server::{SubscriptionForm, TopicEntry};
use hermes_simnet::WireSize;

/// TCP+IP header overhead charged to reliable messages.
pub const TCP_IP_OVERHEAD: usize = 40;

/// Which stack path a message takes (for the FIG5 byte accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StackPath {
    /// Control + scenario + discrete media over TCP.
    ControlTcp,
    /// Continuous media over RTP/UDP.
    MediaRtpUdp,
    /// Feedback over RTCP/UDP.
    FeedbackRtcpUdp,
    /// Asynchronous mail over SMTP/MIME.
    MailSmtp,
    /// Server-to-server media-tier fetch traffic (segment pulls from the
    /// distributed media nodes), over the reliable path.
    MediaFetchTcp,
}

/// A search hit returned by the distributed search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    /// The server holding the lesson (the "server location" of §6.2.2).
    pub server: ServerId,
    /// The matching document.
    pub document: DocumentId,
    /// Its title.
    pub title: String,
}

/// A simulated e-mail message (SMTP/MIME path of Fig. 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MailMessage {
    /// Sender address.
    pub from: String,
    /// Recipient address.
    pub to: String,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
    /// MIME attachments as (content-type, size-bytes) pairs.
    pub attachments: Vec<(String, u32)>,
}

impl MailMessage {
    /// Approximate RFC822+MIME size.
    pub fn wire_bytes(&self) -> usize {
        let headers = 128 + self.from.len() + self.to.len() + self.subject.len();
        let attach: usize = self
            .attachments
            .iter()
            .map(|(ct, sz)| ct.len() + 64 + *sz as usize)
            .sum();
        headers + self.body.len() + attach
    }
}

/// All messages exchanged by the service's actors.
#[derive(Debug, Clone)]
pub enum ServiceMsg {
    // ---- control-plane reliability envelope ----
    /// A control message wrapped with a request id. The receiver always
    /// answers with [`ServiceMsg::Ack`] carrying the same id (even for a
    /// duplicate), and processes the inner message only on first sight of
    /// the id — together with sender-side retransmission this gives
    /// effectively-once control-plane semantics across crashes and
    /// partitions.
    Tracked {
        /// Sender-unique request id.
        req: u64,
        /// The wrapped control message.
        inner: Box<ServiceMsg>,
    },
    /// Acknowledges receipt (and eventual processing) of a tracked request.
    Ack {
        /// The request id being acknowledged.
        req: u64,
    },
    /// Server → client: periodic per-session liveness beat, interleaved
    /// with (and implied by) stream traffic. A client declares the server
    /// dead after K consecutive missed beats.
    Heartbeat {
        /// The session.
        session: SessionId,
        /// Monotone beat counter.
        seq: u64,
    },
    /// Client → server: echo of a liveness beat. The server uses acks (and
    /// stream feedback) to notice *client* death: a session whose client
    /// has answered nothing for the configured timeout is torn down instead
    /// of pinning its admission reservation forever.
    HeartbeatAck {
        /// The session.
        session: SessionId,
        /// The beat being acknowledged.
        seq: u64,
    },
    /// Client → server: re-establish a session after a suspected server
    /// failure, carrying enough context to rebuild server-side state if the
    /// server lost it (restart) or to resume in place (false alarm /
    /// network partition).
    ReconnectRequest {
        /// The session being recovered.
        session: SessionId,
        /// The client's identity, if subscribed.
        user: Option<UserId>,
        /// The pricing contract.
        class: PricingClass,
        /// The document being presented when contact was lost, if any.
        document: Option<DocumentId>,
        /// Playout position reached, in microseconds since presentation
        /// start — the server fast-forwards its sources past this point.
        position_micros: i64,
    },
    /// Server → client: the session was recovered.
    ReconnectAck {
        /// The session id the client asked to recover.
        old_session: SessionId,
        /// The live session id (differs from `old_session` when the server
        /// had to rebuild state after a restart).
        session: SessionId,
    },

    // ---- connection / session control (TCP path) ----
    /// Client → server: connection request with optional existing identity.
    Connect {
        /// Existing subscriber id, if any.
        user: Option<UserId>,
        /// The pricing contract claimed.
        class: PricingClass,
    },
    /// Server → client: connection accepted; session established.
    ConnectAck {
        /// The session id allocated by the server.
        session: SessionId,
        /// Whether the user must subscribe first.
        must_subscribe: bool,
    },
    /// Server → client: connection rejected by admission.
    ConnectReject {
        /// Why.
        reason: String,
    },
    /// Client → server: filled-in subscription form.
    Subscribe {
        /// The session performing the subscription.
        session: SessionId,
        /// The form.
        form: SubscriptionForm,
    },
    /// Server → client: subscription accepted; identity issued.
    SubscribeAck {
        /// The session.
        session: SessionId,
        /// The new user id.
        user: UserId,
    },
    /// Server → client: the list of available topics (service contents).
    TopicList {
        /// The session.
        session: SessionId,
        /// The topics.
        topics: Vec<TopicEntry>,
    },
    /// Client → server: request a document/lesson.
    DocRequest {
        /// The session.
        session: SessionId,
        /// The document wanted.
        document: DocumentId,
    },
    /// Server → client: the presentation scenario (markup text) plus the
    /// per-stream delivery lead the flow scheduler applied.
    ScenarioResponse {
        /// The session.
        session: SessionId,
        /// The document.
        document: DocumentId,
        /// The markup text ("actually a text file").
        markup: String,
        /// The flow lead (client uses it to size its expectation of the
        /// initial prefill delay).
        lead_micros: i64,
    },
    /// Server → client: the request failed.
    DocError {
        /// The session.
        session: SessionId,
        /// Why.
        reason: String,
    },
    /// Client → server: pause the presentation (stop transmitting).
    Pause {
        /// The session.
        session: SessionId,
    },
    /// Client → server: resume from the pause point.
    Resume {
        /// The session.
        session: SessionId,
    },
    /// Client → server: disable one media stream of the presentation.
    DisableStream {
        /// The session.
        session: SessionId,
        /// The stream to stop sending.
        component: ComponentId,
    },
    /// Client → server: suspend the connection (remote-link migration);
    /// the server keeps it alive for a grace period.
    SuspendConnection {
        /// The session.
        session: SessionId,
    },
    /// Client → server: resume a previously suspended connection.
    ResumeSuspended {
        /// The session.
        session: SessionId,
    },
    /// Server → client: a suspended connection's grace period expired and
    /// it was closed ("the connection closes and the attached client is
    /// informed about the event").
    SuspendExpired {
        /// The session.
        session: SessionId,
    },
    /// Client → server: disconnect.
    Disconnect {
        /// The session.
        session: SessionId,
    },
    /// Server → client: a stream was stopped server-side (grading floor).
    StreamStopped {
        /// The session.
        session: SessionId,
        /// The stopped stream.
        component: ComponentId,
    },
    /// Server → client: a stream's quality level changed (informational).
    StreamRegraded {
        /// The session.
        session: SessionId,
        /// The stream.
        component: ComponentId,
        /// New ladder level.
        level: u8,
    },

    // ---- stream sharing (batching / patching, TCP control path) ----
    /// Server → client: this session's continuous media arrive over a
    /// shared delivery group rather than a private flow. When
    /// `offset_micros` is non-negative the shared flow already started and
    /// the client must request the missed prefix with
    /// [`ServiceMsg::PatchRequest`].
    StreamJoin {
        /// The session being attached.
        session: SessionId,
        /// The shared group (also the simulator multicast group id).
        group: u64,
        /// The group's delivery epoch (bumped on media-tier failover).
        epoch: u64,
        /// Approximate presentation time already missed (the server computes
        /// the exact patch cutoffs when the patch is requested); −1 when
        /// joining before the shared flow starts — no patch needed.
        offset_micros: i64,
    },
    /// Client → server: send the missed prefix of the shared flow as a
    /// short unicast patch (Hua/Cai/Sheu patching).
    PatchRequest {
        /// The session.
        session: SessionId,
        /// The shared group being patched into.
        group: u64,
    },
    /// Server → group members (multicast): the group's delivery epoch
    /// advanced — a media-node fault failed the whole shared flow over
    /// under one epoch bump.
    GroupEpoch {
        /// The shared group.
        group: u64,
        /// The new epoch.
        epoch: u64,
    },

    // ---- media (RTP/UDP path) ----
    /// Media server → client: one RTP packet of a continuous stream.
    RtpData {
        /// The session.
        session: SessionId,
        /// Which component the packet belongs to.
        component: ComponentId,
        /// The RTP packet.
        packet: RtpPacket,
        /// Transmission instant (the "timestamping indication" the client
        /// QoS manager uses for delay measurements).
        sent_at: MediaTime,
    },
    /// Server → client: one segment of a discrete media object (image /
    /// text file) pushed over the reliable path. Large objects are
    /// segmented to MTU-sized chunks, as TCP would.
    DiscreteData {
        /// The session.
        session: SessionId,
        /// The component.
        component: ComponentId,
        /// This segment's payload size in bytes.
        size: u32,
        /// Total object size in bytes.
        total: u32,
        /// True on the final segment.
        last: bool,
        /// Transmission instant.
        sent_at: MediaTime,
    },

    /// Media server → client: an RTCP sender report for one stream (sent
    /// periodically alongside the data, per RFC 3550).
    RtcpSenderReport {
        /// The session.
        session: SessionId,
        /// The stream the report describes.
        component: ComponentId,
        /// The report packet.
        packet: RtcpPacket,
    },

    // ---- media tier (server ↔ media-server node, TCP path) ----
    /// Multimedia server → media node: pull one segment of a media object.
    /// The protocol is stateless — a segment is fully identified by
    /// `(server, object, level, segment, frames_per_segment)` — so any
    /// replica can serve any request and failover is a re-request.
    MediaFetchRequest {
        /// Puller-unique fetch id for response matching.
        fetch: u64,
        /// The multimedia server whose content shard is addressed.
        server: ServerId,
        /// The media kind of the object (selects the shard's store).
        kind: MediaKind,
        /// The object's storage key.
        object: String,
        /// Quality level to compute frame sizes at.
        level: u8,
        /// Segment index within the object.
        segment: u64,
        /// Frames per segment the puller addresses with.
        frames_per_segment: u32,
        /// Playout deadline (absolute sim time, µs): past it the segment is
        /// useless, so an overloaded media node sheds the request instead
        /// of serving it late.
        deadline_micros: i64,
        /// Pricing class of the requesting session (cheapest shed first).
        class: PricingClass,
    },
    /// Media node → multimedia server: the requested segment's frame
    /// content. The wire size charges the frame payload — this is the hop
    /// where media bytes genuinely cross the network between servers.
    ///
    /// A large segment is streamed as several bounded *transport parts*
    /// (TCP does not deliver megabytes atomically): every part charges its
    /// `payload_bytes` on the wire, and only the part with `last == true`
    /// carries the frame specs — the logical chunk the puller consumes.
    /// In-order reliable delivery guarantees the last part arrives after
    /// all payload crossed.
    MediaFetchChunk {
        /// The fetch id being answered.
        fetch: u64,
        /// Frame payload bytes carried by this transport part.
        payload_bytes: u32,
        /// Final part of the segment?
        last: bool,
        /// Frame specs (sizes + key flags) of the whole segment; empty on
        /// non-final parts. Always `frames_per_segment` long on the final
        /// part — serving is unbounded past the object's duration; the
        /// puller's pacer bounds the stream.
        frames: Vec<SegmentFrame>,
    },
    /// Media node → multimedia server: the fetch could not be served.
    MediaFetchError {
        /// The fetch id being answered.
        fetch: u64,
        /// Why.
        reason: String,
    },
    /// Media node → multimedia server: the fetch was shed by overload
    /// control (queue full or deadline unmeetable). Unlike
    /// [`ServiceMsg::MediaFetchError`] this is transient — the puller
    /// records a failure against the replica and re-requests elsewhere
    /// rather than stopping the stream.
    MediaFetchBusy {
        /// The fetch id being shed.
        fetch: u64,
    },
    /// Multimedia server → media node: abandon a fetch if still queued (the
    /// hedged duplicate already won). Best-effort — a fetch already being
    /// served streams to completion.
    MediaFetchCancel {
        /// The fetch id to abandon.
        fetch: u64,
    },

    // ---- feedback (RTCP path) ----
    /// Client → server: periodic feedback report (RTCP receiver reports
    /// plus the QoS manager's per-stream measurements).
    Feedback {
        /// The session.
        session: SessionId,
        /// Per-stream QoS measurements.
        measurements: Vec<(ComponentId, QosMeasurement)>,
        /// The raw RTCP receiver reports.
        rtcp: Vec<RtcpPacket>,
    },

    // ---- distributed search (TCP path) ----
    /// Client → home server: search the whole service.
    SearchRequest {
        /// The session.
        session: SessionId,
        /// The search token.
        token: String,
        /// Query id for response matching.
        query: u64,
    },
    /// Home server → other server: fan out the query.
    SearchFanout {
        /// Query id.
        query: u64,
        /// The token.
        token: String,
        /// Node to send results back to.
        origin: hermes_core::NodeId,
    },
    /// Other server → home server: partial results.
    SearchPartial {
        /// Query id.
        query: u64,
        /// Hits on the responding server.
        hits: Vec<SearchHit>,
    },
    /// Home server → client: merged results.
    SearchResponse {
        /// The session.
        session: SessionId,
        /// Query id.
        query: u64,
        /// All hits across the service.
        hits: Vec<SearchHit>,
    },

    // ---- annotations (TCP path) ----
    /// Client → server: annotate a document with the user's own remarks
    /// (§5: "the user may also annotate the selected document").
    Annotate {
        /// The session (identifies the user).
        session: SessionId,
        /// The annotated document.
        document: DocumentId,
        /// The remark text.
        text: String,
    },
    /// Client → server: fetch the user's annotations on a document.
    AnnotationsFetch {
        /// The session.
        session: SessionId,
        /// The document.
        document: DocumentId,
    },
    /// Server → client: the user's annotations on a document.
    Annotations {
        /// The document.
        document: DocumentId,
        /// The remarks, oldest first.
        notes: Vec<String>,
    },

    // ---- asynchronous mail (SMTP/MIME path) ----
    /// Client → server: send mail to a tutor (or any address).
    MailSend {
        /// The message.
        mail: MailMessage,
    },
    /// Client → server: fetch mailbox contents for an address.
    MailFetch {
        /// The mailbox owner address.
        address: String,
    },
    /// Server → client: mailbox contents.
    MailBox {
        /// The messages.
        messages: Vec<MailMessage>,
    },
}

impl ServiceMsg {
    /// Which protocol-stack path this message takes (Fig. 5 accounting).
    pub fn stack_path(&self) -> StackPath {
        match self {
            ServiceMsg::Tracked { inner, .. } => inner.stack_path(),
            ServiceMsg::RtpData { .. } => StackPath::MediaRtpUdp,
            ServiceMsg::Feedback { .. }
            | ServiceMsg::RtcpSenderReport { .. }
            | ServiceMsg::Heartbeat { .. }
            | ServiceMsg::HeartbeatAck { .. } => StackPath::FeedbackRtcpUdp,
            ServiceMsg::MailSend { .. }
            | ServiceMsg::MailFetch { .. }
            | ServiceMsg::MailBox { .. } => StackPath::MailSmtp,
            ServiceMsg::MediaFetchRequest { .. }
            | ServiceMsg::MediaFetchChunk { .. }
            | ServiceMsg::MediaFetchError { .. }
            | ServiceMsg::MediaFetchBusy { .. }
            | ServiceMsg::MediaFetchCancel { .. } => StackPath::MediaFetchTcp,
            _ => StackPath::ControlTcp,
        }
    }
}

impl WireSize for ServiceMsg {
    fn wire_size(&self) -> usize {
        match self {
            // 8-byte request-id header on top of the wrapped message.
            ServiceMsg::Tracked { inner, .. } => 8 + inner.wire_size(),
            ServiceMsg::Ack { .. } => 8 + TCP_IP_OVERHEAD,
            // Heartbeats ride the datagram path: UDP+IP overhead.
            ServiceMsg::Heartbeat { .. } => 16 + 28,
            ServiceMsg::HeartbeatAck { .. } => 16 + 28,
            ServiceMsg::ReconnectRequest { .. } => 64 + TCP_IP_OVERHEAD,
            ServiceMsg::ReconnectAck { .. } => 24 + TCP_IP_OVERHEAD,
            ServiceMsg::Connect { .. } => 64 + TCP_IP_OVERHEAD,
            ServiceMsg::ConnectAck { .. } => 32 + TCP_IP_OVERHEAD,
            ServiceMsg::ConnectReject { reason } => 16 + reason.len() + TCP_IP_OVERHEAD,
            ServiceMsg::Subscribe { form, .. } => {
                48 + form.name.len()
                    + form.address.len()
                    + form.telephone.len()
                    + form.email.len()
                    + TCP_IP_OVERHEAD
            }
            ServiceMsg::SubscribeAck { .. } => 24 + TCP_IP_OVERHEAD,
            ServiceMsg::TopicList { topics, .. } => {
                16 + topics
                    .iter()
                    .map(|t| 16 + t.title.len() + t.description.len())
                    .sum::<usize>()
                    + TCP_IP_OVERHEAD
            }
            ServiceMsg::DocRequest { .. } => 24 + TCP_IP_OVERHEAD,
            ServiceMsg::ScenarioResponse { markup, .. } => 32 + markup.len() + TCP_IP_OVERHEAD,
            ServiceMsg::DocError { reason, .. } => 16 + reason.len() + TCP_IP_OVERHEAD,
            ServiceMsg::Pause { .. }
            | ServiceMsg::Resume { .. }
            | ServiceMsg::SuspendConnection { .. }
            | ServiceMsg::ResumeSuspended { .. }
            | ServiceMsg::SuspendExpired { .. }
            | ServiceMsg::Disconnect { .. } => 16 + TCP_IP_OVERHEAD,
            ServiceMsg::DisableStream { .. } | ServiceMsg::StreamStopped { .. } => {
                24 + TCP_IP_OVERHEAD
            }
            ServiceMsg::StreamRegraded { .. } => 25 + TCP_IP_OVERHEAD,
            ServiceMsg::StreamJoin { .. } => 40 + TCP_IP_OVERHEAD,
            ServiceMsg::PatchRequest { .. } => 24 + TCP_IP_OVERHEAD,
            // Epoch announces ride the multicast datagram path: UDP+IP.
            ServiceMsg::GroupEpoch { .. } => 16 + 28,
            ServiceMsg::RtpData { packet, .. } => packet.wire_size(),
            ServiceMsg::DiscreteData { size, .. } => 24 + *size as usize + TCP_IP_OVERHEAD,
            ServiceMsg::MediaFetchRequest { object, .. } => 57 + object.len() + TCP_IP_OVERHEAD,
            ServiceMsg::MediaFetchChunk {
                payload_bytes,
                frames,
                ..
            } => {
                // The part's share of the frame payload plus a 5-byte spec
                // header per carried frame spec (final part only).
                16 + *payload_bytes as usize + 5 * frames.len() + TCP_IP_OVERHEAD
            }
            ServiceMsg::MediaFetchError { reason, .. } => 16 + reason.len() + TCP_IP_OVERHEAD,
            ServiceMsg::MediaFetchBusy { .. } | ServiceMsg::MediaFetchCancel { .. } => {
                16 + TCP_IP_OVERHEAD
            }
            ServiceMsg::RtcpSenderReport { packet, .. } => packet.wire_size(),
            ServiceMsg::Feedback {
                measurements, rtcp, ..
            } => 16 + measurements.len() * 48 + rtcp.iter().map(|r| r.wire_size()).sum::<usize>(),
            ServiceMsg::Annotate { text, .. } => 32 + text.len() + TCP_IP_OVERHEAD,
            ServiceMsg::AnnotationsFetch { .. } => 24 + TCP_IP_OVERHEAD,
            ServiceMsg::Annotations { notes, .. } => {
                16 + notes.iter().map(|n| 8 + n.len()).sum::<usize>() + TCP_IP_OVERHEAD
            }
            ServiceMsg::SearchRequest { token, .. } => 32 + token.len() + TCP_IP_OVERHEAD,
            ServiceMsg::SearchFanout { token, .. } => 32 + token.len() + TCP_IP_OVERHEAD,
            ServiceMsg::SearchPartial { hits, .. } => {
                16 + hits.iter().map(|h| 24 + h.title.len()).sum::<usize>() + TCP_IP_OVERHEAD
            }
            ServiceMsg::SearchResponse { hits, .. } => {
                24 + hits.iter().map(|h| 24 + h.title.len()).sum::<usize>() + TCP_IP_OVERHEAD
            }
            ServiceMsg::MailSend { mail } => mail.wire_bytes() + TCP_IP_OVERHEAD,
            ServiceMsg::MailFetch { address } => 16 + address.len() + TCP_IP_OVERHEAD,
            ServiceMsg::MailBox { messages } => {
                16 + messages.iter().map(|m| m.wire_bytes()).sum::<usize>() + TCP_IP_OVERHEAD
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_rtp::PayloadType;

    #[test]
    fn stack_paths_classified() {
        let rtp = ServiceMsg::RtpData {
            session: SessionId::new(1),
            component: ComponentId::new(1),
            packet: RtpPacket::synthetic(PayloadType::Mpeg, true, 1, 2, 3, 100),
            sent_at: MediaTime::ZERO,
        };
        assert_eq!(rtp.stack_path(), StackPath::MediaRtpUdp);
        let fb = ServiceMsg::Feedback {
            session: SessionId::new(1),
            measurements: vec![],
            rtcp: vec![],
        };
        assert_eq!(fb.stack_path(), StackPath::FeedbackRtcpUdp);
        let mail = ServiceMsg::MailFetch {
            address: "t@x".into(),
        };
        assert_eq!(mail.stack_path(), StackPath::MailSmtp);
        let ctl = ServiceMsg::Pause {
            session: SessionId::new(1),
        };
        assert_eq!(ctl.stack_path(), StackPath::ControlTcp);
    }

    #[test]
    fn wire_sizes_scale_with_content() {
        let small = ServiceMsg::ScenarioResponse {
            session: SessionId::new(1),
            document: DocumentId::new(1),
            markup: "x".into(),
            lead_micros: 0,
        };
        let big = ServiceMsg::ScenarioResponse {
            session: SessionId::new(1),
            document: DocumentId::new(1),
            markup: "x".repeat(10_000),
            lead_micros: 0,
        };
        assert!(big.wire_size() > small.wire_size() + 9_000);
        // RTP data is charged the RTP+UDP+IP cost.
        let rtp = ServiceMsg::RtpData {
            session: SessionId::new(1),
            component: ComponentId::new(1),
            packet: RtpPacket::synthetic(PayloadType::Pcm, true, 1, 2, 3, 160),
            sent_at: MediaTime::ZERO,
        };
        assert_eq!(rtp.wire_size(), 160 + 12 + 28);
    }

    #[test]
    fn mail_size_includes_attachments() {
        let m = MailMessage {
            from: "student@hermes".into(),
            to: "tutor@hermes".into(),
            subject: "question".into(),
            body: "why".into(),
            attachments: vec![("image/gif".into(), 5_000)],
        };
        assert!(m.wire_bytes() > 5_000);
        let plain = MailMessage {
            attachments: vec![],
            ..m.clone()
        };
        assert!(m.wire_bytes() > plain.wire_bytes() + 4_900);
    }
}

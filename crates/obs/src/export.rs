//! Exporters over a finished [`Obs`] capture: JSONL event dump,
//! Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`), a
//! per-session timeline text renderer, and a flight-recorder report.
//!
//! All output is hand-rolled and fully deterministic: names are static
//! identifiers, labels render in a fixed field order and records are sorted
//! by the `(sim-time, seq)` merge key — two identical runs produce
//! byte-identical files (the CI determinism gate diffs them).

use crate::event::Event;
use crate::span::SpanId;
use crate::Obs;
use hermes_core::MediaTime;

fn push_label_json(out: &mut String, key: &str, v: Option<u64>) {
    if let Some(v) = v {
        out.push_str(&format!(",\"{key}\":{v}"));
    }
}

/// One event per line, `(at, seq)`-ordered, as compact JSON objects.
pub fn events_jsonl(obs: &Obs) -> String {
    let mut out = String::new();
    for ev in obs.events() {
        out.push_str(&event_json(ev));
        out.push('\n');
    }
    out
}

fn event_json(ev: &Event) -> String {
    let mut s = format!(
        "{{\"at\":{},\"seq\":{},\"node\":{},\"sev\":\"{}\",\"name\":\"{}\"",
        ev.at.as_micros(),
        ev.seq,
        ev.node,
        ev.severity.as_str(),
        ev.name,
    );
    push_label_json(&mut s, "session", ev.labels.session);
    push_label_json(&mut s, "stream", ev.labels.stream);
    push_label_json(&mut s, "peer", ev.labels.peer);
    push_label_json(&mut s, "segment", ev.labels.segment);
    s.push_str(&format!(",\"value\":{}}}", ev.value));
    s
}

/// Chrome trace-event JSON: spans as `ph:"X"` complete events (track =
/// node pid / session tid) and logged events as `ph:"i"` instants. Open
/// spans are closed at `trace_end` so a run cut off by the horizon still
/// renders. Load the file in <https://ui.perfetto.dev> or
/// `chrome://tracing`.
pub fn chrome_trace(obs: &Obs, trace_end: MediaTime) -> String {
    let mut records: Vec<String> = Vec::new();
    for sp in obs.spans.all() {
        let end = sp.end.unwrap_or(trace_end).max(sp.start);
        let mut args = format!("\"span_id\":{}", sp.id.0);
        if !sp.parent.is_none() {
            args.push_str(&format!(",\"parent\":{}", sp.parent.0));
        }
        records.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
            sp.name,
            sp.start.as_micros(),
            (end - sp.start).as_micros(),
            sp.node,
            sp.labels.session.unwrap_or(0),
            args,
        ));
    }
    for ev in obs.events() {
        records.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"value\":{}}}}}",
            ev.name,
            ev.severity.as_str(),
            ev.at.as_micros(),
            ev.node,
            ev.labels.session.unwrap_or(0),
            ev.value,
        ));
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", records.join(",\n"))
}

fn fmt_ms(t: MediaTime) -> String {
    format!("{:>10.3}ms", t.as_micros() as f64 / 1000.0)
}

/// Human-readable timeline of one session: its spans (indented by nesting
/// depth, start-ordered) followed by its events in merge order.
pub fn session_timeline(obs: &Obs, session: u64) -> String {
    let mut out = format!("timeline for session {session}\n");
    let mut spans: Vec<(usize, &crate::span::Span)> = obs
        .spans
        .for_session(session)
        .into_iter()
        .map(|s| (obs.spans.depth(s.id), s))
        .collect();
    spans.sort_by_key(|(_, s)| (s.start, s.id));
    for (depth, s) in spans {
        let end = match s.end {
            Some(e) => fmt_ms(e),
            None => format!("{:>12}", "(open)"),
        };
        out.push_str(&format!(
            "[{} → {}] {}{}\n",
            fmt_ms(s.start),
            end,
            "  ".repeat(depth),
            s.name,
        ));
    }
    let mut evs: Vec<&Event> = obs
        .events()
        .iter()
        .filter(|e| e.labels.session == Some(session))
        .collect();
    evs.sort_by_key(|e| e.sort_key());
    for e in evs {
        out.push_str(&format!(
            "  @{}  {:5}  {}{}  value={}\n",
            fmt_ms(e.at),
            e.severity.as_str(),
            e.name,
            e.labels.render(),
            e.value,
        ));
    }
    out
}

/// Text report of every flight-recorder dump: trigger line plus the
/// preceding event window, oldest first.
pub fn flight_report(obs: &Obs) -> String {
    let mut out = String::new();
    for d in obs.flight.dumps() {
        out.push_str(&format!(
            "flight dump @{} node={} reason={}{} ({} events)\n",
            fmt_ms(d.at),
            d.node,
            d.reason,
            d.labels.render(),
            d.events.len(),
        ));
        for e in &d.events {
            out.push_str(&format!(
                "    @{}  {:5}  {}{}  value={}\n",
                fmt_ms(e.at),
                e.severity.as_str(),
                e.name,
                e.labels.render(),
                e.value,
            ));
        }
    }
    if obs.flight.suppressed > 0 {
        out.push_str(&format!(
            "({} further anomalies past the dump cap)\n",
            obs.flight.suppressed
        ));
    }
    out
}

/// True when `id` names a span usable as a parent (non-null). Convenience
/// for instrumentation sites that cache span handles.
pub fn span_is_live(id: SpanId) -> bool {
    !id.is_none()
}

// Exporter tests exercise live recording, so they need the feature on.
#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use crate::event::{Labels, Severity};
    use crate::span::SpanId;

    fn sample_obs() -> Obs {
        let mut obs = Obs::new();
        let root = obs.session_span(3, 1, MediaTime::from_millis(5));
        let pre = obs.span_start(
            MediaTime::from_millis(10),
            2,
            "prefill",
            Labels::session(3),
            root,
        );
        obs.span_end(pre, MediaTime::from_millis(30));
        obs.span_start(
            MediaTime::from_millis(30),
            2,
            "playout",
            Labels::session(3),
            root,
        );
        obs.emit(
            MediaTime::from_millis(12),
            2,
            Severity::Debug,
            "buffer_occupancy",
            Labels::session(3).stream(1),
        );
        obs.emit_val(
            MediaTime::from_millis(40),
            2,
            Severity::Warn,
            "playout_gap",
            Labels::session(3),
            2,
        );
        obs
    }

    #[test]
    fn jsonl_has_one_line_per_logged_event() {
        let obs = sample_obs();
        let j = events_jsonl(&obs);
        // The Debug event is flight-ring-only.
        assert_eq!(j.lines().count(), 1);
        assert!(j.contains("\"name\":\"playout_gap\""));
        assert!(j.contains("\"session\":3"));
        assert!(j.contains("\"value\":2"));
        assert!(!j.contains("buffer_occupancy"));
    }

    #[test]
    fn chrome_trace_closes_open_spans_and_is_deterministic() {
        let obs = sample_obs();
        let end = MediaTime::from_millis(100);
        let t = chrome_trace(&obs, end);
        assert_eq!(t, chrome_trace(&sample_obs(), end));
        assert!(t.starts_with("{\"traceEvents\":["));
        assert!(t.contains("\"name\":\"session\""));
        // The open playout span is closed at trace end: 100ms - 30ms.
        assert!(t.contains("\"ts\":30000,\"dur\":70000"), "{t}");
        assert!(t.contains("\"ph\":\"i\""));
    }

    #[test]
    fn timeline_orders_and_indents() {
        let obs = sample_obs();
        let tl = session_timeline(&obs, 3);
        let sess = tl.find("session\n").unwrap();
        let pre = tl.find("  prefill").unwrap();
        let gap = tl.find("playout_gap").unwrap();
        assert!(sess < pre && pre < gap, "{tl}");
        assert_eq!(session_timeline(&obs, 999), "timeline for session 999\n");
    }

    #[test]
    fn flight_report_includes_ring_context() {
        let mut obs = sample_obs();
        obs.dump_flight(
            MediaTime::from_millis(41),
            2,
            "playout_gap",
            Labels::session(3),
        );
        let r = flight_report(&obs);
        assert!(r.contains("reason=playout_gap"));
        // The Debug-only occupancy record appears in the dump window.
        assert!(r.contains("buffer_occupancy"), "{r}");
    }

    #[test]
    fn span_liveness_helper() {
        assert!(!span_is_live(SpanId::NONE));
        assert!(span_is_live(SpanId(0)));
    }
}

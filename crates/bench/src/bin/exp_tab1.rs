//! TAB1 — regenerate paper Table 1 ("Description of basic keywords") from
//! the live keyword registry, and verify every registry entry is covered.

use hermes_bench::{ExpOpts, Table};
use hermes_hml::keywords::{keyword_table, AttrKeyword, TagKeyword};

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let mut t = Table::new(vec!["Keyword", "Description"]);
    for row in keyword_table() {
        t.row(vec![row.keyword.clone(), row.description.to_string()]);
    }
    out.table(
        "Table 1 — basic keywords of the markup language (live registry)",
        &t,
    );

    // Cross-check: every tag/attr keyword the parser accepts appears in the
    // table (the implementation extensions are listed at the bottom).
    let cells: Vec<String> = keyword_table()
        .iter()
        .flat_map(|r| {
            r.keyword
                .split(", ")
                .map(str::to_string)
                .collect::<Vec<_>>()
        })
        .collect();
    let mut missing = Vec::new();
    for k in TagKeyword::ALL {
        if !cells.iter().any(|c| c == k.spelling()) {
            missing.push(k.spelling().to_string());
        }
    }
    for k in AttrKeyword::ALL {
        if k == AttrKeyword::EncodingAttr || k == AttrKeyword::Sync {
            continue; // implementation extensions, not paper keywords
        }
        if !cells.iter().any(|c| c == k.spelling()) {
            missing.push(k.spelling().to_string());
        }
    }
    if missing.is_empty() {
        out.line("coverage: every parser keyword appears in the table ✓");
    } else {
        out.line(&format!("coverage: MISSING {missing:?}"));
        std::process::exit(1);
    }
}

//! The pre-orchestrated presentation scenario model.
//!
//! A hypermedia document "is a composition of different media that are
//! appropriately placed in time and space to form a playout scenario" (§3).
//! The model has four logical abstractions:
//!
//! * **content** — the inline media entities, where they are stored and how
//!   they are encoded ([`MediaSource`], [`Encoding`]);
//! * **layout** — where media appear on the desktop ([`Region`]);
//! * **synchronization** — relative start times `t_i` and durations `d_i`,
//!   plus sync groups binding streams (the `AU_VI` construct) that "should
//!   start and stop playing at the same time";
//! * **interconnection** — sequential / explorational hyperlinks, optionally
//!   auto-activated after a timed delay (`AT`).

use crate::ids::{ComponentId, DocumentId, ServerId};
use crate::interval::Interval;
use crate::layout::{HeadingLevel, Region, TextStyle};
use crate::media_kind::{Encoding, MediaKind};
use crate::time::{MediaDuration, MediaTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Where a media component's inline data lives: the media server path / key
/// that the `SOURCE` keyword carries ("information about the storage of data
/// ... based on the database model used by the service").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MediaSource {
    /// The multimedia server holding the referenced media server.
    pub server: ServerId,
    /// Storage key within the media server (a path or object name).
    pub object: String,
}

impl MediaSource {
    /// Construct a source reference.
    pub fn new(server: ServerId, object: impl Into<String>) -> Self {
        MediaSource {
            server,
            object: object.into(),
        }
    }
}

/// A run of styled text inside a text component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextRun {
    /// The characters.
    pub text: String,
    /// Style flags (B/I/U).
    pub style: TextStyle,
}

/// Structured body content of a text component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TextBlock {
    /// A heading line (`H1`/`H2`/`H3`).
    Heading(HeadingLevel, String),
    /// A paragraph break (`PAR`).
    ParagraphBreak,
    /// A horizontal separator (`SEP`).
    Separator,
    /// A sequence of styled runs.
    Runs(Vec<TextRun>),
}

/// The content payload of one media component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ComponentContent {
    /// Inline formatted text (travels with the scenario; always available).
    Text(Vec<TextBlock>),
    /// Media fetched from a media server.
    Stored {
        /// Where to fetch it from.
        source: MediaSource,
        /// Its encoding.
        encoding: Encoding,
    },
}

impl ComponentContent {
    /// The media kind of this content.
    pub fn kind(&self) -> MediaKind {
        match self {
            ComponentContent::Text(_) => MediaKind::Text,
            ComponentContent::Stored { encoding, .. } => encoding.kind(),
        }
    }
}

/// One media component of the scenario: a piece of media with an `ID`,
/// timing (`STARTIME`/`DURATION`), placement (`WHERE`/`HEIGHT`/`WIDTH`) and
/// an optional annotation (`NOTE`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MediaComponent {
    /// Unique id within the document (demultiplexing key at the client).
    pub id: ComponentId,
    /// The content (inline text or stored media reference).
    pub content: ComponentContent,
    /// Relative playout start time `t_i` (µs after presentation start).
    pub start: MediaTime,
    /// Playout duration `d_i`. `None` means "until the presentation ends"
    /// (the always-visible background text of the Fig. 2 example).
    pub duration: Option<MediaDuration>,
    /// Placement on the desktop, if spatial.
    pub region: Option<Region>,
    /// Author's annotation (`NOTE`).
    pub note: Option<String>,
}

impl MediaComponent {
    /// Media kind shortcut.
    pub fn kind(&self) -> MediaKind {
        self.content.kind()
    }
    /// The playout interval, clamped to a presentation that ends at
    /// `presentation_end` for open-ended components.
    pub fn interval(&self, presentation_end: MediaTime) -> Interval {
        let end = match self.duration {
            Some(d) => self.start + d,
            None => presentation_end.max(self.start),
        };
        Interval::new(self.start, end)
    }
    /// Is this component continuous (audio/video)?
    pub fn is_continuous(&self) -> bool {
        self.kind().is_continuous()
    }
}

/// Hyperlink categories (§3): *sequential* links "preserve the logical
/// sequence (or the author's sequence)"; *explorational* links "override the
/// logical sequence and provide access to related information".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Follows the author's intended sequence of documents.
    Sequential,
    /// Jumps to related side information.
    Explorational,
}

/// Where a hyperlink leads.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkTarget {
    /// A document on the same multimedia server.
    Local(DocumentId),
    /// A document on another multimedia server (triggers the
    /// suspend-connection / new-connection migration of §5).
    Remote(ServerId, DocumentId),
}

impl LinkTarget {
    /// The document this target points at.
    pub fn document(&self) -> DocumentId {
        match self {
            LinkTarget::Local(d) => *d,
            LinkTarget::Remote(_, d) => *d,
        }
    }
    /// The server the document lives on, if it is a remote link.
    pub fn remote_server(&self) -> Option<ServerId> {
        match self {
            LinkTarget::Local(_) => None,
            LinkTarget::Remote(s, _) => Some(*s),
        }
    }
}

/// A hyperlink (`HLINK`), optionally auto-activated `AT` a scenario time:
/// "a specific link will be automatically followed after the expiration of a
/// time period ... in the absence of user involvement".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperLink {
    /// Sequential or explorational.
    pub kind: LinkKind,
    /// Destination document.
    pub target: LinkTarget,
    /// Auto-follow time (`AT`), relative to presentation start.
    pub auto_at: Option<MediaTime>,
    /// Annotation shown to the user (`NOTE`).
    pub note: Option<String>,
}

/// A group of components that must start and stop together — the `AU_VI`
/// construct ("the two media should start and stop playing at the same
/// time"). Generalized to any set of component ids.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncGroup {
    /// Members of the group; all must share start and duration.
    pub members: Vec<ComponentId>,
}

/// A complete pre-orchestrated presentation scenario for one document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Document this scenario presents.
    pub document: DocumentId,
    /// Document title (`TITLE`).
    pub title: String,
    /// Media components ordered by author (body order).
    pub components: Vec<MediaComponent>,
    /// Sync groups binding related continuous streams.
    pub sync_groups: Vec<SyncGroup>,
    /// Outgoing hyperlinks.
    pub links: Vec<HyperLink>,
}

/// A structural problem found while validating a scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioIssue {
    /// Two components share one id.
    DuplicateComponentId(ComponentId),
    /// A sync group names an unknown component.
    UnknownSyncMember(ComponentId),
    /// A sync group has fewer than two members.
    DegenerateSyncGroup,
    /// Members of one sync group have differing start times or durations.
    SyncGroupTimingMismatch(ComponentId, ComponentId),
    /// A component has a negative start time.
    NegativeStart(ComponentId),
    /// A timed link fires at a negative instant.
    NegativeLinkTime,
    /// Two spatial components with overlapping active intervals overlap on
    /// screen (reported, not fatal: authors may layer intentionally).
    SpatialOverlap(ComponentId, ComponentId),
}

impl Scenario {
    /// Create an empty scenario for a document.
    pub fn new(document: DocumentId, title: impl Into<String>) -> Self {
        Scenario {
            document,
            title: title.into(),
            components: Vec::new(),
            sync_groups: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Look up a component by id.
    pub fn component(&self, id: ComponentId) -> Option<&MediaComponent> {
        self.components.iter().find(|c| c.id == id)
    }

    /// The presentation end: the latest end instant over all bounded
    /// components and timed links (open-ended components don't extend it).
    pub fn presentation_end(&self) -> MediaTime {
        let mut end = MediaTime::ZERO;
        for c in &self.components {
            if let Some(d) = c.duration {
                end = end.max(c.start + d);
            } else {
                end = end.max(c.start);
            }
        }
        for l in &self.links {
            if let Some(at) = l.auto_at {
                end = end.max(at);
            }
        }
        end
    }

    /// Components of a given kind, in body order.
    pub fn components_of_kind(&self, kind: MediaKind) -> impl Iterator<Item = &MediaComponent> {
        self.components.iter().filter(move |c| c.kind() == kind)
    }

    /// The sync group containing `id`, if any.
    pub fn sync_group_of(&self, id: ComponentId) -> Option<&SyncGroup> {
        self.sync_groups.iter().find(|g| g.members.contains(&id))
    }

    /// Partner components that must stay in sync with `id` (excluding itself).
    pub fn sync_partners(&self, id: ComponentId) -> Vec<ComponentId> {
        self.sync_group_of(id)
            .map(|g| g.members.iter().copied().filter(|m| *m != id).collect())
            .unwrap_or_default()
    }

    /// The earliest timed (`AT`) link, if any — the auto-follow that
    /// "preserves the sequential nature ... in the absence of user
    /// involvement".
    pub fn next_auto_link(&self) -> Option<&HyperLink> {
        self.links
            .iter()
            .filter(|l| l.auto_at.is_some())
            .min_by_key(|l| l.auto_at)
    }

    /// The Allen relation between every ordered pair of components'
    /// playout intervals — the interval-based temporal analysis of the
    /// scenario ([LIT 93] lineage). Useful to authors for checking that a
    /// scenario means what they drew.
    pub fn temporal_relations(
        &self,
    ) -> Vec<(ComponentId, ComponentId, crate::interval::AllenRelation)> {
        let end = self.presentation_end();
        let mut out = Vec::new();
        for i in 0..self.components.len() {
            for j in (i + 1)..self.components.len() {
                let a = &self.components[i];
                let b = &self.components[j];
                out.push((a.id, b.id, a.interval(end).allen(&b.interval(end))));
            }
        }
        out
    }

    /// Validate structural invariants; returns all issues found.
    pub fn validate(&self) -> Vec<ScenarioIssue> {
        let mut issues = Vec::new();
        let mut seen = BTreeSet::new();
        for c in &self.components {
            if !seen.insert(c.id) {
                issues.push(ScenarioIssue::DuplicateComponentId(c.id));
            }
            if c.start < MediaTime::ZERO {
                issues.push(ScenarioIssue::NegativeStart(c.id));
            }
        }
        let by_id: BTreeMap<ComponentId, &MediaComponent> =
            self.components.iter().map(|c| (c.id, c)).collect();
        for g in &self.sync_groups {
            if g.members.len() < 2 {
                issues.push(ScenarioIssue::DegenerateSyncGroup);
            }
            for m in &g.members {
                if !by_id.contains_key(m) {
                    issues.push(ScenarioIssue::UnknownSyncMember(*m));
                }
            }
            for pair in g.members.windows(2) {
                if let (Some(a), Some(b)) = (by_id.get(&pair[0]), by_id.get(&pair[1])) {
                    if a.start != b.start || a.duration != b.duration {
                        issues.push(ScenarioIssue::SyncGroupTimingMismatch(a.id, b.id));
                    }
                }
            }
        }
        for l in &self.links {
            if let Some(at) = l.auto_at {
                if at < MediaTime::ZERO {
                    issues.push(ScenarioIssue::NegativeLinkTime);
                }
            }
        }
        // Spatial overlap among temporally-overlapping visual components.
        let end = self.presentation_end();
        let visual: Vec<&MediaComponent> = self
            .components
            .iter()
            .filter(|c| c.region.is_some() && c.kind() != MediaKind::Audio)
            .collect();
        for i in 0..visual.len() {
            for j in (i + 1)..visual.len() {
                let (a, b) = (visual[i], visual[j]);
                let (ra, rb) = (a.region.unwrap(), b.region.unwrap());
                if ra.overlaps(&rb) && a.interval(end).overlaps(&b.interval(end)) {
                    issues.push(ScenarioIssue::SpatialOverlap(a.id, b.id));
                }
            }
        }
        issues
    }

    /// True iff `validate` finds no *fatal* issues (spatial overlap is a
    /// warning only).
    pub fn is_well_formed(&self) -> bool {
        self.validate()
            .iter()
            .all(|i| matches!(i, ScenarioIssue::SpatialOverlap(_, _)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text_component(id: u64, start_ms: i64, dur_ms: Option<i64>) -> MediaComponent {
        MediaComponent {
            id: ComponentId::new(id),
            content: ComponentContent::Text(vec![TextBlock::Runs(vec![TextRun {
                text: "hello".into(),
                style: TextStyle::PLAIN,
            }])]),
            start: MediaTime::from_millis(start_ms),
            duration: dur_ms.map(MediaDuration::from_millis),
            region: None,
            note: None,
        }
    }

    fn stored(id: u64, enc: Encoding, start_ms: i64, dur_ms: i64) -> MediaComponent {
        MediaComponent {
            id: ComponentId::new(id),
            content: ComponentContent::Stored {
                source: MediaSource::new(ServerId::new(0), format!("obj-{id}")),
                encoding: enc,
            },
            start: MediaTime::from_millis(start_ms),
            duration: Some(MediaDuration::from_millis(dur_ms)),
            region: None,
            note: None,
        }
    }

    fn demo() -> Scenario {
        let mut s = Scenario::new(DocumentId::new(1), "demo");
        s.components.push(text_component(0, 0, None));
        s.components.push(stored(1, Encoding::Jpeg, 0, 4000));
        s.components.push(stored(2, Encoding::Pcm, 4000, 6000));
        s.components.push(stored(3, Encoding::Mpeg, 4000, 6000));
        s.sync_groups.push(SyncGroup {
            members: vec![ComponentId::new(2), ComponentId::new(3)],
        });
        s.links.push(HyperLink {
            kind: LinkKind::Sequential,
            target: LinkTarget::Local(DocumentId::new(2)),
            auto_at: Some(MediaTime::from_millis(12000)),
            note: None,
        });
        s
    }

    #[test]
    fn well_formed_demo() {
        let s = demo();
        assert!(s.is_well_formed(), "issues: {:?}", s.validate());
        assert_eq!(s.presentation_end(), MediaTime::from_millis(12000));
    }

    #[test]
    fn duplicate_ids_flagged() {
        let mut s = demo();
        s.components.push(stored(1, Encoding::Gif, 0, 100));
        assert!(s
            .validate()
            .contains(&ScenarioIssue::DuplicateComponentId(ComponentId::new(1))));
        assert!(!s.is_well_formed());
    }

    #[test]
    fn sync_group_mismatch_flagged() {
        let mut s = demo();
        // Desynchronize the video member.
        s.components[3].start = MediaTime::from_millis(4500);
        assert!(matches!(
            s.validate().as_slice(),
            [ScenarioIssue::SyncGroupTimingMismatch(_, _)]
        ));
    }

    #[test]
    fn unknown_sync_member_flagged() {
        let mut s = demo();
        s.sync_groups[0].members.push(ComponentId::new(99));
        assert!(s
            .validate()
            .contains(&ScenarioIssue::UnknownSyncMember(ComponentId::new(99))));
    }

    #[test]
    fn degenerate_group_flagged() {
        let mut s = demo();
        s.sync_groups.push(SyncGroup {
            members: vec![ComponentId::new(2)],
        });
        assert!(s.validate().contains(&ScenarioIssue::DegenerateSyncGroup));
    }

    #[test]
    fn sync_partner_lookup() {
        let s = demo();
        assert_eq!(
            s.sync_partners(ComponentId::new(2)),
            vec![ComponentId::new(3)]
        );
        assert!(s.sync_partners(ComponentId::new(0)).is_empty());
    }

    #[test]
    fn open_ended_component_interval_clamps() {
        let s = demo();
        let end = s.presentation_end();
        let iv = s.components[0].interval(end);
        assert_eq!(iv.start, MediaTime::ZERO);
        assert_eq!(iv.end, end);
    }

    #[test]
    fn spatial_overlap_is_warning_only() {
        let mut s = demo();
        s.components[1].region = Some(Region::new(0, 0, 100, 100));
        let mut extra = stored(4, Encoding::Gif, 1000, 1000);
        extra.region = Some(Region::new(50, 50, 100, 100));
        s.components.push(extra);
        assert!(s
            .validate()
            .iter()
            .any(|i| matches!(i, ScenarioIssue::SpatialOverlap(_, _))));
        assert!(s.is_well_formed());
    }

    #[test]
    fn next_auto_link_is_earliest() {
        let mut s = demo();
        s.links.push(HyperLink {
            kind: LinkKind::Explorational,
            target: LinkTarget::Remote(ServerId::new(5), DocumentId::new(9)),
            auto_at: Some(MediaTime::from_millis(8000)),
            note: None,
        });
        let l = s.next_auto_link().unwrap();
        assert_eq!(l.auto_at, Some(MediaTime::from_millis(8000)));
        assert_eq!(l.target.remote_server(), Some(ServerId::new(5)));
    }

    #[test]
    fn temporal_relations_match_figure() {
        use crate::interval::AllenRelation;
        let s = demo();
        let rels = s.temporal_relations();
        // demo: image [0,4), audio/video [4,10) synchronized.
        let find = |a: u64, b: u64| {
            rels.iter()
                .find(|(x, y, _)| *x == ComponentId::new(a) && *y == ComponentId::new(b))
                .map(|(_, _, r)| *r)
                .unwrap()
        };
        assert_eq!(find(1, 2), AllenRelation::Meets); // image meets audio
        assert_eq!(find(2, 3), AllenRelation::Equals); // the sync pair
        assert_eq!(rels.len(), 6); // C(4,2) pairs over the demo's components
    }

    #[test]
    fn components_of_kind_filters() {
        let s = demo();
        assert_eq!(s.components_of_kind(MediaKind::Audio).count(), 1);
        assert_eq!(s.components_of_kind(MediaKind::Video).count(), 1);
        assert_eq!(s.components_of_kind(MediaKind::Text).count(), 1);
    }
}

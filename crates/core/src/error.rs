//! Error types shared across the service crates.

use crate::ids::{ComponentId, DocumentId, ServerId, SessionId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Top-level service error.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceError {
    /// The requested document does not exist on the contacted server.
    DocumentNotFound(DocumentId),
    /// The referenced server does not exist in the topology.
    ServerNotFound(ServerId),
    /// A media component referenced by a scenario could not be located.
    MediaNotFound(ComponentId),
    /// Authentication failed or the user is not subscribed.
    NotAuthorized,
    /// The admission controller rejected the connection.
    AdmissionRejected {
        /// Human-readable reason.
        reason: String,
    },
    /// The session id is unknown or already closed.
    NoSuchSession(SessionId),
    /// An operation was attempted in a state where it is not allowed
    /// (violates the Fig. 4 application state machine).
    InvalidStateTransition {
        /// State the session was in.
        state: String,
        /// Operation that was attempted.
        operation: String,
    },
    /// A scenario failed validation.
    MalformedScenario(String),
    /// Markup parse failure.
    ParseError(String),
    /// Transport-level failure (connection reset, node down).
    Transport(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::DocumentNotFound(d) => write!(f, "document not found: {d}"),
            ServiceError::ServerNotFound(s) => write!(f, "server not found: {s}"),
            ServiceError::MediaNotFound(c) => write!(f, "media component not found: {c}"),
            ServiceError::NotAuthorized => write!(f, "not authorized"),
            ServiceError::AdmissionRejected { reason } => {
                write!(f, "admission rejected: {reason}")
            }
            ServiceError::NoSuchSession(s) => write!(f, "no such session: {s}"),
            ServiceError::InvalidStateTransition { state, operation } => {
                write!(f, "operation '{operation}' invalid in state '{state}'")
            }
            ServiceError::MalformedScenario(m) => write!(f, "malformed scenario: {m}"),
            ServiceError::ParseError(m) => write!(f, "parse error: {m}"),
            ServiceError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Convenient result alias.
pub type ServiceResult<T> = Result<T, ServiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = ServiceError::DocumentNotFound(DocumentId::new(4));
        assert_eq!(e.to_string(), "document not found: doc-4");
        let e = ServiceError::InvalidStateTransition {
            state: "Viewing".into(),
            operation: "subscribe".into(),
        };
        assert!(e.to_string().contains("Viewing"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ServiceError::NotAuthorized);
    }
}

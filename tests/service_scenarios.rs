#![allow(clippy::field_reassign_with_default)]
//! Cross-crate integration scenarios beyond the basics: multi-client
//! contention, stream disabling, auto-followed lesson chains, and
//! accounting.

use hermes_od::core::{ComponentId, DocumentId, MediaKind, MediaTime, PricingClass, ServerId};
use hermes_od::service::{install_course, ClientConfig, LessonShape, ServerConfig, WorldBuilder};
use hermes_od::simnet::{LinkSpec, SimRng};

fn short_shape() -> LessonShape {
    LessonShape {
        images: 1,
        image_secs: 2,
        narrated_clip_secs: Some(4),
        closing_audio_secs: None,
    }
}

#[test]
fn three_clients_share_one_server() {
    let mut b = WorldBuilder::new(71);
    let server = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(20_000_000),
        ServerConfig::default(),
    );
    let mut clients = Vec::new();
    for _ in 0..3 {
        let mut cfg = ClientConfig::default();
        cfg.class = PricingClass::Premium;
        cfg.form.class = PricingClass::Premium;
        clients.push(b.add_client(LinkSpec::lan(20_000_000), cfg));
    }
    let mut sim = b.build(71);
    let mut rng = SimRng::seed_from_u64(72);
    let lessons = install_course(
        sim.app_mut().server_mut(server),
        "Shared",
        &["contention"],
        1,
        1,
        short_shape(),
        &mut rng,
    );
    for (i, c) in clients.iter().enumerate() {
        let c = *c;
        let doc = lessons[0];
        sim.run_until(MediaTime::from_millis(i as i64 * 300));
        sim.with_api(|w, api| {
            w.client_mut(c).connect(api, server, Some(doc));
        });
    }
    sim.run_until(MediaTime::from_secs(20));
    for c in &clients {
        let cl = sim.app().client(*c);
        assert!(cl.errors.is_empty(), "{:?}", cl.errors);
        assert_eq!(cl.completed.len(), 1, "client {c} did not finish");
        let p = cl.presentation.as_ref().unwrap();
        assert_eq!(p.engine.total_stats().glitches, 0);
    }
    // Each client subscribed independently → three distinct users billed.
    let srv = sim.app().server(server);
    assert_eq!(srv.accounts.len(), 3);
}

#[test]
fn disable_stream_stops_its_transmission() {
    let mut b = WorldBuilder::new(73);
    let server = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let client = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(73);
    let mut rng = SimRng::seed_from_u64(74);
    let lessons = install_course(
        sim.app_mut().server_mut(server),
        "Mutable",
        &["disable"],
        1,
        1,
        LessonShape {
            images: 0,
            image_secs: 0,
            narrated_clip_secs: Some(10),
            closing_audio_secs: None,
        },
        &mut rng,
    );
    sim.with_api(|w, api| {
        w.client_mut(client).connect(api, server, Some(lessons[0]));
    });
    sim.run_until(MediaTime::from_secs(3));
    // Find the video component and disable it ("disable the presentation of
    // a particular media involved in the selected document", §5).
    let video: ComponentId = {
        let srv = sim.app().server(server);
        let (_, sess) = srv.sessions.iter().next().unwrap();
        *sess
            .streams
            .iter()
            .find(|(_, tx)| tx.plan.kind == MediaKind::Video)
            .unwrap()
            .0
    };
    let frames_at_disable = {
        let srv = sim.app().server(server);
        let (_, sess) = srv.sessions.iter().next().unwrap();
        sess.streams[&video].frames_sent
    };
    sim.with_api(|w, api| {
        w.client_mut(client).disable_stream(api, video);
    });
    sim.run_until(MediaTime::from_secs(12));
    let srv = sim.app().server(server);
    let (_, sess) = srv.sessions.iter().next().unwrap();
    let frames_after = sess.streams[&video].frames_sent;
    // At most a couple of in-flight frames after the disable request landed.
    assert!(
        frames_after <= frames_at_disable + 10,
        "video kept streaming: {frames_at_disable} → {frames_after}"
    );
    // Audio still completed.
    let c = sim.app().client(client);
    assert_eq!(c.completed.len(), 1);
}

#[test]
fn auto_follow_walks_the_lesson_chain() {
    let mut b = WorldBuilder::new(75);
    let server = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let mut cfg = ClientConfig::default();
    cfg.auto_follow_links = true;
    let client = b.add_client(LinkSpec::lan(10_000_000), cfg);
    let mut sim = b.build(75);
    let mut rng = SimRng::seed_from_u64(76);
    let lessons = install_course(
        sim.app_mut().server_mut(server),
        "Chain",
        &["sequence"],
        1,
        3,
        short_shape(),
        &mut rng,
    );
    sim.with_api(|w, api| {
        w.client_mut(client).connect(api, server, Some(lessons[0]));
    });
    sim.run_until(MediaTime::from_secs(40));
    let c = sim.app().client(client);
    assert!(c.errors.is_empty(), "{:?}", c.errors);
    // All three lessons played, in the author's sequence ("preserve the
    // sequential nature or 'writer's way' of presentation", §3).
    let played: Vec<DocumentId> = c.completed.iter().map(|(d, _, _)| *d).collect();
    assert_eq!(played, lessons);
}

#[test]
fn server_catalog_lists_descriptions() {
    let mut b = WorldBuilder::new(80);
    b.add_server_described(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
        "geography lessons",
    );
    b.add_server_described(
        ServerId::new(1),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
        "biology lessons",
    );
    let sim = b.build(80);
    let cat = &sim.app().catalog;
    assert_eq!(cat.len(), 2);
    assert_eq!(cat[0].0, ServerId::new(0));
    assert!(cat.iter().any(|(_, _, d)| d.contains("biology")));
}

#[test]
fn accounting_reflects_usage() {
    let mut b = WorldBuilder::new(77);
    let server = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let client = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(77);
    let mut rng = SimRng::seed_from_u64(78);
    let lessons = install_course(
        sim.app_mut().server_mut(server),
        "Billing",
        &["money"],
        1,
        2,
        short_shape(),
        &mut rng,
    );
    sim.with_api(|w, api| {
        w.client_mut(client).connect(api, server, Some(lessons[0]));
    });
    sim.run_until(MediaTime::from_secs(10));
    sim.with_api(|w, api| w.client_mut(client).request_document(api, lessons[1]));
    sim.run_until(MediaTime::from_secs(20));
    sim.with_api(|w, api| w.client_mut(client).disconnect(api));
    sim.run_until(MediaTime::from_secs(21));

    let srv = sim.app().server(server);
    let user = sim.app().client(client).user.unwrap();
    let rec = srv.accounts.user(user).unwrap();
    // One login, two retrievals on record.
    assert_eq!(rec.logins.len(), 1);
    assert_eq!(rec.retrieved, lessons);
    // The ledger accrued: connection + 2 retrievals + duration + volume.
    let balance = srv.accounts.balance(user).unwrap();
    let connection = 100 * 15; // Standard class rate
    let retrievals = 2 * 50 * 15;
    assert!(
        balance > connection + retrievals,
        "balance {balance} missing duration/volume charges"
    );
    // Session fully torn down.
    assert!(srv.sessions.is_empty());
    assert_eq!(srv.admission.active_sessions(), 0);
}

//! Content placement and replica selection for the distributed media tier.
//!
//! The paper attaches media servers to the multimedia server (§2, §6.1);
//! at scale those become real networked nodes and each media object must be
//! *placed* on some of them. [`PlacementMap`] assigns every object to
//! `replication` media nodes by rendezvous (highest-random-weight) hashing:
//! placement is deterministic in the key and node set, spreads objects
//! evenly, and removing a node only moves the objects that lived on it.
//! [`ReplicaSelector`] then picks, per fetch, the replica with the lowest
//! combined outstanding-load + round-trip-time score.

use hermes_core::NodeId;
use std::collections::BTreeMap;

/// Stable 64-bit FNV-1a hash (placement must not depend on the process'
/// hasher state, or two runs of one seed would place objects differently).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Rendezvous weight of `key` on `node`.
fn weight(key: &str, node: NodeId) -> u64 {
    let mut buf = Vec::with_capacity(key.len() + 8);
    buf.extend_from_slice(key.as_bytes());
    buf.extend_from_slice(&node.raw().to_le_bytes());
    fnv1a(&buf)
}

/// The placement map of one multimedia server's content over the media
/// tier: object key → the media nodes holding a replica.
#[derive(Debug, Clone, Default)]
pub struct PlacementMap {
    replicas: BTreeMap<String, Vec<NodeId>>,
    replication: usize,
}

impl PlacementMap {
    /// Place every `key` on `replication` of `nodes` (clamped to the node
    /// count) by rendezvous hashing.
    pub fn build<'a>(
        keys: impl IntoIterator<Item = &'a str>,
        nodes: &[NodeId],
        replication: usize,
    ) -> Self {
        let replication = replication.clamp(1, nodes.len().max(1));
        let mut replicas = BTreeMap::new();
        for key in keys {
            let mut scored: Vec<(u64, NodeId)> =
                nodes.iter().map(|&n| (weight(key, n), n)).collect();
            // Highest weight wins; node id breaks the (unlikely) ties so
            // the order is total and deterministic.
            scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            replicas.insert(
                key.to_string(),
                scored
                    .into_iter()
                    .take(replication)
                    .map(|(_, n)| n)
                    .collect(),
            );
        }
        PlacementMap {
            replicas,
            replication,
        }
    }

    /// The replicas holding `key` (empty when the key was never placed).
    pub fn replicas(&self, key: &str) -> &[NodeId] {
        self.replicas.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Number of placed objects.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }
    /// True when nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Iterate `(key, replicas)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.replicas
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Objects placed per node (the static load balance the experiment
    /// tables report).
    pub fn objects_per_node(&self) -> BTreeMap<NodeId, usize> {
        let mut counts = BTreeMap::new();
        for nodes in self.replicas.values() {
            for n in nodes {
                *counts.entry(*n).or_insert(0) += 1;
            }
        }
        counts
    }
}

/// Load- and RTT-aware replica choice: each candidate replica is scored as
/// `outstanding_fetches × penalty + rtt`, lowest score wins, node id breaks
/// ties. Outstanding counts live here, fed by the fetch path.
#[derive(Debug, Clone)]
pub struct ReplicaSelector {
    outstanding: BTreeMap<NodeId, u64>,
    served: BTreeMap<NodeId, u64>,
    /// Microseconds of score each outstanding fetch is worth; ~one LAN RTT
    /// by default so a node must be meaningfully busier before a farther
    /// replica wins.
    pub load_penalty_micros: i64,
}

impl Default for ReplicaSelector {
    fn default() -> Self {
        ReplicaSelector {
            outstanding: BTreeMap::new(),
            served: BTreeMap::new(),
            load_penalty_micros: 2_000,
        }
    }
}

impl ReplicaSelector {
    /// Fresh selector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pick the best replica among `(node, rtt_micros)` candidates, or
    /// `None` when the slice is empty.
    pub fn pick(&self, candidates: &[(NodeId, i64)]) -> Option<NodeId> {
        candidates
            .iter()
            .map(|&(node, rtt)| {
                let load = *self.outstanding.get(&node).unwrap_or(&0) as i64;
                (load.saturating_mul(self.load_penalty_micros) + rtt, node)
            })
            .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, node)| node)
    }

    /// A fetch went out to `node`.
    pub fn fetch_started(&mut self, node: NodeId) {
        *self.outstanding.entry(node).or_insert(0) += 1;
    }

    /// A fetch to `node` completed (or was abandoned at failover).
    pub fn fetch_finished(&mut self, node: NodeId) {
        if let Some(n) = self.outstanding.get_mut(&node) {
            *n = n.saturating_sub(1);
            *self.served.entry(node).or_insert(0) += 1;
        }
    }

    /// Forget all outstanding fetches to `node` (it crashed; they will
    /// never complete).
    pub fn clear_outstanding(&mut self, node: NodeId) {
        self.outstanding.remove(&node);
    }

    /// Current outstanding fetch count for a node.
    pub fn outstanding(&self, node: NodeId) -> u64 {
        *self.outstanding.get(&node).unwrap_or(&0)
    }

    /// Completed fetches per node since start.
    pub fn served(&self) -> &BTreeMap<NodeId, u64> {
        &self.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u64) -> Vec<NodeId> {
        (100..100 + n).map(NodeId::new).collect()
    }

    #[test]
    fn placement_is_deterministic_and_replicated() {
        let ns = nodes(5);
        let keys = ["a.pcm", "b.mpg", "c.jpg", "d.gif", "e.txt"];
        let a = PlacementMap::build(keys.iter().copied(), &ns, 3);
        let b = PlacementMap::build(keys.iter().copied(), &ns, 3);
        for k in keys {
            assert_eq!(a.replicas(k), b.replicas(k), "{k}");
            assert_eq!(a.replicas(k).len(), 3);
            // Replicas are distinct nodes.
            let mut r = a.replicas(k).to_vec();
            r.sort();
            r.dedup();
            assert_eq!(r.len(), 3, "{k}");
        }
        assert_eq!(a.len(), keys.len());
    }

    #[test]
    fn replication_clamps_to_node_count() {
        let ns = nodes(2);
        let p = PlacementMap::build(["x"], &ns, 9);
        assert_eq!(p.replicas("x").len(), 2);
        assert_eq!(p.replication(), 2);
        assert!(p.replicas("missing").is_empty());
    }

    #[test]
    fn placement_spreads_objects() {
        let ns = nodes(4);
        let keys: Vec<String> = (0..64).map(|i| format!("obj-{i}.mpg")).collect();
        let p = PlacementMap::build(keys.iter().map(String::as_str), &ns, 1);
        let per = p.objects_per_node();
        // Every node got something; no node hoards more than half.
        assert_eq!(per.len(), 4, "{per:?}");
        for (_, c) in per {
            assert!((4..=32).contains(&c), "{c}");
        }
    }

    #[test]
    fn removing_a_node_only_moves_its_objects() {
        let all = nodes(5);
        let fewer: Vec<NodeId> = all[..4].to_vec();
        let keys: Vec<String> = (0..32).map(|i| format!("k{i}")).collect();
        let before = PlacementMap::build(keys.iter().map(String::as_str), &all, 1);
        let after = PlacementMap::build(keys.iter().map(String::as_str), &fewer, 1);
        let dropped = all[4];
        for k in &keys {
            if before.replicas(k)[0] != dropped {
                assert_eq!(before.replicas(k), after.replicas(k), "{k} moved");
            }
        }
    }

    #[test]
    fn rendezvous_churn_moves_only_the_minimal_fraction() {
        // Property over a large key population: removing one node moves
        // EXACTLY the keys it held (nothing else reshuffles), and adding
        // one node moves only the keys the newcomer wins — in both
        // directions close to the expected 1/n fraction.
        let keys: Vec<String> = (0..800).map(|i| format!("seg-{i}.mpg")).collect();
        let base = nodes(8);
        let before = PlacementMap::build(keys.iter().map(String::as_str), &base, 1);

        // Remove the last node.
        let fewer: Vec<NodeId> = base[..7].to_vec();
        let after_rm = PlacementMap::build(keys.iter().map(String::as_str), &fewer, 1);
        let dropped = base[7];
        let mut moved_rm = 0;
        for k in &keys {
            if before.replicas(k) != after_rm.replicas(k) {
                assert_eq!(before.replicas(k), [dropped], "{k} moved without cause");
                moved_rm += 1;
            }
        }
        // Expected 800/8 = 100 keys; allow generous sampling slack.
        assert!((55..=160).contains(&moved_rm), "removal moved {moved_rm}");

        // Add a fresh node.
        let mut more = base.clone();
        more.push(NodeId::new(900));
        let after_add = PlacementMap::build(keys.iter().map(String::as_str), &more, 1);
        let mut moved_add = 0;
        for k in &keys {
            if before.replicas(k) != after_add.replicas(k) {
                assert_eq!(
                    after_add.replicas(k),
                    [NodeId::new(900)],
                    "{k} moved to an old node"
                );
                moved_add += 1;
            }
        }
        // Expected 800/9 ≈ 89 keys; FNV-1a is not perfectly uniform per
        // node id, so the bound is loose — the exactness assertions above
        // are the real property.
        assert!(
            (25..=180).contains(&moved_add),
            "addition moved {moved_add}"
        );

        // With replication 2 the same holds per replica slot: churn must
        // touch at most the slots the churned node participates in
        // (expected 2/n of all slots).
        let before2 = PlacementMap::build(keys.iter().map(String::as_str), &base, 2);
        let after2 = PlacementMap::build(keys.iter().map(String::as_str), &fewer, 2);
        let mut slot_moves = 0;
        for k in &keys {
            let b = before2.replicas(k);
            let a = after2.replicas(k);
            if b != a {
                assert!(b.contains(&dropped), "{k} reshuffled without cause");
                // The surviving replica keeps its slot.
                assert!(a.iter().any(|n| b.contains(n)), "{k} lost both replicas");
                slot_moves += 1;
            }
        }
        // Expected 800 × 2/8 = 200 affected keys.
        assert!(
            (120..=300).contains(&slot_moves),
            "repl-2 moved {slot_moves}"
        );
    }

    #[test]
    fn selector_prefers_low_rtt_then_yields_under_load() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let mut sel = ReplicaSelector::new();
        let cands = [(a, 1_000), (b, 4_000)];
        assert_eq!(sel.pick(&cands), Some(a));
        // Pile outstanding fetches on `a` until `b`'s lower load wins.
        sel.fetch_started(a);
        sel.fetch_started(a);
        assert_eq!(sel.pick(&cands), Some(b));
        // Completion drains the load back off.
        sel.fetch_finished(a);
        sel.fetch_finished(a);
        assert_eq!(sel.pick(&cands), Some(a));
        assert_eq!(sel.served().get(&a), Some(&2));
        assert_eq!(sel.pick(&[]), None);
    }

    #[test]
    fn clear_outstanding_forgets_a_crashed_node() {
        let a = NodeId::new(1);
        let mut sel = ReplicaSelector::new();
        sel.fetch_started(a);
        sel.fetch_started(a);
        assert_eq!(sel.outstanding(a), 2);
        sel.clear_outstanding(a);
        assert_eq!(sel.outstanding(a), 0);
    }
}

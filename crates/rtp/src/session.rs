//! RTP sessions: sender-side packetization of media frames and
//! receiver-side frame reassembly with reception statistics.
//!
//! Each media stream of a presentation gets its own RTP session over its own
//! parallel connection, as in the paper's architecture ("each media server
//! ... is responsible for transmitting a certain media type through a
//! parallel connection which is established between the browser and the
//! corresponding media server", §6.1).

use crate::packet::{micros_to_clock, PayloadType, RtpPacket, RTP_HEADER_LEN, UDP_IP_OVERHEAD};
use crate::rtcp::{ReportBlock, RtcpPacket};
use crate::stats::ReceiverStats;
use hermes_core::{Encoding, MediaTime};
use hermes_media::MediaFrame;
use std::collections::BTreeMap;

/// Map an encoding to its RTP payload type.
pub fn payload_type_for(encoding: Encoding) -> PayloadType {
    match encoding {
        Encoding::Pcm => PayloadType::Pcm,
        Encoding::Adpcm => PayloadType::Adpcm,
        Encoding::Vadpcm => PayloadType::Vadpcm,
        Encoding::Mpeg => PayloadType::Mpeg,
        Encoding::Avi => PayloadType::Avi,
        _ => PayloadType::Document,
    }
}

/// Default MTU-limited payload size per RTP packet.
pub const DEFAULT_MAX_PAYLOAD: usize = 1400;

/// Sender half of an RTP session for one media stream.
#[derive(Debug, Clone)]
pub struct RtpSender {
    /// This stream's SSRC.
    pub ssrc: u32,
    payload_type: PayloadType,
    next_seq: u16,
    max_payload: usize,
    /// Packets sent.
    pub packet_count: u32,
    /// Payload octets sent.
    pub octet_count: u32,
}

impl RtpSender {
    /// Create a sender for a stream of the given encoding.
    pub fn new(ssrc: u32, encoding: Encoding) -> Self {
        RtpSender {
            ssrc,
            payload_type: payload_type_for(encoding),
            next_seq: (ssrc & 0xFFFF) as u16, // quasi-random initial seq
            max_payload: DEFAULT_MAX_PAYLOAD,
            packet_count: 0,
            octet_count: 0,
        }
    }

    /// Override the per-packet payload budget (tests).
    pub fn with_max_payload(mut self, max_payload: usize) -> Self {
        assert!(max_payload > 0);
        self.max_payload = max_payload;
        self
    }

    /// The payload type in use.
    pub fn payload_type(&self) -> PayloadType {
        self.payload_type
    }

    /// Packetize one media frame into RTP packets. The frame's `pts` (stream
    /// relative) becomes the RTP timestamp; the marker bit is set on the
    /// final fragment of the frame.
    pub fn packetize(&mut self, frame: &MediaFrame) -> Vec<RtpPacket> {
        let ts = micros_to_clock(frame.pts.as_micros(), self.payload_type.clock_rate());
        let mut remaining = frame.size as usize;
        let mut out = Vec::new();
        loop {
            let chunk = remaining.min(self.max_payload);
            remaining -= chunk;
            let marker = remaining == 0;
            out.push(RtpPacket::synthetic(
                self.payload_type,
                marker,
                self.next_seq,
                ts,
                self.ssrc,
                chunk,
            ));
            self.next_seq = self.next_seq.wrapping_add(1);
            self.packet_count += 1;
            self.octet_count = self.octet_count.wrapping_add(chunk as u32);
            if marker {
                break;
            }
        }
        out
    }

    /// Produce a sender report at local time `now`.
    pub fn sender_report(&self, now: MediaTime) -> RtcpPacket {
        RtcpPacket::SenderReport {
            ssrc: self.ssrc,
            ntp_timestamp: now.as_micros() as u64,
            rtp_timestamp: micros_to_clock(now.as_micros(), self.payload_type.clock_rate()),
            packet_count: self.packet_count,
            octet_count: self.octet_count,
            reports: Vec::new(),
        }
    }
}

/// A frame reassembled by the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedFrame {
    /// RTP timestamp (clock units) identifying the frame.
    pub timestamp: u32,
    /// Media time of the frame within the stream.
    pub pts: MediaTime,
    /// Total payload bytes reassembled.
    pub size: u32,
    /// Local arrival time of the frame's last fragment.
    pub arrival: MediaTime,
    /// True if some fragments were missing (delivered incomplete).
    pub incomplete: bool,
}

/// Receiver half of an RTP session for one media stream.
#[derive(Debug)]
pub struct RtpReceiver {
    /// Peer SSRC (locked to the first packet's SSRC).
    pub ssrc: Option<u32>,
    clock_rate: u32,
    /// Reception statistics for RTCP reporting.
    pub stats: ReceiverStats,
    /// Partial frames keyed by RTP timestamp.
    partial: BTreeMap<u32, (u32, MediaTime, bool)>, // (bytes, last_arrival, saw_marker)
    /// Completed frames ready for the buffer layer.
    ready: Vec<ReceivedFrame>,
    /// Timestamp of the last SR received (for LSR/DLSR).
    last_sr: Option<(u64, MediaTime)>,
}

impl RtpReceiver {
    /// Create a receiver expecting the given encoding.
    pub fn new(encoding: Encoding) -> Self {
        let clock_rate = payload_type_for(encoding).clock_rate();
        RtpReceiver {
            ssrc: None,
            clock_rate,
            stats: ReceiverStats::new(clock_rate),
            partial: BTreeMap::new(),
            ready: Vec::new(),
            last_sr: None,
        }
    }

    /// Ingest one RTP packet arriving at local time `arrival`.
    pub fn on_packet(&mut self, pkt: &RtpPacket, arrival: MediaTime) {
        if self.ssrc.is_none() {
            self.ssrc = Some(pkt.ssrc);
        } else if self.ssrc != Some(pkt.ssrc) {
            return; // foreign SSRC — not our stream
        }
        self.stats.on_packet(pkt, arrival);
        let entry = self
            .partial
            .entry(pkt.timestamp)
            .or_insert((0, arrival, false));
        entry.0 += pkt.payload.len() as u32;
        entry.1 = entry.1.max(arrival);
        entry.2 |= pkt.marker;
        if pkt.marker {
            // Frame complete (fragments of one frame arrive in order on our
            // simulated links; a lost fragment means the marker may carry a
            // short frame — flagged incomplete by the caller via size checks).
            let (size, last_arrival, _) = self.partial.remove(&pkt.timestamp).unwrap();
            self.ready.push(ReceivedFrame {
                timestamp: pkt.timestamp,
                pts: MediaTime::from_micros(crate::packet::clock_to_micros(
                    pkt.timestamp,
                    self.clock_rate,
                )),
                size,
                arrival: last_arrival,
                incomplete: false,
            });
        }
    }

    /// Record a sender report (for LSR/DLSR bookkeeping).
    pub fn on_sender_report(&mut self, ntp_timestamp: u64, arrival: MediaTime) {
        self.last_sr = Some((ntp_timestamp, arrival));
    }

    /// Drain frames completed since the last call.
    pub fn take_frames(&mut self) -> Vec<ReceivedFrame> {
        std::mem::take(&mut self.ready)
    }

    /// Expire partial frames whose timestamp is older than `horizon_us`
    /// behind the newest — their missing fragments were lost. Returns how
    /// many frames were abandoned.
    pub fn expire_partials(&mut self, newest_ts: u32, horizon_clock: u32) -> usize {
        let cutoff = newest_ts.wrapping_sub(horizon_clock);
        // BTreeMap over raw u32 — correct as long as the session doesn't
        // wrap mid-expiry window; sessions in this system are minutes long.
        let stale: Vec<u32> = self
            .partial
            .keys()
            .copied()
            .filter(|&ts| ts < cutoff)
            .collect();
        for ts in &stale {
            self.partial.remove(ts);
        }
        stale.len()
    }

    /// Build a receiver report at local time `now`.
    pub fn receiver_report(&mut self, reporter_ssrc: u32, now: MediaTime) -> RtcpPacket {
        let fraction = self.stats.take_interval_loss();
        let (lsr, dlsr) = match self.last_sr {
            Some((ntp, at)) => {
                let mid = ((ntp >> 16) & 0xFFFF_FFFF) as u32;
                let delay = ((now - at).as_micros().max(0) as u128 * 65_536 / 1_000_000) as u32;
                (mid, delay)
            }
            None => (0, 0),
        };
        RtcpPacket::ReceiverReport {
            ssrc: reporter_ssrc,
            reports: vec![ReportBlock {
                ssrc: self.ssrc.unwrap_or(0),
                fraction_lost: ReportBlock::fraction_from_f64(fraction),
                cumulative_lost: self.stats.cumulative_lost().min(u32::MAX as u64) as u32,
                ext_highest_seq: self.stats.extended_highest_seq(),
                jitter: micros_to_clock(self.stats.jitter().as_micros(), self.clock_rate),
                lsr,
                dlsr,
            }],
        }
    }
}

/// On-wire bytes for a frame of `size` payload bytes split at `max_payload`:
/// used by the flow scheduler to budget bandwidth including header overhead.
pub fn wire_bytes_for_frame(size: u32, max_payload: usize) -> u64 {
    let fragments = (size as usize).div_ceil(max_payload).max(1);
    size as u64 + (fragments * (RTP_HEADER_LEN + UDP_IP_OVERHEAD)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{ComponentId, GradeLevel};

    fn frame(seq: u64, pts_ms: i64, size: u32) -> MediaFrame {
        MediaFrame {
            component: ComponentId::new(1),
            seq,
            pts: MediaTime::from_millis(pts_ms),
            size,
            key: true,
            level: GradeLevel::NOMINAL,
            last: false,
        }
    }

    #[test]
    fn small_frame_single_packet_with_marker() {
        let mut tx = RtpSender::new(7, Encoding::Pcm);
        let pkts = tx.packetize(&frame(0, 0, 882));
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].marker);
        assert_eq!(pkts[0].payload.len(), 882);
    }

    #[test]
    fn large_frame_fragments_and_reassembles() {
        let mut tx = RtpSender::new(7, Encoding::Mpeg);
        let mut rx = RtpReceiver::new(Encoding::Mpeg);
        let f = frame(0, 40, 7_500);
        let pkts = tx.packetize(&f);
        assert_eq!(pkts.len(), 6); // ceil(7500/1400)
        assert!(pkts.last().unwrap().marker);
        assert!(pkts[..5].iter().all(|p| !p.marker));
        for (i, p) in pkts.iter().enumerate() {
            rx.on_packet(p, MediaTime::from_millis(50 + i as i64));
        }
        let frames = rx.take_frames();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].size, 7_500);
        assert_eq!(frames[0].pts, MediaTime::from_millis(40));
        assert_eq!(frames[0].arrival, MediaTime::from_millis(55));
    }

    #[test]
    fn sequence_numbers_contiguous_across_frames() {
        let mut tx = RtpSender::new(1, Encoding::Mpeg);
        let p1 = tx.packetize(&frame(0, 0, 3_000));
        let p2 = tx.packetize(&frame(1, 40, 3_000));
        let first = p1[0].seq;
        let all: Vec<u16> = p1.iter().chain(p2.iter()).map(|p| p.seq).collect();
        let expect: Vec<u16> = (0..all.len() as u16)
            .map(|i| first.wrapping_add(i))
            .collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn foreign_ssrc_ignored() {
        let mut tx_a = RtpSender::new(1, Encoding::Pcm);
        let mut tx_b = RtpSender::new(2, Encoding::Pcm);
        let mut rx = RtpReceiver::new(Encoding::Pcm);
        for p in tx_a.packetize(&frame(0, 0, 100)) {
            rx.on_packet(&p, MediaTime::from_millis(1));
        }
        for p in tx_b.packetize(&frame(0, 0, 100)) {
            rx.on_packet(&p, MediaTime::from_millis(2));
        }
        assert_eq!(rx.take_frames().len(), 1);
        assert_eq!(rx.ssrc, Some(1));
    }

    #[test]
    fn receiver_report_reflects_loss() {
        let mut tx = RtpSender::new(9, Encoding::Mpeg);
        let mut rx = RtpReceiver::new(Encoding::Mpeg);
        // 10 single-packet frames; drop every other packet.
        for i in 0..10 {
            let pkts = tx.packetize(&frame(i, i as i64 * 40, 1_000));
            if i % 2 == 0 {
                rx.on_packet(&pkts[0], MediaTime::from_millis(i as i64 * 40 + 10));
            }
        }
        let rr = rx.receiver_report(100, MediaTime::from_millis(500));
        match rr {
            RtcpPacket::ReceiverReport { ssrc, reports } => {
                assert_eq!(ssrc, 100);
                let b = reports[0];
                assert_eq!(b.ssrc, 9);
                // 9 expected (up to highest seq), 5 received → 4 lost.
                assert_eq!(b.cumulative_lost, 4);
                assert!(b.loss_fraction() > 0.3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sender_report_counts() {
        let mut tx = RtpSender::new(3, Encoding::Pcm);
        tx.packetize(&frame(0, 0, 882));
        tx.packetize(&frame(1, 20, 882));
        match tx.sender_report(MediaTime::from_secs(1)) {
            RtcpPacket::SenderReport {
                packet_count,
                octet_count,
                ..
            } => {
                assert_eq!(packet_count, 2);
                assert_eq!(octet_count, 1764);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lsr_dlsr_bookkeeping() {
        let mut rx = RtpReceiver::new(Encoding::Pcm);
        let mut tx = RtpSender::new(5, Encoding::Pcm);
        for p in tx.packetize(&frame(0, 0, 100)) {
            rx.on_packet(&p, MediaTime::from_millis(5));
        }
        rx.on_sender_report(0x0001_2345_6789_ABCD, MediaTime::from_secs(1));
        let rr = rx.receiver_report(8, MediaTime::from_secs(2));
        match rr {
            RtcpPacket::ReceiverReport { reports, .. } => {
                assert_eq!(reports[0].lsr, 0x2345_6789);
                assert_eq!(reports[0].dlsr, 65_536); // exactly 1 s
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partial_expiry_abandons_stale_frames() {
        let mut tx = RtpSender::new(4, Encoding::Mpeg).with_max_payload(500);
        let mut rx = RtpReceiver::new(Encoding::Mpeg);
        let pkts = tx.packetize(&frame(0, 0, 1_500)); // 3 fragments
                                                      // Deliver only the first two (marker lost).
        rx.on_packet(&pkts[0], MediaTime::from_millis(1));
        rx.on_packet(&pkts[1], MediaTime::from_millis(2));
        assert!(rx.take_frames().is_empty());
        let newest = micros_to_clock(2_000_000, 90_000);
        let abandoned = rx.expire_partials(newest, 90_000 / 2);
        assert_eq!(abandoned, 1);
    }

    #[test]
    fn wire_budget_counts_fragment_headers() {
        assert_eq!(wire_bytes_for_frame(1400, 1400), 1400 + 40);
        assert_eq!(wire_bytes_for_frame(1401, 1400), 1401 + 80);
        assert_eq!(wire_bytes_for_frame(0, 1400), 40);
    }
}

//! Property tests on the media buffer: pts ordering, accounting invariants
//! and repair-operation safety under arbitrary operation sequences.
//!
//! The shrunk cases under `buffer_props.proptest-regressions` are kept alive
//! as explicit fixed tests below (the hermetic proptest shim cannot replay
//! upstream `cc` seed hashes).

use hermes_od::client::buffers::Popped;
use hermes_od::client::{BufferConfig, MediaBuffer};
use hermes_od::core::{ComponentId, GradeLevel, MediaDuration, MediaTime};
use hermes_od::media::MediaFrame;
use proptest::prelude::*;

fn frame(seq: u64, pts_ms: i64, last: bool) -> MediaFrame {
    MediaFrame {
        component: ComponentId::new(1),
        seq,
        pts: MediaTime::from_millis(pts_ms),
        size: 500,
        key: true,
        level: GradeLevel::NOMINAL,
        last,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Push(i64),
    Pop,
    Drop(u8),
    DropStale(i64, u8),
    Duplicate(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..10_000).prop_map(Op::Push),
        Just(Op::Pop),
        (0u8..10).prop_map(Op::Drop),
        ((0i64..10_000), (0u8..10)).prop_map(|(p, n)| Op::DropStale(p, n)),
        (0u8..6).prop_map(Op::Duplicate),
    ]
}

/// Drive one operation sequence through a 32-frame buffer, checking every
/// invariant after each step. Returns `Err` with a description on the first
/// violation. Shared by the property below and the fixed regression tests.
fn check_ops(ops: &[Op]) -> Result<(), String> {
    macro_rules! ensure {
        ($cond:expr, $($fmt:tt)+) => {
            if !($cond) {
                return Err(format!($($fmt)+));
            }
        };
    }
    let cfg = BufferConfig {
        time_window: MediaDuration::from_millis(400),
        low_watermark: 0.25,
        high_watermark: 1.75,
        capacity_frames: 32,
    };
    let mut b = MediaBuffer::new(ComponentId::new(1), cfg, MediaDuration::from_millis(40));
    let mut seq = 0u64;
    let mut popped_real = 0u64;
    let mut popped_dups = 0u64;
    let mut last_popped: Option<MediaTime> = None;
    for o in ops {
        match o {
            Op::Push(pts) => {
                b.push(frame(seq, *pts, false));
                seq += 1;
            }
            Op::Pop => match b.pop() {
                Some(Popped::Frame(f)) => {
                    // Global presentation order: a popped frame is never
                    // earlier than anything already presented, nor later
                    // than anything still staged.
                    if let Some(lp) = last_popped {
                        ensure!(
                            f.pts >= lp,
                            "pts order violated: popped {} after {}",
                            f.pts,
                            lp
                        );
                    }
                    if let Some(head) = b.peek() {
                        ensure!(
                            f.pts <= head.pts,
                            "pts order violated: popped {} ahead of staged {}",
                            f.pts,
                            head.pts
                        );
                    }
                    last_popped = Some(f.pts);
                    popped_real += 1;
                }
                Some(Popped::Duplicate) => popped_dups += 1,
                None => ensure!(b.is_empty(), "pop returned None on non-empty buffer"),
            },
            Op::Drop(n) => {
                b.drop_frames(*n as u32);
            }
            Op::DropStale(pts, n) => {
                b.drop_stale(MediaTime::from_millis(*pts), *n as u32);
            }
            Op::Duplicate(n) => {
                b.duplicate_front(*n as u32);
            }
        }
        ensure!(b.len() <= 32, "capacity exceeded: {}", b.len());
        ensure!(
            b.staged_time() == MediaDuration::from_millis(40) * b.len() as i64,
            "staged_time {} != period * len {}",
            b.staged_time(),
            b.len()
        );
    }
    let s = b.stats;
    // Unit conservation over real frames AND duplicates: everything that
    // entered (pushes + queued duplicates) is either popped (real or
    // dup), dropped (drop_frames / drop_stale, which may consume dups),
    // or still staged. Late/capacity-rejected frames never enter.
    ensure!(
        s.frames_in + s.frames_duplicated
            == s.frames_out + popped_dups + s.frames_dropped + b.len() as u64,
        "accounting: in={} duplicated={} out={} dups_played={} dropped={} len={}",
        s.frames_in,
        s.frames_duplicated,
        s.frames_out,
        popped_dups,
        s.frames_dropped,
        b.len()
    );
    ensure!(s.frames_out == popped_real, "frames_out miscounted");
    ensure!(
        s.frames_duplicated >= popped_dups,
        "more dups played than queued"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any operation sequence the buffer's accounting balances:
    /// in == out + dropped + still-staged (for real frames), length never
    /// exceeds capacity, and real frames pop in pts order — globally, not
    /// just against the staged head.
    #[test]
    fn accounting_balances(ops in proptest::collection::vec(op(), 0..120)) {
        if let Err(e) = check_ops(&ops) {
            prop_assert!(false, "{}", e);
        }
    }
}

// --- pinned shrunk cases from buffer_props.proptest-regressions ----------

/// `cc b6a37980…`: drop_stale must consume queued duplicates (and count them
/// as drops) without touching the lone staged frame.
#[test]
fn regression_drop_stale_consumes_duplicate() {
    check_ops(&[
        Op::Push(0),
        Op::Drop(0),
        Op::Duplicate(1),
        Op::DropStale(0, 1),
    ])
    .unwrap();
}

/// `cc 8eb52a04…`: a frame arriving with a pts earlier than one already
/// presented must not be staged — popping it would run the presentation
/// timeline backwards.
#[test]
fn regression_late_arrival_not_presented() {
    check_ops(&[Op::Push(1_093), Op::Pop, Op::Push(0), Op::Pop]).unwrap();
}

/// `cc 6c13be6e…`: duplicate floods respect the hard frame capacity and the
/// accounting stays balanced when a push is then capacity-rejected.
#[test]
fn regression_duplicate_flood_respects_capacity() {
    check_ops(&[
        Op::Push(0),
        Op::Duplicate(3),
        Op::Duplicate(3),
        Op::Duplicate(4),
        Op::Duplicate(4),
        Op::Duplicate(1),
        Op::Duplicate(1),
        Op::Push(0),
        Op::Duplicate(3),
        Op::Duplicate(3),
        Op::Duplicate(3),
        Op::Duplicate(5),
        Op::Push(0),
    ])
    .unwrap();
}

#[test]
fn priming_is_monotone_in_window() {
    // A stricter window never primes earlier than a looser one.
    for frames_needed in 1..20usize {
        let window = MediaDuration::from_millis(40 * frames_needed as i64);
        let mut b = MediaBuffer::new(
            ComponentId::new(1),
            BufferConfig::with_window(window),
            MediaDuration::from_millis(40),
        );
        for i in 0..frames_needed {
            assert!(
                !b.is_primed() || i == frames_needed,
                "primed after {i} of {frames_needed}"
            );
            b.push(frame(i as u64, i as i64 * 40, false));
        }
        assert!(b.is_primed());
    }
}

//! The media store — the per-media-server database of inline media objects.
//!
//! "The inline data that compose the document may reside on their own media
//! servers attached to the multimedia server" (§2). An object is synthetic:
//! its metadata (encoding, duration, content seed) fully determines the
//! deterministic frame sequence a [`FrameSource`] generates for it.

use crate::frames::FrameSource;
use hermes_core::{ComponentId, Encoding, MediaDuration, MediaKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Metadata of one stored media object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaObject {
    /// Storage key (the `SOURCE` object name).
    pub key: String,
    /// Encoding of the stored data.
    pub encoding: Encoding,
    /// Intrinsic duration of the content (images/text: presentation-
    /// independent, used only for sizing).
    pub duration: MediaDuration,
    /// Content seed driving the deterministic frame sizes.
    pub seed: u64,
}

impl MediaObject {
    /// The media kind of the object.
    pub fn kind(&self) -> MediaKind {
        self.encoding.kind()
    }
    /// Open a frame source streaming this object for component `component`,
    /// clipped to `duration` (the scenario's `DURATION` may be shorter than
    /// the intrinsic duration).
    pub fn open(&self, component: ComponentId, duration: MediaDuration) -> FrameSource {
        let d = duration.min(self.duration);
        FrameSource::new(component, self.encoding, self.seed, d)
    }
}

/// A key → object map; one per media server.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MediaStore {
    objects: BTreeMap<String, MediaObject>,
}

impl MediaStore {
    /// Empty store.
    pub fn new() -> Self {
        MediaStore::default()
    }
    /// Insert (or replace) an object.
    pub fn insert(&mut self, object: MediaObject) {
        self.objects.insert(object.key.clone(), object);
    }
    /// Convenience: create and insert an object.
    pub fn add(
        &mut self,
        key: impl Into<String>,
        encoding: Encoding,
        duration: MediaDuration,
        seed: u64,
    ) -> &MediaObject {
        let key = key.into();
        self.insert(MediaObject {
            key: key.clone(),
            encoding,
            duration,
            seed,
        });
        self.objects.get(&key).unwrap()
    }
    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&MediaObject> {
        self.objects.get(key)
    }
    /// Open a frame source for a stored object without cloning its
    /// metadata — the per-stream handle the delivery path should use.
    pub fn open(
        &self,
        key: &str,
        component: ComponentId,
        duration: MediaDuration,
    ) -> Option<FrameSource> {
        self.objects.get(key).map(|o| o.open(component, duration))
    }
    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }
    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
    /// Iterate all objects in key order.
    pub fn iter(&self) -> impl Iterator<Item = &MediaObject> {
        self.objects.values()
    }
    /// Objects of one media kind.
    pub fn of_kind(&self, kind: MediaKind) -> impl Iterator<Item = &MediaObject> {
        self.objects.values().filter(move |o| o.kind() == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_iterate() {
        let mut s = MediaStore::new();
        assert!(s.is_empty());
        s.add("v.mpg", Encoding::Mpeg, MediaDuration::from_secs(10), 1);
        s.add("a.pcm", Encoding::Pcm, MediaDuration::from_secs(10), 2);
        s.add("i.jpg", Encoding::Jpeg, MediaDuration::from_secs(1), 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get("v.mpg").unwrap().encoding, Encoding::Mpeg);
        assert!(s.get("missing").is_none());
        assert_eq!(s.of_kind(MediaKind::Audio).count(), 1);
        // BTreeMap iteration is key-ordered.
        let keys: Vec<&str> = s.iter().map(|o| o.key.as_str()).collect();
        assert_eq!(keys, vec!["a.pcm", "i.jpg", "v.mpg"]);
    }

    #[test]
    fn open_clips_to_requested_duration() {
        let mut s = MediaStore::new();
        s.add("v.mpg", Encoding::Mpeg, MediaDuration::from_secs(10), 1);
        let obj = s.get("v.mpg").unwrap();
        // Scenario asks for only 2 s of the 10 s object.
        let frames = obj
            .open(ComponentId::new(5), MediaDuration::from_secs(2))
            .collect_all();
        assert_eq!(frames.len(), 50);
        assert_eq!(frames[0].component, ComponentId::new(5));
        // Asking for more than the object holds clips to the object.
        let frames = obj
            .open(ComponentId::new(5), MediaDuration::from_secs(60))
            .collect_all();
        assert_eq!(frames.len(), 250);
    }

    #[test]
    fn replace_overwrites() {
        let mut s = MediaStore::new();
        s.add("x", Encoding::Gif, MediaDuration::from_secs(1), 1);
        s.add("x", Encoding::Bmp, MediaDuration::from_secs(1), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get("x").unwrap().encoding, Encoding::Bmp);
    }
}

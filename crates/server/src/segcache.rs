//! The segment cache fronting the distributed media tier.
//!
//! A byte-bounded LRU over fetched media segments with *interval-caching*
//! admission: a segment is admitted only while at least two streams are
//! concurrently reading its object, so what stays resident is the interval
//! between consecutive viewers of the same content — the working set that
//! actually produces hits — while one-off fetches pass straight through
//! without evicting anything useful (Dan & Sitaram's interval caching, as
//! used throughout the large-scale VoD literature).

use hermes_core::GradeLevel;
use hermes_media::SegmentFrame;
use std::collections::{BTreeMap, BTreeSet};

/// Identity of one cached segment.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SegmentKey {
    /// The media object's storage key.
    pub object: String,
    /// Quality level the frames were computed at.
    pub level: GradeLevel,
    /// Segment index within the object.
    pub segment: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    frames: Vec<SegmentFrame>,
    bytes: u64,
    stamp: u64,
}

/// Cache statistics (the experiment tables' raw data).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentCacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Segments admitted.
    pub admitted: u64,
    /// Inserts refused by the interval-caching admission policy.
    pub rejected: u64,
    /// Segments evicted to make room.
    pub evicted: u64,
}

impl SegmentCacheStats {
    /// Hit rate in [0, 1]; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Byte-bounded LRU segment cache with interval-caching admission.
#[derive(Debug, Clone, Default)]
pub struct SegmentCache {
    capacity_bytes: u64,
    used_bytes: u64,
    entries: BTreeMap<SegmentKey, Entry>,
    /// Recency index: stamp → key. Stamps are unique (monotone clock), so
    /// the first entry is always the least recently used.
    recency: BTreeMap<u64, SegmentKey>,
    clock: u64,
    /// Active readers per object key — maintained by the stream lifecycle
    /// (register on stream start, deregister on teardown). Admission
    /// requires ≥ 2: a segment is only worth keeping while another viewer
    /// is behind (or beside) the one that fetched it.
    readers: BTreeMap<String, u32>,
    /// Objects pinned by shared (multicast) flows: their segments are
    /// admitted regardless of reader count and are exempt from LRU
    /// eviction while the pin holds — a shared flow serves many viewers
    /// from one fetch sequence, so its working set must not be displaced
    /// by one-off unicast traffic.
    pinned: BTreeSet<String>,
    /// Statistics.
    pub stats: SegmentCacheStats,
}

impl SegmentCache {
    /// A cache bounded to `capacity_bytes` of frame payload.
    pub fn new(capacity_bytes: u64) -> Self {
        SegmentCache {
            capacity_bytes,
            ..SegmentCache::default()
        }
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }
    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }
    /// Number of resident segments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A stream over `object` started.
    pub fn reader_started(&mut self, object: &str) {
        *self.readers.entry(object.to_string()).or_insert(0) += 1;
    }

    /// A stream over `object` ended.
    pub fn reader_finished(&mut self, object: &str) {
        if let Some(n) = self.readers.get_mut(object) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.readers.remove(object);
            }
        }
    }

    /// Concurrent readers of `object`.
    pub fn readers(&self, object: &str) -> u32 {
        *self.readers.get(object).unwrap_or(&0)
    }

    /// Pin `object`: admit its segments unconditionally and protect them
    /// from eviction until [`SegmentCache::unpin`].
    pub fn pin(&mut self, object: &str) {
        self.pinned.insert(object.to_string());
    }

    /// Drop the pin on `object`; its resident segments return to normal
    /// LRU life.
    pub fn unpin(&mut self, object: &str) {
        self.pinned.remove(object);
    }

    /// Is `object` currently pinned?
    pub fn is_pinned(&self, object: &str) -> bool {
        self.pinned.contains(object)
    }

    /// Would an insert for `object` currently be admitted?
    pub fn admits(&self, object: &str) -> bool {
        self.capacity_bytes > 0 && (self.readers(object) >= 2 || self.pinned.contains(object))
    }

    /// Look up a segment, refreshing its recency on a hit. Counts a hit or
    /// miss in [`SegmentCacheStats`].
    pub fn get(&mut self, key: &SegmentKey) -> Option<&[SegmentFrame]> {
        if let Some(entry) = self.entries.get_mut(key) {
            self.recency.remove(&entry.stamp);
            self.clock += 1;
            entry.stamp = self.clock;
            self.recency.insert(entry.stamp, key.clone());
            self.stats.hits += 1;
            Some(&self.entries[key].frames)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Peek without touching recency or statistics (tests/inspection).
    pub fn contains(&self, key: &SegmentKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Offer a fetched segment. Admission applies the interval-caching
    /// policy ([`SegmentCache::admits`]); an admitted segment evicts from
    /// the LRU end until it fits. Segments larger than the whole cache are
    /// rejected. Returns whether the segment is now resident.
    pub fn insert(&mut self, key: SegmentKey, frames: Vec<SegmentFrame>) -> bool {
        let bytes = hermes_media::segment_bytes(&frames);
        if !self.admits(&key.object) || bytes > self.capacity_bytes || frames.is_empty() {
            self.stats.rejected += 1;
            return false;
        }
        if let Some(old) = self.entries.remove(&key) {
            // Replacing an existing entry: drop its bytes and recency slot.
            self.recency.remove(&old.stamp);
            self.used_bytes -= old.bytes;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            // Oldest entry whose object is not pinned; if only pinned
            // segments remain, there is nothing evictable — reject the
            // insert rather than displace a shared flow's working set.
            let Some(stamp) = self
                .recency
                .iter()
                .find(|(_, k)| !self.pinned.contains(&k.object))
                .map(|(&stamp, _)| stamp)
            else {
                self.stats.rejected += 1;
                return false;
            };
            let victim = self.recency.remove(&stamp).unwrap();
            let evicted = self.entries.remove(&victim).unwrap();
            self.used_bytes -= evicted.bytes;
            self.stats.evicted += 1;
        }
        self.clock += 1;
        self.entries.insert(
            key.clone(),
            Entry {
                frames,
                bytes,
                stamp: self.clock,
            },
        );
        self.recency.insert(self.clock, key);
        self.used_bytes += bytes;
        self.stats.admitted += 1;
        true
    }

    /// Resident segment keys, least recently used first (tests/inspection).
    pub fn lru_order(&self) -> Vec<SegmentKey> {
        self.recency.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(object: &str, segment: u64) -> SegmentKey {
        SegmentKey {
            object: object.to_string(),
            level: GradeLevel::NOMINAL,
            segment,
        }
    }

    fn frames(n: usize, size: u32) -> Vec<SegmentFrame> {
        vec![SegmentFrame { size, key: true }; n]
    }

    /// A cache with `obj` shared by two readers (admission open).
    fn shared(capacity: u64, obj: &str) -> SegmentCache {
        let mut c = SegmentCache::new(capacity);
        c.reader_started(obj);
        c.reader_started(obj);
        c
    }

    #[test]
    fn single_reader_segments_are_not_admitted() {
        let mut c = SegmentCache::new(1 << 20);
        c.reader_started("v");
        assert!(!c.insert(key("v", 0), frames(4, 100)));
        assert!(c.is_empty());
        assert_eq!(c.stats.rejected, 1);
        // A second concurrent viewer opens admission.
        c.reader_started("v");
        assert!(c.insert(key("v", 1), frames(4, 100)));
        assert_eq!(c.len(), 1);
        // Last viewer leaving closes it again.
        c.reader_finished("v");
        c.reader_finished("v");
        assert!(!c.insert(key("v", 2), frames(4, 100)));
    }

    #[test]
    fn capacity_is_never_exceeded_and_lru_evicts_first() {
        let mut c = shared(1_000, "v");
        assert!(c.insert(key("v", 0), frames(1, 400)));
        assert!(c.insert(key("v", 1), frames(1, 400)));
        assert_eq!(c.used_bytes(), 800);
        // Touch segment 0 so segment 1 is now the LRU victim.
        assert!(c.get(&key("v", 0)).is_some());
        assert!(c.insert(key("v", 2), frames(1, 400)));
        assert!(c.used_bytes() <= 1_000);
        assert!(c.contains(&key("v", 0)), "recently used evicted");
        assert!(!c.contains(&key("v", 1)), "LRU survived");
        assert!(c.contains(&key("v", 2)));
        assert_eq!(c.stats.evicted, 1);
    }

    #[test]
    fn oversized_segment_rejected_zero_capacity_inert() {
        let mut c = shared(100, "v");
        assert!(!c.insert(key("v", 0), frames(1, 400)));
        assert!(c.is_empty());
        let mut z = shared(0, "v");
        assert!(!z.admits("v"));
        assert!(!z.insert(key("v", 0), frames(1, 1)));
    }

    #[test]
    fn get_counts_hits_and_misses() {
        let mut c = shared(1_000, "v");
        assert!(c.get(&key("v", 0)).is_none());
        c.insert(key("v", 0), frames(2, 100));
        assert_eq!(c.get(&key("v", 0)).map(|f| f.len()), Some(2));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pinned_objects_admit_and_resist_eviction() {
        let mut c = SegmentCache::new(1_000);
        // No readers at all: a pinned object is still admitted.
        c.pin("hot");
        assert!(c.admits("hot"));
        assert!(c.insert(key("hot", 0), frames(1, 400)));
        // A shared-by-readers object fills the rest, then needs room: the
        // pinned entry is skipped and the unpinned LRU goes instead.
        c.reader_started("v");
        c.reader_started("v");
        assert!(c.insert(key("v", 0), frames(1, 400)));
        assert!(c.insert(key("v", 1), frames(1, 400)));
        assert!(c.contains(&key("hot", 0)), "pinned entry evicted");
        assert!(!c.contains(&key("v", 0)), "unpinned LRU survived");
        // Unpinning returns the object to normal admission + LRU life.
        c.unpin("hot");
        assert!(!c.admits("hot"));
        assert!(c.insert(key("v", 2), frames(1, 400)));
        assert!(!c.contains(&key("hot", 0)), "unpinned entry still immune");
    }

    #[test]
    fn fully_pinned_cache_rejects_instead_of_looping() {
        let mut c = SegmentCache::new(500);
        c.pin("a");
        c.pin("b");
        assert!(c.insert(key("a", 0), frames(1, 400)));
        // No unpinned victim exists and the newcomer does not fit: the
        // insert must be refused, not spin or evict a pinned segment.
        assert!(!c.insert(key("b", 0), frames(1, 400)));
        assert!(c.contains(&key("a", 0)));
        assert_eq!(c.stats.rejected, 1);
    }

    #[test]
    fn reinsert_replaces_without_double_counting_bytes() {
        let mut c = shared(1_000, "v");
        c.insert(key("v", 0), frames(1, 300));
        c.insert(key("v", 0), frames(1, 500));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 500);
        assert_eq!(c.lru_order(), vec![key("v", 0)]);
    }
}

//! Robustness: the markup pipeline never panics on arbitrary input — it
//! either parses or returns a positioned error.

use hermes_od::core::{DocumentId, ServerId};
use hermes_od::hml::{parse, scenario_from_markup};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary ASCII soup never panics the lexer/parser.
    #[test]
    fn parser_total_on_ascii(s in "[ -~\\n\\t]{0,400}") {
        let _ = parse(&s);
    }

    /// Arbitrary bytes shaped like markup never panic either.
    #[test]
    fn parser_total_on_taglike(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<TITLE>".to_string()),
                Just("</TITLE>".to_string()),
                Just("<TEXT>".to_string()),
                Just("</TEXT>".to_string()),
                Just("<IMG>".to_string()),
                Just("</IMG>".to_string()),
                Just("<AU_VI>".to_string()),
                Just("</AU_VI>".to_string()),
                Just("<HLINK>".to_string()),
                Just("</HLINK>".to_string()),
                Just("<B>".to_string()),
                Just("</B>".to_string()),
                Just("<PAR>".to_string()),
                Just("<SEP>".to_string()),
                Just("SOURCE=x".to_string()),
                Just("STARTIME=1s".to_string()),
                Just("STARTIME=-5s".to_string()),
                Just("DURATION=99999999999s".to_string()),
                Just("ID=1".to_string()),
                Just("ID=1".to_string()),
                Just("NOTE=\"unterminated".to_string()),
                Just("WHERE=1,2".to_string()),
                Just("TO=doc1".to_string()),
                Just("AT=2s".to_string()),
                "[a-z ]{0,12}".prop_map(|s| s),
            ],
            0..30,
        )
    ) {
        let src = parts.join(" ");
        // Must not panic; errors are fine.
        let _ = scenario_from_markup(&src, DocumentId::new(1), ServerId::new(0));
    }

    /// Parse errors carry positions inside the input (or None at EOF).
    #[test]
    fn errors_positioned(s in "<TITLE>[a-z ]{1,10}</TITLE> <IMG> [A-Z]{1,8}=[a-z]{1,5} </IMG>") {
        if let Err(e) = parse(&s) {
            if let Some(pos) = e.pos {
                let lines = s.lines().count() as u32;
                prop_assert!(pos.line >= 1 && pos.line <= lines.max(1));
            }
        }
    }
}

#[test]
fn pathological_nesting_rejected_without_stack_overflow() {
    // Deeply nested style spans parse (recursion is bounded by input size;
    // 1000 levels is well within stack limits) or error cleanly.
    let mut src = String::from("<TITLE>t</TITLE> <TEXT> ");
    for _ in 0..1000 {
        src.push_str("<B> ");
    }
    src.push('x');
    for _ in 0..1000 {
        src.push_str(" </B>");
    }
    src.push_str(" </TEXT>");
    let doc = parse(&src).expect("deep nesting parses");
    // All 1000 levels collapse into one bold run.
    assert_eq!(doc.sentences[0].body.len(), 1);
}

/// Every byte-prefix of a known-good document either parses or errors with
/// a position — truncation mid-tag, mid-attribute, or mid-quote must never
/// panic. The full document and the empty prefix both parse; at least one
/// intermediate truncation must be rejected.
#[test]
fn truncated_documents_error_cleanly() {
    let full = hermes_od::hml::FIGURE2_MARKUP;
    let mut rejected = 0usize;
    for end in 0..=full.len() {
        let prefix = &full[..end]; // ASCII markup: every index is a boundary
        match parse(prefix) {
            Ok(_) => {}
            Err(e) => {
                rejected += 1;
                if let Some(pos) = e.pos {
                    let lines = prefix.lines().count() as u32;
                    assert!(
                        pos.line >= 1 && pos.line <= lines.max(1) + 1,
                        "position {pos:?} outside truncated input ({lines} lines)"
                    );
                }
            }
        }
    }
    assert!(parse(full).is_ok());
    assert!(
        rejected > 0,
        "no truncation was rejected — parser accepts mid-tag cuts?"
    );
}

/// Interleaved (non-nested) style tags are a structural error, not a panic:
/// `<A> <B> </A> </B>` must be rejected with a position.
#[test]
fn interleaved_tags_rejected() {
    let cases = [
        "<TITLE>t</TITLE> <TEXT> <B> x </TEXT> </B>",
        "<TITLE>t</TITLE> <TEXT> <B> <I> x </B> </I> </TEXT>",
        "<TITLE>t</TITLE> <TEXT> </B> x <B> </TEXT>",
        "<TITLE>t</TITLE> <TEXT> <B> x </TEXT>",
    ];
    for src in cases {
        let e = parse(src).expect_err(src);
        assert!(e.pos.is_some(), "no position for {src:?}: {e}");
    }
}

/// Oversized attribute *names* and absurdly long unquoted values must be
/// handled without panicking: unknown huge names are positioned errors,
/// huge values for known attributes survive the round trip.
#[test]
fn oversized_attribute_names_and_values_handled() {
    let huge_name = "A".repeat(50_000);
    let src = format!("<TITLE>t</TITLE> <IMG> {huge_name}=x ID=1 </IMG>");
    let e = scenario_from_markup(&src, DocumentId::new(1), ServerId::new(0)).unwrap_err();
    assert!(!format!("{e}").is_empty());

    // A huge *quoted* value parses and is preserved verbatim.
    let huge_note = "n".repeat(200_000);
    let src = format!("<TITLE>t</TITLE> <IMG> SOURCE=i.jpg ID=1 NOTE=\"{huge_note}\" </IMG>");
    assert!(scenario_from_markup(&src, DocumentId::new(1), ServerId::new(0)).is_ok());

    // Truncating inside the huge quoted value is an unterminated-value
    // error, not a panic.
    let cut = &src[..src.len() - 10];
    assert!(parse(cut).is_err());
}

#[test]
fn enormous_attribute_values_handled() {
    let big = "x".repeat(100_000);
    let src = format!("<TITLE>t</TITLE> <IMG> SOURCE={big} ID=1 </IMG>");
    let s = scenario_from_markup(&src, DocumentId::new(1), ServerId::new(0)).unwrap();
    match &s.components[0].content {
        hermes_od::core::ComponentContent::Stored { source, .. } => {
            assert_eq!(source.object.len(), 100_000);
        }
        other => panic!("{other:?}"),
    }
}

//! Identifier newtypes used across the service.
//!
//! The paper stresses that "each component of a hypermedia object has a
//! unique identification number" (`ID` keyword) because the client must
//! demultiplex media streams arriving in parallel from several media servers.
//! Strongly-typed ids keep those namespaces from being confused.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Construct from a raw integer.
            pub const fn new(v: u64) -> Self {
                $name(v)
            }
            /// Raw integer value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies one media component within a hypermedia document
    /// (the markup language's `ID` attribute).
    ComponentId,
    "cmp-"
);
id_type!(
    /// Identifies one media stream / network flow carrying a component.
    StreamId,
    "str-"
);
id_type!(
    /// Identifies a hypermedia document (a lesson, in Hermes terms).
    DocumentId,
    "doc-"
);
id_type!(
    /// Identifies a multimedia (Hermes) server in the topology.
    ServerId,
    "srv-"
);
id_type!(
    /// Identifies a media server attached to a multimedia server.
    MediaServerId,
    "med-"
);
id_type!(
    /// Identifies a client/browser connection session.
    SessionId,
    "ses-"
);
id_type!(
    /// Identifies a subscribed user.
    UserId,
    "usr-"
);
id_type!(
    /// Identifies a network node in the simulator.
    NodeId,
    "node-"
);
id_type!(
    /// Identifies a network connection (transport flow) in the simulator.
    ConnectionId,
    "conn-"
);

/// A monotonically increasing id allocator, one per id namespace.
#[derive(Debug, Default, Clone)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Allocator whose first issued id is 0.
    pub fn new() -> Self {
        IdAllocator { next: 0 }
    }
    /// Allocator whose first issued id is `start`.
    pub fn starting_at(start: u64) -> Self {
        IdAllocator { next: start }
    }
    /// Issue the next raw id value.
    pub fn next_raw(&mut self) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }
    /// Issue the next id, converted into any id newtype.
    #[allow(clippy::should_implement_trait)]
    pub fn next<T: From<u64>>(&mut self) -> T {
        T::from(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ComponentId::new(7).to_string(), "cmp-7");
        assert_eq!(ServerId::new(0).to_string(), "srv-0");
        assert_eq!(SessionId::new(42).to_string(), "ses-42");
    }

    #[test]
    fn id_types_are_distinct() {
        // This is a compile-time property; here we just confirm values round-trip.
        let c = ComponentId::from(3u64);
        assert_eq!(c.raw(), 3);
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut a = IdAllocator::new();
        let x: StreamId = a.next();
        let y: StreamId = a.next();
        let z: StreamId = a.next();
        assert_eq!((x.raw(), y.raw(), z.raw()), (0, 1, 2));
    }

    #[test]
    fn allocator_starting_at() {
        let mut a = IdAllocator::starting_at(100);
        let x: DocumentId = a.next();
        assert_eq!(x.raw(), 100);
    }
}

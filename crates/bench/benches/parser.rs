//! Criterion bench: markup-language lexing, parsing, serialization and
//! scenario lowering (the FIG1 pipeline).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hermes_core::{DocumentId, ServerId};
use hermes_hml::{build_scenario, parse, serialize, FIGURE2_MARKUP};

fn large_document(paragraphs: usize) -> String {
    let mut m = String::from("<TITLE> Large generated document </TITLE>\n<H1> Chapter </H1>\n");
    for j in 0..paragraphs {
        m.push_str(&format!(
            "<TEXT> paragraph {j} with <B> emphasis </B> and <I> style </I> </TEXT>\n<PAR>\n\
             <IMG> SOURCE=figs/f{j}.jpg STARTIME={j}s DURATION=2s WHERE=10,20 WIDTH=320 HEIGHT=240 ID={} </IMG>\n",
            j * 3 + 1
        ));
    }
    m.push_str(
        "<AU_VI> STARTIME=0s DURATION=30s SOURCE=a.pcm SOURCE=v.mpg ID=9000 ID=9001 </AU_VI>\n",
    );
    m.push_str("<HLINK> AT=60s TO=doc2 KIND=SEQ </HLINK>\n");
    m
}

fn bench_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("hml");

    g.throughput(Throughput::Bytes(FIGURE2_MARKUP.len() as u64));
    g.bench_function("parse_figure2", |b| {
        b.iter(|| parse(FIGURE2_MARKUP).unwrap())
    });

    let big = large_document(100);
    g.throughput(Throughput::Bytes(big.len() as u64));
    g.bench_function("parse_large_100p", |b| b.iter(|| parse(&big).unwrap()));

    let ast = parse(&big).unwrap();
    g.throughput(Throughput::Elements(1));
    g.bench_function("serialize_large", |b| b.iter(|| serialize(&ast)));

    g.bench_function("lower_to_scenario_large", |b| {
        b.iter_batched(
            || ast.clone(),
            |doc| build_scenario(&doc, DocumentId::new(1), ServerId::new(0)).unwrap(),
            BatchSize::SmallInput,
        )
    });

    g.bench_function("round_trip_figure2", |b| {
        b.iter(|| {
            let doc = parse(FIGURE2_MARKUP).unwrap();
            let text = serialize(&doc);
            parse(&text).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);

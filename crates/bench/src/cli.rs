//! Tiny shared argument parsing for the `exp_*` binaries.
//!
//! Every experiment accepts the same flags, so CI and local sweeps can
//! vary them without editing constants:
//!
//! - `--seed N` — override the experiment's base RNG seed,
//! - `--out PATH` — additionally write every caption/table/comment line
//!   to `PATH` (stdout is unaffected),
//! - `--smoke` — run a reduced grid where the experiment supports one
//!   (used by the CI determinism gate),
//! - `--trace PATH` — where experiments that export observability traces
//!   (EXP-OBS) write them: `PATH.jsonl` (event log) and `PATH.trace.json`
//!   (Chrome trace-event / Perfetto),
//! - `--chaos-seeds N` — how many fault-plan seeds the chaos harness
//!   (EXP-CHAOS) sweeps,
//! - `--chaos-intensity X` — scales the chaos fault-injection rate
//!   (1.0 = the profile as written).
//!
//! No external crates: flag parsing is a few lines and the binaries need
//! nothing fancier.

use crate::tables::Table;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Parsed common experiment options.
#[derive(Debug, Clone, Default)]
pub struct ExpOpts {
    /// `--seed N`: base-seed override.
    pub seed: Option<u64>,
    /// `--out PATH`: tee experiment output into this file.
    pub out: Option<PathBuf>,
    /// `--smoke`: reduced grid for CI.
    pub smoke: bool,
    /// `--trace PATH`: trace-export path prefix (experiments that export
    /// observability traces write `PATH.jsonl` and `PATH.trace.json`).
    pub trace: Option<PathBuf>,
    /// `--chaos-seeds N`: fault-plan seeds for the chaos harness to sweep.
    pub chaos_seeds: Option<u64>,
    /// `--chaos-intensity X`: multiplier on the chaos incident rate.
    pub chaos_intensity: Option<f64>,
}

impl ExpOpts {
    /// Parse the process arguments; prints usage and exits on anything
    /// unrecognised.
    pub fn parse() -> Self {
        match Self::from_args(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(e) => {
                let mut err = std::io::stderr().lock();
                let _ = writeln!(
                    err,
                    "{e}\nusage: [--seed N] [--out PATH] [--smoke] [--trace PATH] \
                     [--chaos-seeds N] [--chaos-intensity X]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument list (testable core of
    /// [`parse`](Self::parse)).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut opts = ExpOpts::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    opts.seed = Some(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
                }
                "--out" => {
                    let v = it.next().ok_or("--out needs a path")?;
                    opts.out = Some(PathBuf::from(v));
                }
                "--smoke" => opts.smoke = true,
                "--trace" => {
                    let v = it.next().ok_or("--trace needs a path")?;
                    opts.trace = Some(PathBuf::from(v));
                }
                "--chaos-seeds" => {
                    let v = it.next().ok_or("--chaos-seeds needs a value")?;
                    let n: u64 = v.parse().map_err(|_| format!("bad seed count {v:?}"))?;
                    if n == 0 {
                        return Err("--chaos-seeds must be at least 1".into());
                    }
                    opts.chaos_seeds = Some(n);
                }
                "--chaos-intensity" => {
                    let v = it.next().ok_or("--chaos-intensity needs a value")?;
                    let x: f64 = v.parse().map_err(|_| format!("bad intensity {v:?}"))?;
                    if !x.is_finite() || x <= 0.0 {
                        return Err("--chaos-intensity must be a positive number".into());
                    }
                    opts.chaos_intensity = Some(x);
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(opts)
    }

    /// The base seed, falling back to the experiment's default.
    pub fn seed(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// A seed list of the same length as `defaults`: the defaults
    /// themselves, or consecutive seeds from the `--seed` override.
    pub fn seeds(&self, defaults: &[u64]) -> Vec<u64> {
        match self.seed {
            Some(base) => (0..defaults.len() as u64).map(|i| base + i).collect(),
            None => defaults.to_vec(),
        }
    }

    /// The output sink honouring `--out`.
    pub fn sink(&self) -> Sink {
        Sink::new(self.out.as_deref())
    }

    /// The flags to forward to a child experiment process (everything
    /// except `--out` and `--trace`, which must stay per-process to avoid
    /// clobbering).
    pub fn forwarded_args(&self) -> Vec<String> {
        let mut v = Vec::new();
        if let Some(s) = self.seed {
            v.push("--seed".into());
            v.push(s.to_string());
        }
        if self.smoke {
            v.push("--smoke".into());
        }
        if let Some(n) = self.chaos_seeds {
            v.push("--chaos-seeds".into());
            v.push(n.to_string());
        }
        if let Some(x) = self.chaos_intensity {
            v.push("--chaos-intensity".into());
            v.push(x.to_string());
        }
        v
    }

    /// Chaos seed count, falling back to the experiment's default.
    pub fn chaos_seeds(&self, default: u64) -> u64 {
        self.chaos_seeds.unwrap_or(default)
    }

    /// Chaos intensity multiplier (default 1.0).
    pub fn chaos_intensity(&self) -> f64 {
        self.chaos_intensity.unwrap_or(1.0)
    }
}

/// Writes experiment output to stdout and, when `--out` was given, to a
/// file as well.
pub struct Sink {
    file: Option<File>,
}

impl Sink {
    /// A sink teeing into `path` (if any). Panics if the file cannot be
    /// created — a misspelled `--out` should fail loudly, not silently
    /// drop results.
    pub fn new(path: Option<&Path>) -> Self {
        Sink {
            file: path.map(|p| {
                File::create(p).unwrap_or_else(|e| panic!("cannot create {}: {e}", p.display()))
            }),
        }
    }

    /// Emit one line (commentary, workload description).
    pub fn line(&mut self, s: &str) {
        println!("{s}");
        if let Some(f) = &mut self.file {
            writeln!(f, "{s}").expect("write --out file");
        }
    }

    /// Emit a captioned table (the `print_table` format).
    pub fn table(&mut self, caption: &str, t: &Table) {
        self.line(&format!("\n== {caption} =="));
        self.line(&t.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_all_flags() {
        let o = ExpOpts::from_args(args(&[
            "--seed", "9", "--out", "/tmp/x", "--smoke", "--trace", "/tmp/t",
        ]))
        .unwrap();
        assert_eq!(o.seed, Some(9));
        assert_eq!(o.out.as_deref(), Some(Path::new("/tmp/x")));
        assert!(o.smoke);
        assert_eq!(o.trace.as_deref(), Some(Path::new("/tmp/t")));
        // `--out`/`--trace` stay per-process; only seed and smoke forward.
        assert_eq!(o.forwarded_args(), args(&["--seed", "9", "--smoke"]));
    }

    #[test]
    fn trace_needs_a_path() {
        assert!(ExpOpts::from_args(args(&["--trace"])).is_err());
    }

    #[test]
    fn chaos_flags_parse_and_forward() {
        let o =
            ExpOpts::from_args(args(&["--chaos-seeds", "64", "--chaos-intensity", "2.5"])).unwrap();
        assert_eq!(o.chaos_seeds(200), 64);
        assert_eq!(o.chaos_intensity(), 2.5);
        assert_eq!(
            o.forwarded_args(),
            args(&["--chaos-seeds", "64", "--chaos-intensity", "2.5"])
        );
        let d = ExpOpts::default();
        assert_eq!(d.chaos_seeds(200), 200);
        assert_eq!(d.chaos_intensity(), 1.0);
    }

    #[test]
    fn chaos_flags_reject_nonsense() {
        assert!(ExpOpts::from_args(args(&["--chaos-seeds", "0"])).is_err());
        assert!(ExpOpts::from_args(args(&["--chaos-seeds", "x"])).is_err());
        assert!(ExpOpts::from_args(args(&["--chaos-intensity", "-1"])).is_err());
        assert!(ExpOpts::from_args(args(&["--chaos-intensity", "nan"])).is_err());
        assert!(ExpOpts::from_args(args(&["--chaos-intensity"])).is_err());
    }

    #[test]
    fn rejects_unknown_and_missing_values() {
        assert!(ExpOpts::from_args(args(&["--nope"])).is_err());
        assert!(ExpOpts::from_args(args(&["--seed"])).is_err());
        assert!(ExpOpts::from_args(args(&["--seed", "x"])).is_err());
    }

    #[test]
    fn seed_helpers_honour_override() {
        let o = ExpOpts::from_args(args(&["--seed", "100"])).unwrap();
        assert_eq!(o.seed(7), 100);
        assert_eq!(o.seeds(&[1, 2, 3]), vec![100, 101, 102]);
        let d = ExpOpts::default();
        assert_eq!(d.seed(7), 7);
        assert_eq!(d.seeds(&[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn sink_tees_to_file() {
        let path = std::env::temp_dir().join("hermes-bench-cli-test.txt");
        let mut sink = Sink::new(Some(&path));
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1"]);
        sink.line("hello");
        sink.table("cap", &t);
        drop(sink);
        let got = std::fs::read_to_string(&path).unwrap();
        assert!(got.contains("hello"));
        assert!(got.contains("== cap =="));
        assert!(got.contains('1'));
        let _ = std::fs::remove_file(&path);
    }
}

#![allow(clippy::explicit_counter_loop)]
//! Property tests: the markup language round-trips arbitrary documents, and
//! builder-generated documents always lower to well-formed scenarios.

use hermes_od::core::{
    DocumentId, HeadingLevel, LinkKind, MediaDuration, MediaSource, MediaTime, Region, ServerId,
};
use hermes_od::hml::{build_scenario, parse, serialize, DocumentBuilder};
use proptest::prelude::*;

/// Text fragments that are safe as markup STRING content (no tags; the
/// lexer normalizes whitespace, so use single-space words; avoid bare
/// ALL-CAPS attribute-keyword look-alikes followed by '='; quotes are fine
/// in NOTE values only — keep plain text here).
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z][a-z0-9]{0,8}", 1..6).prop_map(|ws| ws.join(" "))
}

fn duration_strategy() -> impl Strategy<Value = MediaDuration> {
    (1i64..600_000).prop_map(MediaDuration::from_millis)
}

fn time_strategy() -> impl Strategy<Value = MediaTime> {
    (0i64..600_000).prop_map(MediaTime::from_millis)
}

#[derive(Debug, Clone)]
enum Item {
    Heading(u8, String),
    Text(String),
    Paragraph,
    Image(MediaTime, MediaDuration, i32, i32, u32, u32),
    Audio(MediaTime, MediaDuration),
    Video(MediaTime, MediaDuration),
    AudioVideo(MediaTime, MediaDuration),
    Link(bool, u64, Option<MediaTime>),
    Separator,
}

fn item_strategy() -> impl Strategy<Value = Item> {
    prop_oneof![
        (1u8..=3, text_strategy()).prop_map(|(l, t)| Item::Heading(l, t)),
        text_strategy().prop_map(Item::Text),
        Just(Item::Paragraph),
        (
            time_strategy(),
            duration_strategy(),
            -500i32..500,
            -500i32..500,
            1u32..2000,
            1u32..2000
        )
            .prop_map(|(s, d, x, y, w, h)| Item::Image(s, d, x, y, w, h)),
        (time_strategy(), duration_strategy()).prop_map(|(s, d)| Item::Audio(s, d)),
        (time_strategy(), duration_strategy()).prop_map(|(s, d)| Item::Video(s, d)),
        (time_strategy(), duration_strategy()).prop_map(|(s, d)| Item::AudioVideo(s, d)),
        (
            any::<bool>(),
            1u64..100,
            proptest::option::of(time_strategy())
        )
            .prop_map(|(k, doc, at)| Item::Link(k, doc, at)),
        Just(Item::Separator),
    ]
}

fn build(title: String, items: Vec<Item>) -> hermes_od::hml::HmlDocument {
    let srv = ServerId::new(0);
    let mut b = DocumentBuilder::new(title);
    let mut n = 0u64;
    for item in items {
        n += 1;
        let src = |what: &str| MediaSource::new(srv, format!("{what}/{n}.bin"));
        b = match item {
            Item::Heading(l, t) => b.heading(
                match l {
                    1 => HeadingLevel::H1,
                    2 => HeadingLevel::H2,
                    _ => HeadingLevel::H3,
                },
                t,
            ),
            Item::Text(t) => b.text(t),
            Item::Paragraph => b.paragraph(),
            Item::Image(s, d, x, y, w, h) => {
                b.image(src("img"), s, d, Some(Region::new(x, y, w, h)))
            }
            Item::Audio(s, d) => b.audio(src("au"), s, d),
            Item::Video(s, d) => b.video(src("vi"), s, d),
            Item::AudioVideo(s, d) => b.audio_video(src("au"), src("vi"), s, d),
            Item::Link(kind, doc, at) => b.link(
                if kind {
                    LinkKind::Sequential
                } else {
                    LinkKind::Explorational
                },
                DocumentId::new(doc),
                at,
            ),
            Item::Separator => b.separator(),
        };
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// serialize ∘ parse is the identity on builder-generated documents.
    #[test]
    fn round_trip_identity(title in text_strategy(), items in proptest::collection::vec(item_strategy(), 0..20)) {
        let doc = build(title, items);
        let text = serialize(&doc);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        prop_assert_eq!(&doc, &reparsed, "round trip mismatch\n---\n{}", text);
    }

    /// Builder-generated documents always lower to well-formed scenarios
    /// with unique component ids and consistent sync groups.
    #[test]
    fn lowering_always_well_formed(title in text_strategy(), items in proptest::collection::vec(item_strategy(), 0..20)) {
        let doc = build(title, items);
        let scenario = build_scenario(&doc, DocumentId::new(1), ServerId::new(0)).unwrap();
        let issues = scenario.validate();
        // Spatial overlap is a legal warning; everything else is a defect.
        for issue in &issues {
            prop_assert!(
                matches!(issue, hermes_od::core::ScenarioIssue::SpatialOverlap(_, _)),
                "unexpected issue: {:?}",
                issue
            );
        }
        // Every AU_VI pair produced a sync group whose members exist and
        // share timing.
        for g in &scenario.sync_groups {
            prop_assert_eq!(g.members.len(), 2);
        }
    }

    /// Lowering twice (via serialized text) produces the same scenario.
    #[test]
    fn lowering_stable_through_text(title in text_strategy(), items in proptest::collection::vec(item_strategy(), 0..12)) {
        let doc = build(title, items);
        let s1 = build_scenario(&doc, DocumentId::new(1), ServerId::new(0)).unwrap();
        let text = serialize(&doc);
        let doc2 = parse(&text).unwrap();
        let s2 = build_scenario(&doc2, DocumentId::new(1), ServerId::new(0)).unwrap();
        prop_assert_eq!(s1, s2);
    }

    /// The playout schedule derived from any generated scenario is sane:
    /// sorted deadlines, buffer slots dense, events chronological.
    #[test]
    fn schedules_sane(title in text_strategy(), items in proptest::collection::vec(item_strategy(), 0..16)) {
        let doc = build(title, items);
        let scenario = build_scenario(&doc, DocumentId::new(1), ServerId::new(0)).unwrap();
        let schedule = hermes_od::core::PlayoutSchedule::from_scenario(&scenario);
        for w in schedule.entries.windows(2) {
            prop_assert!(w[0].start <= w[1].start);
        }
        for w in schedule.events.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        let mut slots: Vec<usize> = schedule.entries.iter().filter_map(|e| e.buffer_slot).collect();
        slots.sort_unstable();
        for (i, s) in slots.iter().enumerate() {
            prop_assert_eq!(*s, i, "buffer slots must be dense");
        }
    }
}

//! Temporal intervals and Allen's interval algebra.
//!
//! The paper builds on interval-based conceptual models for time-dependent
//! multimedia ([LIT 93]); playout components are half-open intervals
//! `[start, start + duration)` on the presentation timeline. Allen relations
//! let the scheduler and the tests reason about overlap, meeting and
//! containment exactly.

use crate::time::{MediaDuration, MediaTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open interval `[start, end)` on the media timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start instant.
    pub start: MediaTime,
    /// Exclusive end instant. Invariant: `end >= start`.
    pub end: MediaTime,
}

/// The 13 Allen interval relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllenRelation {
    /// `a` ends before `b` starts.
    Before,
    /// `a` starts after `b` ends.
    After,
    /// `a` ends exactly where `b` starts.
    Meets,
    /// `a` starts exactly where `b` ends.
    MetBy,
    /// `a` overlaps the beginning of `b`.
    Overlaps,
    /// `b` overlaps the beginning of `a`.
    OverlappedBy,
    /// `a` starts with `b` but ends earlier.
    Starts,
    /// `b` starts with `a` but ends earlier.
    StartedBy,
    /// `a` lies strictly inside `b`.
    During,
    /// `b` lies strictly inside `a`.
    Contains,
    /// `a` ends with `b` but starts later.
    Finishes,
    /// `b` ends with `a` but starts later.
    FinishedBy,
    /// identical intervals.
    Equals,
}

impl Interval {
    /// Construct from start and end. Panics if `end < start`.
    pub fn new(start: MediaTime, end: MediaTime) -> Self {
        assert!(end >= start, "interval end before start");
        Interval { start, end }
    }
    /// Construct from start and non-negative duration.
    pub fn from_start_duration(start: MediaTime, duration: MediaDuration) -> Self {
        assert!(!duration.is_negative(), "negative interval duration");
        Interval {
            start,
            end: start + duration,
        }
    }
    /// Length of the interval.
    pub fn duration(&self) -> MediaDuration {
        self.end - self.start
    }
    /// True iff the interval has zero length.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
    /// Does the instant fall inside `[start, end)`?
    pub fn contains_instant(&self, t: MediaTime) -> bool {
        t >= self.start && t < self.end
    }
    /// Do the (non-empty parts of the) intervals share any instant?
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }
    /// Intersection, if any instant is shared.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Interval {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        })
    }
    /// Smallest interval covering both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
    /// Classify the Allen relation of `self` with respect to `other`.
    ///
    /// Empty intervals are treated as points; the classification remains a
    /// total function (exactly one relation holds for any pair).
    pub fn allen(&self, other: &Interval) -> AllenRelation {
        use AllenRelation::*;
        let (a1, a2, b1, b2) = (self.start, self.end, other.start, other.end);
        if a1 == b1 && a2 == b2 {
            Equals
        } else if a2 < b1 {
            Before
        } else if b2 < a1 {
            After
        } else if a2 == b1 {
            Meets
        } else if b2 == a1 {
            MetBy
        } else if a1 == b1 {
            if a2 < b2 {
                Starts
            } else {
                StartedBy
            }
        } else if a2 == b2 {
            if a1 > b1 {
                Finishes
            } else {
                FinishedBy
            }
        } else if a1 > b1 && a2 < b2 {
            During
        } else if a1 < b1 && a2 > b2 {
            Contains
        } else if a1 < b1 {
            Overlaps
        } else {
            OverlappedBy
        }
    }
}

impl AllenRelation {
    /// The inverse relation: `a.allen(b) == r` iff `b.allen(a) == r.inverse()`.
    pub fn inverse(self) -> AllenRelation {
        use AllenRelation::*;
        match self {
            Before => After,
            After => Before,
            Meets => MetBy,
            MetBy => Meets,
            Overlaps => OverlappedBy,
            OverlappedBy => Overlaps,
            Starts => StartedBy,
            StartedBy => Starts,
            During => Contains,
            Contains => During,
            Finishes => FinishedBy,
            FinishedBy => Finishes,
            Equals => Equals,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(MediaTime::from_millis(a), MediaTime::from_millis(b))
    }

    #[test]
    fn duration_and_contains() {
        let i = iv(100, 400);
        assert_eq!(i.duration(), MediaDuration::from_millis(300));
        assert!(i.contains_instant(MediaTime::from_millis(100)));
        assert!(i.contains_instant(MediaTime::from_millis(399)));
        assert!(!i.contains_instant(MediaTime::from_millis(400)));
        assert!(!i.contains_instant(MediaTime::from_millis(99)));
    }

    #[test]
    fn overlap_and_intersection() {
        assert!(iv(0, 10).overlaps(&iv(5, 15)));
        assert!(!iv(0, 10).overlaps(&iv(10, 20))); // meets, no shared instant
        assert_eq!(iv(0, 10).intersect(&iv(5, 15)), Some(iv(5, 10)));
        assert_eq!(iv(0, 10).intersect(&iv(20, 30)), None);
        assert_eq!(iv(0, 10).hull(&iv(20, 30)), iv(0, 30));
    }

    #[test]
    fn allen_all_thirteen() {
        use AllenRelation::*;
        assert_eq!(iv(0, 5).allen(&iv(10, 20)), Before);
        assert_eq!(iv(10, 20).allen(&iv(0, 5)), After);
        assert_eq!(iv(0, 10).allen(&iv(10, 20)), Meets);
        assert_eq!(iv(10, 20).allen(&iv(0, 10)), MetBy);
        assert_eq!(iv(0, 15).allen(&iv(10, 20)), Overlaps);
        assert_eq!(iv(10, 20).allen(&iv(0, 15)), OverlappedBy);
        assert_eq!(iv(0, 5).allen(&iv(0, 20)), Starts);
        assert_eq!(iv(0, 20).allen(&iv(0, 5)), StartedBy);
        assert_eq!(iv(5, 10).allen(&iv(0, 20)), During);
        assert_eq!(iv(0, 20).allen(&iv(5, 10)), Contains);
        assert_eq!(iv(10, 20).allen(&iv(0, 20)), Finishes);
        assert_eq!(iv(0, 20).allen(&iv(10, 20)), FinishedBy);
        assert_eq!(iv(3, 9).allen(&iv(3, 9)), Equals);
    }

    #[test]
    fn allen_inverse_property() {
        let samples = [
            iv(0, 5),
            iv(0, 10),
            iv(5, 10),
            iv(5, 15),
            iv(10, 20),
            iv(0, 20),
            iv(7, 7),
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(
                    a.allen(b).inverse(),
                    b.allen(a),
                    "inverse failed for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "interval end before start")]
    fn reversed_interval_panics() {
        let _ = iv(10, 5);
    }
}

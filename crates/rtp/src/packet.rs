//! RTP packet format (after Schulzrinne et al., the Internet-Draft the paper
//! cites [SCH 95], later RFC 1889/3550).
//!
//! "RTP data packets contain, besides pure data, auxiliary information such
//! as: a timestamp ..., packet sequencing information, the packet's data
//! payload type" (§6.3). The 12-byte header is encoded/decoded exactly;
//! payloads in the simulator are synthetic bytes of the right length.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// RTP protocol version (always 2).
pub const RTP_VERSION: u8 = 2;
/// Size of the fixed RTP header in bytes.
pub const RTP_HEADER_LEN: usize = 12;
/// UDP + IP header overhead added on the wire.
pub const UDP_IP_OVERHEAD: usize = 28;

/// Payload types used by the service (per-kind static assignment, as the
/// audio/video profile did).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PayloadType {
    /// PCM audio (PT 11 in the AV profile: L16 mono).
    Pcm,
    /// ADPCM audio (PT 5: DVI4).
    Adpcm,
    /// Variable-rate ADPCM (dynamic PT 96).
    Vadpcm,
    /// MPEG video (PT 32: MPV).
    Mpeg,
    /// Motion-JPEG / AVI video (PT 26: JPEG).
    Avi,
    /// Scenario / discrete media carried over RTP (dynamic PT 97).
    Document,
}

impl PayloadType {
    /// The 7-bit payload-type code carried in the header.
    pub fn code(self) -> u8 {
        match self {
            PayloadType::Adpcm => 5,
            PayloadType::Pcm => 11,
            PayloadType::Avi => 26,
            PayloadType::Mpeg => 32,
            PayloadType::Vadpcm => 96,
            PayloadType::Document => 97,
        }
    }
    /// Decode a payload-type code.
    pub fn from_code(c: u8) -> Option<PayloadType> {
        Some(match c {
            5 => PayloadType::Adpcm,
            11 => PayloadType::Pcm,
            26 => PayloadType::Avi,
            32 => PayloadType::Mpeg,
            96 => PayloadType::Vadpcm,
            97 => PayloadType::Document,
            _ => return None,
        })
    }
    /// RTP media clock rate for this payload type, Hz.
    pub fn clock_rate(self) -> u32 {
        match self {
            PayloadType::Pcm | PayloadType::Adpcm | PayloadType::Vadpcm => 8_000,
            PayloadType::Mpeg | PayloadType::Avi => 90_000,
            PayloadType::Document => 1_000,
        }
    }
}

/// A decoded RTP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtpPacket {
    /// Payload type.
    pub payload_type: PayloadType,
    /// Marker bit — set on the last packet of a frame.
    pub marker: bool,
    /// 16-bit sequence number (wraps).
    pub seq: u16,
    /// Media timestamp in payload-type clock units.
    pub timestamp: u32,
    /// Synchronization source (one per media stream/connection).
    pub ssrc: u32,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Errors decoding an RTP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtpDecodeError {
    /// Shorter than the fixed header.
    Truncated,
    /// Version field is not 2.
    BadVersion(u8),
    /// Unknown payload-type code.
    UnknownPayloadType(u8),
}

impl std::fmt::Display for RtpDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtpDecodeError::Truncated => write!(f, "rtp packet truncated"),
            RtpDecodeError::BadVersion(v) => write!(f, "bad rtp version {v}"),
            RtpDecodeError::UnknownPayloadType(c) => write!(f, "unknown payload type {c}"),
        }
    }
}

impl std::error::Error for RtpDecodeError {}

impl RtpPacket {
    /// Encode to wire bytes (header + payload).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(RTP_HEADER_LEN + self.payload.len());
        // V=2, P=0, X=0, CC=0
        b.put_u8(RTP_VERSION << 6);
        let m = if self.marker { 0x80 } else { 0 };
        b.put_u8(m | (self.payload_type.code() & 0x7F));
        b.put_u16(self.seq);
        b.put_u32(self.timestamp);
        b.put_u32(self.ssrc);
        b.extend_from_slice(&self.payload);
        b.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(mut data: Bytes) -> Result<RtpPacket, RtpDecodeError> {
        if data.len() < RTP_HEADER_LEN {
            return Err(RtpDecodeError::Truncated);
        }
        let b0 = data.get_u8();
        let version = b0 >> 6;
        if version != RTP_VERSION {
            return Err(RtpDecodeError::BadVersion(version));
        }
        let b1 = data.get_u8();
        let marker = b1 & 0x80 != 0;
        let pt_code = b1 & 0x7F;
        let payload_type =
            PayloadType::from_code(pt_code).ok_or(RtpDecodeError::UnknownPayloadType(pt_code))?;
        let seq = data.get_u16();
        let timestamp = data.get_u32();
        let ssrc = data.get_u32();
        Ok(RtpPacket {
            payload_type,
            marker,
            seq,
            timestamp,
            ssrc,
            payload: data,
        })
    }

    /// Total on-wire size including UDP/IP overhead (what the simulator
    /// charges the link for).
    pub fn wire_size(&self) -> usize {
        RTP_HEADER_LEN + self.payload.len() + UDP_IP_OVERHEAD
    }

    /// A packet with a synthetic zero payload of `len` bytes.
    pub fn synthetic(
        payload_type: PayloadType,
        marker: bool,
        seq: u16,
        timestamp: u32,
        ssrc: u32,
        len: usize,
    ) -> RtpPacket {
        RtpPacket {
            payload_type,
            marker,
            seq,
            timestamp,
            ssrc,
            payload: Bytes::from(vec![0u8; len]),
        }
    }
}

/// Convert a microsecond media time into payload-clock units (wrapping u32,
/// as on the wire).
pub fn micros_to_clock(us: i64, clock_rate: u32) -> u32 {
    ((us as i128 * clock_rate as i128 / 1_000_000) & 0xFFFF_FFFF) as u32
}

/// Convert payload-clock units back to microseconds (no unwrapping — callers
/// compare nearby timestamps only).
pub fn clock_to_micros(ts: u32, clock_rate: u32) -> i64 {
    (ts as i64) * 1_000_000 / clock_rate as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let p = RtpPacket::synthetic(PayloadType::Mpeg, true, 1234, 567890, 0xDEADBEEF, 100);
        let wire = p.encode();
        assert_eq!(wire.len(), RTP_HEADER_LEN + 100);
        let q = RtpPacket::decode(wire).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn all_payload_types_round_trip() {
        for pt in [
            PayloadType::Pcm,
            PayloadType::Adpcm,
            PayloadType::Vadpcm,
            PayloadType::Mpeg,
            PayloadType::Avi,
            PayloadType::Document,
        ] {
            assert_eq!(PayloadType::from_code(pt.code()), Some(pt));
            let p = RtpPacket::synthetic(pt, false, 1, 2, 3, 10);
            assert_eq!(RtpPacket::decode(p.encode()).unwrap().payload_type, pt);
        }
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            RtpPacket::decode(Bytes::from_static(&[0x80, 0, 0, 1])),
            Err(RtpDecodeError::Truncated)
        );
    }

    #[test]
    fn bad_version_rejected() {
        let p = RtpPacket::synthetic(PayloadType::Pcm, false, 1, 2, 3, 0);
        let mut wire = p.encode().to_vec();
        wire[0] = 0x40; // version 1
        assert_eq!(
            RtpPacket::decode(Bytes::from(wire)),
            Err(RtpDecodeError::BadVersion(1))
        );
    }

    #[test]
    fn unknown_payload_type_rejected() {
        let p = RtpPacket::synthetic(PayloadType::Pcm, false, 1, 2, 3, 0);
        let mut wire = p.encode().to_vec();
        wire[1] = 99; // unassigned
        assert!(matches!(
            RtpPacket::decode(Bytes::from(wire)),
            Err(RtpDecodeError::UnknownPayloadType(99))
        ));
    }

    #[test]
    fn marker_bit_independent_of_pt() {
        let p = RtpPacket::synthetic(PayloadType::Mpeg, true, 1, 2, 3, 0);
        let q = RtpPacket::decode(p.encode()).unwrap();
        assert!(q.marker);
        assert_eq!(q.payload_type, PayloadType::Mpeg);
    }

    #[test]
    fn clock_conversions() {
        // 1 second of 90 kHz video clock.
        assert_eq!(micros_to_clock(1_000_000, 90_000), 90_000);
        assert_eq!(clock_to_micros(90_000, 90_000), 1_000_000);
        // 20 ms audio block at 8 kHz = 160 units.
        assert_eq!(micros_to_clock(20_000, 8_000), 160);
        // Wrapping is masked, not panicking.
        let big = i64::MAX / 2_000_000;
        let _ = micros_to_clock(big, 90_000);
    }

    #[test]
    fn wire_size_includes_overhead() {
        let p = RtpPacket::synthetic(PayloadType::Pcm, false, 1, 2, 3, 160);
        assert_eq!(p.wire_size(), 12 + 160 + 28);
    }
}

//! Connection admission control (§4).
//!
//! "This mechanism evaluates a set of parameters concerning the network and
//! the connection's request options, to decide on connection admission or
//! rejection. Such parameters are the network's condition the specific time
//! the request is sent (e.g. network load, available bandwidth) and the
//! potential load that will be caused due to the new connection. ... The
//! above parameters are evaluated in conjunction with the pricing contract
//! of the specific user (a user who pays more should be serviced, even
//! though it affects the other users)."

use hermes_core::{ConnectionId, MediaDuration, PricingClass, QosRequirement, SessionId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A connection request as evaluated by the admission controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionRequest {
    /// The session asking for admission.
    pub session: SessionId,
    /// The requester's pricing contract.
    pub class: PricingClass,
    /// Aggregate QoS requirement of the streams the connection will carry.
    pub requirement: QosRequirement,
}

/// The admission verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Admitted; the stated bandwidth was reserved.
    Admit {
        /// Bandwidth reserved along the path, bits/second.
        reserved_bps: u64,
    },
    /// Rejected, with the reason given to the client.
    Reject {
        /// Human-readable reason.
        reason: String,
    },
}

/// A snapshot of the network path's condition, supplied by the caller (the
/// service layer measures it on the simulated network).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathCondition {
    /// Bottleneck capacity of the path, bits/second.
    pub capacity_bps: u64,
    /// Bandwidth already reserved plus background load, bits/second.
    pub committed_bps: u64,
    /// Current measured round-trip delay estimate.
    pub rtt: MediaDuration,
}

impl PathCondition {
    /// Utilization after admitting `extra_bps` more.
    pub fn utilization_with(&self, extra_bps: u64) -> f64 {
        (self.committed_bps + extra_bps) as f64 / self.capacity_bps.max(1) as f64
    }
}

/// Statistics kept by the controller (per pricing class).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Requests received.
    pub requests: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected.
    pub rejected: u64,
}

/// The connection admission controller of one multimedia server.
#[derive(Debug, Default)]
pub struct AdmissionController {
    active: BTreeMap<SessionId, (ConnectionId, u64)>,
    next_conn: u64,
    /// Per-class accounting for the EXP-ADMIT experiment.
    pub stats: BTreeMap<PricingClass, ClassStats>,
}

impl AdmissionController {
    /// A fresh controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of currently admitted sessions.
    pub fn active_sessions(&self) -> usize {
        self.active.len()
    }

    /// Evaluate a request against the path condition. On admission the
    /// caller must perform the actual reservation with the returned
    /// connection id; on failure call [`AdmissionController::release`].
    pub fn evaluate(
        &mut self,
        req: &ConnectionRequest,
        path: PathCondition,
    ) -> (AdmissionDecision, Option<ConnectionId>) {
        let stats = self.stats.entry(req.class).or_default();
        stats.requests += 1;
        // The requirement's mean bandwidth is what we reserve; the peak is
        // checked against instantaneous headroom.
        let want = req.requirement.bandwidth_bps;
        let util_after = path.utilization_with(want);
        let ceiling = req.class.admission_ceiling();
        if util_after > ceiling {
            stats.rejected += 1;
            return (
                AdmissionDecision::Reject {
                    reason: format!(
                        "network load {:.0}% would exceed the {:.0}% ceiling of the {:?} contract",
                        util_after * 100.0,
                        ceiling * 100.0,
                        req.class
                    ),
                },
                None,
            );
        }
        // Delay feasibility: a path whose RTT already exceeds the stream's
        // delay budget cannot possibly meet it.
        if path.rtt / 2 > req.requirement.max_delay {
            stats.rejected += 1;
            return (
                AdmissionDecision::Reject {
                    reason: format!(
                        "one-way delay {} exceeds the requested bound {}",
                        path.rtt / 2,
                        req.requirement.max_delay
                    ),
                },
                None,
            );
        }
        stats.admitted += 1;
        let conn = ConnectionId::new(self.next_conn);
        self.next_conn += 1;
        self.active.insert(req.session, (conn, want));
        (AdmissionDecision::Admit { reserved_bps: want }, Some(conn))
    }

    /// The connection admitted for a session, if any.
    pub fn connection_of(&self, session: SessionId) -> Option<ConnectionId> {
        self.active.get(&session).map(|(c, _)| *c)
    }

    /// Release a session's admission (disconnect / migration away).
    /// Returns the connection id to un-reserve, if one was active.
    pub fn release(&mut self, session: SessionId) -> Option<ConnectionId> {
        self.active.remove(&session).map(|(c, _)| c)
    }

    /// Admission rate for a class (admitted / requests), or 1.0 if none.
    pub fn admit_rate(&self, class: PricingClass) -> f64 {
        match self.stats.get(&class) {
            Some(s) if s.requests > 0 => s.admitted as f64 / s.requests as f64,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(class: PricingClass, bw: u64) -> ConnectionRequest {
        ConnectionRequest {
            session: SessionId::new(bw), // unique per bw in these tests
            class,
            requirement: QosRequirement::continuous(bw, 200, 0.02),
        }
    }

    fn path(capacity: u64, committed: u64) -> PathCondition {
        PathCondition {
            capacity_bps: capacity,
            committed_bps: committed,
            rtt: MediaDuration::from_millis(40),
        }
    }

    #[test]
    fn admits_when_headroom() {
        let mut ac = AdmissionController::new();
        let (d, conn) = ac.evaluate(
            &request(PricingClass::Standard, 1_000_000),
            path(10_000_000, 0),
        );
        assert!(matches!(
            d,
            AdmissionDecision::Admit {
                reserved_bps: 1_000_000
            }
        ));
        assert!(conn.is_some());
        assert_eq!(ac.active_sessions(), 1);
    }

    #[test]
    fn rejects_beyond_class_ceiling() {
        let mut ac = AdmissionController::new();
        // Economy ceiling is 70%: 6M committed of 10M + 2M request = 80%.
        let (d, conn) = ac.evaluate(
            &request(PricingClass::Economy, 2_000_000),
            path(10_000_000, 6_000_000),
        );
        assert!(matches!(d, AdmissionDecision::Reject { .. }));
        assert!(conn.is_none());
        // Premium (97% ceiling) is admitted on the same path.
        let (d, _) = ac.evaluate(
            &request(PricingClass::Premium, 2_000_000),
            path(10_000_000, 6_000_000),
        );
        assert!(matches!(d, AdmissionDecision::Admit { .. }), "{d:?}");
    }

    #[test]
    fn paying_more_wins_under_load() {
        // The paper's rule verbatim: at 84% committed, Standard (85%) fails
        // for any real request but Premium succeeds.
        let mut ac = AdmissionController::new();
        let p = path(10_000_000, 8_400_000);
        let (d_std, _) = ac.evaluate(&request(PricingClass::Standard, 500_000), p);
        let (d_prm, _) = ac.evaluate(&request(PricingClass::Premium, 500_000), p);
        assert!(matches!(d_std, AdmissionDecision::Reject { .. }));
        assert!(matches!(d_prm, AdmissionDecision::Admit { .. }));
    }

    #[test]
    fn rejects_infeasible_delay() {
        let mut ac = AdmissionController::new();
        let mut p = path(10_000_000, 0);
        p.rtt = MediaDuration::from_millis(900); // one-way 450 > 200 budget
        let (d, _) = ac.evaluate(&request(PricingClass::Premium, 100_000), p);
        match d {
            AdmissionDecision::Reject { reason } => assert!(reason.contains("delay")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn release_frees_session() {
        let mut ac = AdmissionController::new();
        let req = request(PricingClass::Standard, 1_000_000);
        let (_, conn) = ac.evaluate(&req, path(10_000_000, 0));
        let conn = conn.unwrap();
        assert_eq!(ac.connection_of(req.session), Some(conn));
        assert_eq!(ac.release(req.session), Some(conn));
        assert_eq!(ac.release(req.session), None);
        assert_eq!(ac.active_sessions(), 0);
    }

    #[test]
    fn per_class_stats_and_rates() {
        let mut ac = AdmissionController::new();
        let p = path(10_000_000, 8_400_000);
        for i in 0..4 {
            let mut r = request(PricingClass::Economy, 100_000);
            r.session = SessionId::new(i);
            ac.evaluate(&r, p);
        }
        let mut r = request(PricingClass::Premium, 100_000);
        r.session = SessionId::new(99);
        ac.evaluate(&r, p);
        let eco = ac.stats[&PricingClass::Economy];
        assert_eq!(eco.requests, 4);
        assert_eq!(eco.rejected, 4);
        assert_eq!(ac.admit_rate(PricingClass::Economy), 0.0);
        assert_eq!(ac.admit_rate(PricingClass::Premium), 1.0);
        assert_eq!(ac.admit_rate(PricingClass::Standard), 1.0); // no requests
    }
}

//! Hermetic stub of `crossbeam`'s scoped-thread API over `std::thread::scope`
//! (stable since 1.63). Only the surface the workspace uses is provided:
//! `crossbeam::scope(|s| { s.spawn(|_| ...); })` returning `Err` when any
//! spawned thread panicked.

/// Scoped-thread namespace mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Handle used to spawn threads tied to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread and collect its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// again (crossbeam's signature) so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. Returns `Err` if the closure or any unjoined thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_stack_data() {
        let mut out = vec![0u64; 4];
        crate::scope(|scope| {
            for (i, slot) in out.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u64 + 1);
            }
        })
        .unwrap();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn panicked_worker_reported_as_err() {
        let r = crate::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}

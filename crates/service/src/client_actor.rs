//! The browser/client actor: drives the Fig. 4 state machine, receives
//! scenarios, manages per-stream RTP receivers, buffers, playout and QoS
//! feedback — the right half of paper Fig. 3, wired to the simulator.

use crate::protocol::{MailMessage, SearchHit, ServiceMsg};
use crate::timers;
use hermes_client::{
    AppEvent, AppStateMachine, BufferConfig, ClientQosManager, FeedbackConfig, PlayoutConfig,
    PlayoutEngine,
};
use hermes_core::{
    ComponentContent, ComponentId, DocumentId, LinkTarget, MediaDuration, MediaTime, NodeId,
    PlayoutSchedule, PricingClass, QosMeasurement, Scenario, ServerId, SessionId, UserId,
};
use hermes_media::MediaFrame;
use hermes_rtp::{ReceivedFrame, RtpReceiver};
use hermes_server::{RetryBudget, SubscriptionForm, TopicEntry};
use hermes_simnet::{Labels, Obs, Severity, SimApi, SpanId};
use std::collections::BTreeMap;

/// The presentation currently being received/played.
pub struct Presentation {
    /// The document.
    pub document: DocumentId,
    /// The parsed scenario.
    pub scenario: Scenario,
    /// The derived schedule.
    pub schedule: PlayoutSchedule,
    /// The playout engine.
    pub engine: PlayoutEngine,
    /// RTP receivers per continuous component.
    pub receivers: BTreeMap<ComponentId, RtpReceiver>,
    /// Separate receivers for unicast patch streams (stream sharing): the
    /// patch sender uses its own RTP sequence space, so reassembly must not
    /// mix its packets with the shared flow's.
    pub patch_receivers: BTreeMap<ComponentId, RtpReceiver>,
    /// Per-frame reassembly counters (frames delivered per component).
    pub frames_received: BTreeMap<ComponentId, u64>,
    /// Bytes accumulated for in-flight discrete objects, per component.
    pub discrete_partial: BTreeMap<ComponentId, u32>,
    /// The flow lead the server applied.
    pub lead: MediaDuration,
    /// When the scenario arrived (prefill delay measured from here).
    pub scenario_at: MediaTime,
    /// When playout started (None until the prefill completes).
    pub started_at: Option<MediaTime>,
    /// When the user paused, if currently paused.
    pub paused_at: Option<MediaTime>,
    /// Ticking is active.
    pub ticking: bool,
    /// The timed (`AT`) auto-link already fired for this presentation.
    pub auto_link_fired: bool,
    /// The open prefill span: scenario arrival → playout start (null when
    /// tracing is off or already closed).
    pub obs_prefill: SpanId,
    /// The playout span: start → completion (null until started).
    pub obs_playout: SpanId,
    /// Glitch total at the last tick (playout-gap delta detection).
    pub obs_glitches: u64,
    /// Tick counter for sampled trace emissions.
    pub obs_ticks: u32,
}

impl Presentation {
    /// The intentional initial delay experienced (start − scenario arrival).
    pub fn startup_delay(&self) -> Option<MediaDuration> {
        self.started_at.map(|t| t - self.scenario_at)
    }
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Pricing contract used at connect time.
    pub class: PricingClass,
    /// Per-stream buffer configuration (media time window).
    pub buffer: BufferConfig,
    /// Playout/recovery configuration.
    pub playout: PlayoutConfig,
    /// Feedback cadence.
    pub feedback: FeedbackConfig,
    /// Playout tick interval.
    pub tick_interval: MediaDuration,
    /// Give up waiting for prefill after this long and start anyway.
    pub max_start_delay: MediaDuration,
    /// Automatically follow timed (`AT`) links when a presentation ends.
    pub auto_follow_links: bool,
    /// The subscription form used when the server requires enrolment.
    pub form: SubscriptionForm,
    /// Expected server heartbeat cadence (must match the server's
    /// `heartbeat_interval`); also the liveness-check cadence.
    pub heartbeat_interval: MediaDuration,
    /// Declare the server dead after this many silent heartbeat intervals.
    pub missed_beats: u32,
    /// Base retransmission interval for tracked control requests (doubles
    /// per attempt).
    pub retry_interval: MediaDuration,
    /// Give up on a tracked request after this many transmissions.
    pub retry_budget: u32,
    /// Retry-budget token bucket capacity shared by all tracked requests:
    /// each resend spends a token, each acknowledgement refills one, and an
    /// empty bucket suppresses resends (the backoff clock keeps running) so
    /// a recovering server sees a bounded wave, not a storm.
    pub retry_tokens: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            class: PricingClass::Standard,
            buffer: BufferConfig::default(),
            playout: PlayoutConfig::default(),
            feedback: FeedbackConfig::default(),
            tick_interval: MediaDuration::from_millis(20),
            max_start_delay: MediaDuration::from_secs(8),
            auto_follow_links: false,
            form: SubscriptionForm {
                name: "Test User".into(),
                address: "1 Simulation Way".into(),
                telephone: "000".into(),
                email: "user@hermes".into(),
                class: PricingClass::Standard,
            },
            heartbeat_interval: MediaDuration::from_millis(400),
            missed_beats: 3,
            retry_interval: MediaDuration::from_millis(500),
            retry_budget: 10,
            retry_tokens: 16,
        }
    }
}

/// A tracked control request awaiting its acknowledgement.
#[derive(Debug, Clone)]
struct PendingReq {
    server: NodeId,
    msg: ServiceMsg,
    attempts: u32,
}

/// The browser actor.
pub struct ClientActor {
    /// The node this client runs on.
    pub node: NodeId,
    /// Configuration.
    pub cfg: ClientConfig,
    /// Fig. 4 state machine.
    pub machine: AppStateMachine,
    /// Subscribed identity, once known.
    pub user: Option<UserId>,
    /// The active (server node, session).
    pub session: Option<(NodeId, SessionId)>,
    /// A suspended (server node, session) kept during migration.
    pub suspended: Option<(NodeId, SessionId)>,
    /// Topics last received.
    pub topics: Vec<TopicEntry>,
    /// The current presentation.
    pub presentation: Option<Presentation>,
    /// The client QoS manager.
    pub qos: ClientQosManager,
    /// ServerId → NodeId directory (for remote links), set by the world.
    pub directory: BTreeMap<ServerId, NodeId>,
    /// Completed presentations (document, startup delay, max skew µs).
    pub completed: Vec<(DocumentId, MediaDuration, MediaDuration)>,
    /// Browser history: documents viewed, oldest first (§6.2.3: "moving
    /// backward and forward in the list of already viewed lessons").
    pub history: Vec<DocumentId>,
    /// Cursor into `history` for back/forward navigation.
    history_cursor: usize,
    /// Search results by query id.
    pub search_results: BTreeMap<u64, Vec<SearchHit>>,
    /// Fetched mailbox.
    pub mailbox: Vec<MailMessage>,
    /// Fetched annotations by document.
    pub annotations: BTreeMap<DocumentId, Vec<String>>,
    /// Document queued to request once a connection/topic list is ready.
    pub pending_request: Option<DocumentId>,
    /// Human-readable event log.
    pub log: Vec<(MediaTime, String)>,
    /// Errors received (DocError / ConnectReject reasons).
    pub errors: Vec<String>,
    /// The in-flight document request is a history navigation (don't extend
    /// the history when its scenario arrives).
    history_nav: bool,
    next_query: u64,
    /// Tracked requests not yet acknowledged, by request id.
    pending_reqs: BTreeMap<u64, PendingReq>,
    /// Token bucket gating tracked-request retransmissions (PR 1's backoff
    /// decides *when* to resend; the budget decides *whether*).
    pub retries: RetryBudget,
    next_req: u64,
    /// Last instant anything (heartbeat, stream data, control) arrived from
    /// the session's server.
    last_server_activity: MediaTime,
    /// The liveness-check timer chain is running.
    liveness_armed: bool,
    /// True when the failure detector (not the user) paused the playout.
    liveness_paused: bool,
    /// Recovery in progress since this instant (failure-detector verdict).
    pub recovering: Option<MediaTime>,
    /// Completed recoveries: (failure detected, session recovered).
    pub recoveries: Vec<(MediaTime, MediaTime)>,
    /// The shared delivery group this session rides, with its epoch
    /// (stream sharing; None for a private unicast flow).
    pub shared_group: Option<(u64, u64)>,
}

impl ClientActor {
    /// Create a client on a node.
    pub fn new(node: NodeId, cfg: ClientConfig) -> Self {
        let feedback = cfg.feedback;
        let retries = RetryBudget::new(cfg.retry_tokens);
        ClientActor {
            node,
            cfg,
            machine: AppStateMachine::new(),
            user: None,
            session: None,
            suspended: None,
            topics: Vec::new(),
            presentation: None,
            qos: ClientQosManager::new(feedback),
            directory: BTreeMap::new(),
            completed: Vec::new(),
            history: Vec::new(),
            history_cursor: 0,
            search_results: BTreeMap::new(),
            mailbox: Vec::new(),
            annotations: BTreeMap::new(),
            pending_request: None,
            log: Vec::new(),
            errors: Vec::new(),
            history_nav: false,
            next_query: 1,
            pending_reqs: BTreeMap::new(),
            retries,
            next_req: 1,
            last_server_activity: MediaTime::ZERO,
            liveness_armed: false,
            liveness_paused: false,
            recovering: None,
            recoveries: Vec::new(),
            shared_group: None,
        }
    }

    /// Send a control message wrapped in a tracked envelope: retransmitted
    /// with exponential backoff until the server acknowledges the request id
    /// or the retry budget runs out. Survives server crashes that the
    /// transport-level ARQ cannot see (the packet is "delivered" to a dead
    /// process).
    fn send_tracked(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        server: NodeId,
        msg: ServiceMsg,
    ) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        self.pending_reqs.insert(
            req,
            PendingReq {
                server,
                msg: msg.clone(),
                attempts: 0,
            },
        );
        api.send_reliable(
            self.node,
            server,
            ServiceMsg::Tracked {
                req,
                inner: Box::new(msg),
            },
        );
        api.set_timer(self.node, self.cfg.retry_interval, timers::TK_RETRY, req);
        req
    }

    fn retry_tracked(&mut self, api: &mut SimApi<'_, ServiceMsg>, req: u64) {
        let Some(p) = self.pending_reqs.get_mut(&req) else {
            return; // acknowledged meanwhile
        };
        p.attempts += 1;
        if p.attempts >= self.cfg.retry_budget {
            let attempts = p.attempts;
            let p = self.pending_reqs.remove(&req).unwrap();
            self.errors.push(format!(
                "tracked request {req} abandoned after {attempts} attempts"
            ));
            self.note(api.now(), format!("giving up on request {req}"));
            // Abandoning a session-establishing request must not leave a
            // phantom session behind: tear back down to disconnected.
            match p.msg {
                ServiceMsg::Connect { .. } | ServiceMsg::ReconnectRequest { .. } => {
                    let session = self.session.map(|(_, s)| s.raw()).unwrap_or(0);
                    api.emit_val(
                        self.node,
                        Severity::Error,
                        "session_abandoned",
                        Labels::session(session),
                        attempts as i64,
                    );
                    api.flight_dump(self.node, "session_abandoned", Labels::session(session));
                    self.session = None;
                    self.recovering = None;
                    self.presentation = None;
                    if self.machine.apply(AppEvent::Disconnect).is_err() {
                        let _ = self.machine.apply(AppEvent::AdmissionRejected);
                    }
                }
                ServiceMsg::DocRequest { .. } => {
                    let _ = self.machine.apply(AppEvent::RequestFailed);
                }
                _ => {}
            }
            return;
        }
        let (server, msg, attempts) = (p.server, p.msg.clone(), p.attempts);
        let backoff = self.cfg.retry_interval * (1i64 << attempts.min(5));
        // The backoff clock always runs; the retry budget decides whether
        // this tick actually reaches the wire. An empty bucket means too
        // many unacknowledged resends are already in flight — let the
        // attempt counter advance toward abandonment without amplifying.
        if self.retries.try_spend() {
            api.send_reliable(
                self.node,
                server,
                ServiceMsg::Tracked {
                    req,
                    inner: Box::new(msg),
                },
            );
        }
        api.set_timer(self.node, backoff, timers::TK_RETRY, req);
    }

    /// Tracked requests still awaiting acknowledgement (test/diagnostics).
    pub fn pending_tracked(&self) -> usize {
        self.pending_reqs.len()
    }

    fn arm_liveness(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        self.last_server_activity = api.now();
        if !self.liveness_armed {
            self.liveness_armed = true;
            api.set_timer(
                self.node,
                self.cfg.heartbeat_interval,
                timers::TK_LIVENESS,
                0,
            );
        }
    }

    fn check_liveness(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        let Some((server, session)) = self.session else {
            self.liveness_armed = false;
            return;
        };
        let now = api.now();
        let timeout = self.cfg.heartbeat_interval * self.cfg.missed_beats as i64;
        if self.recovering.is_none() && now - self.last_server_activity > timeout {
            // K beats missed: declare the server dead and reconnect. The
            // playout clock freezes at the detection instant; a successful
            // recovery shifts it by the outage length, exactly like a
            // user pause/resume.
            self.recovering = Some(now);
            api.emit_val(
                self.node,
                Severity::Warn,
                "server_silent",
                Labels::session(session.raw()).peer(server.raw()),
                self.cfg.missed_beats as i64,
            );
            self.note(
                now,
                format!(
                    "server silent for {} beats — reconnecting",
                    self.cfg.missed_beats
                ),
            );
            let (document, position_micros) = match &mut self.presentation {
                Some(p) if p.started_at.is_some() => {
                    if p.paused_at.is_none() {
                        p.paused_at = Some(now);
                        self.liveness_paused = true;
                    }
                    let pos = p
                        .engine
                        .presentation_start
                        .map(|t0| (p.paused_at.unwrap() - t0).as_micros())
                        .unwrap_or(0)
                        .max(0);
                    (Some(p.document), pos)
                }
                Some(p) => (Some(p.document), 0),
                None => (self.pending_request, 0),
            };
            self.send_tracked(
                api,
                server,
                ServiceMsg::ReconnectRequest {
                    session,
                    user: self.user,
                    class: self.cfg.class,
                    document,
                    position_micros,
                },
            );
        }
        api.set_timer(
            self.node,
            self.cfg.heartbeat_interval,
            timers::TK_LIVENESS,
            0,
        );
    }

    fn note(&mut self, at: MediaTime, msg: impl Into<String>) {
        self.log.push((at, msg.into()));
    }

    /// User action: connect to a server, optionally queueing a document to
    /// request as soon as the topic list arrives.
    pub fn connect(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        server: NodeId,
        request: Option<DocumentId>,
    ) {
        if self.machine.apply(AppEvent::Connect).is_err() {
            return;
        }
        self.pending_request = request;
        let msg = ServiceMsg::Connect {
            user: self.user,
            class: self.cfg.class,
        };
        self.note(api.now(), format!("connect → node {server}"));
        self.send_tracked(api, server, msg);
        self.session = Some((server, SessionId::new(0))); // placeholder until ack
    }

    /// User action: request a document from the connected server.
    pub fn request_document(&mut self, api: &mut SimApi<'_, ServiceMsg>, doc: DocumentId) {
        let Some((server, session)) = self.session else {
            return;
        };
        if self.machine.apply(AppEvent::RequestDocument).is_err() {
            return;
        }
        self.note(api.now(), format!("request {doc}"));
        self.send_tracked(
            api,
            server,
            ServiceMsg::DocRequest {
                session,
                document: doc,
            },
        );
    }

    /// User action: pause the presentation.
    pub fn pause(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        let Some((server, session)) = self.session else {
            return;
        };
        if self.machine.apply(AppEvent::Pause).is_err() {
            return;
        }
        let now = api.now();
        if let Some(p) = &mut self.presentation {
            p.paused_at = Some(now);
        }
        api.send_reliable(self.node, server, ServiceMsg::Pause { session });
        self.note(now, "pause");
    }

    /// User action: resume a paused presentation.
    pub fn resume(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        let Some((server, session)) = self.session else {
            return;
        };
        if self.machine.apply(AppEvent::Resume).is_err() {
            return;
        }
        let now = api.now();
        if let Some(p) = &mut self.presentation {
            if let Some(paused_at) = p.paused_at.take() {
                // Shift the presentation clock by the pause duration so
                // deadlines resume "from the point it was paused" (§5).
                p.engine.shift_clock(now - paused_at);
            }
        }
        api.send_reliable(self.node, server, ServiceMsg::Resume { session });
        self.note(now, "resume");
    }

    /// User action: go back to the previously viewed document (§6.2.3).
    /// Returns false if there is nothing earlier in the history.
    pub fn back(&mut self, api: &mut SimApi<'_, ServiceMsg>) -> bool {
        if self.history_cursor <= 1 {
            return false;
        }
        let doc = self.history[self.history_cursor - 2];
        if !self.navigate_history(api, doc) {
            return false;
        }
        self.history_cursor -= 1;
        true
    }

    /// User action: go forward again after `back` (§6.2.3). Returns false
    /// at the newest entry.
    pub fn forward(&mut self, api: &mut SimApi<'_, ServiceMsg>) -> bool {
        if self.history_cursor >= self.history.len() {
            return false;
        }
        let doc = self.history[self.history_cursor];
        if !self.navigate_history(api, doc) {
            return false;
        }
        self.history_cursor += 1;
        true
    }

    /// Issue a history navigation without growing the history.
    fn navigate_history(&mut self, api: &mut SimApi<'_, ServiceMsg>, doc: DocumentId) -> bool {
        let Some((server, session)) = self.session else {
            return false;
        };
        // From Browsing, Viewing or Paused; the scenario handler will see
        // the `history_nav` flag and skip the history append.
        let ev = match self.machine.state() {
            hermes_client::AppState::Browsing => AppEvent::RequestDocument,
            hermes_client::AppState::Viewing | hermes_client::AppState::Paused => {
                AppEvent::FollowLocalLink
            }
            _ => return false,
        };
        if self.machine.apply(ev).is_err() {
            return false;
        }
        self.presentation = None;
        self.history_nav = true;
        self.note(api.now(), format!("history → {doc}"));
        api.send_reliable(
            self.node,
            server,
            ServiceMsg::DocRequest {
                session,
                document: doc,
            },
        );
        true
    }

    /// User action: reload the current document ("the user can request to
    /// reload an already selected document", §5).
    pub fn reload(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        let Some((server, session)) = self.session else {
            return;
        };
        let Some(doc) = self.presentation.as_ref().map(|p| p.document) else {
            return;
        };
        if self.machine.apply(AppEvent::Reload).is_err() {
            return;
        }
        self.presentation = None;
        self.note(api.now(), format!("reload {doc}"));
        api.send_reliable(
            self.node,
            server,
            ServiceMsg::DocRequest {
                session,
                document: doc,
            },
        );
    }

    /// User action: follow a link of the current document.
    pub fn follow_link(&mut self, api: &mut SimApi<'_, ServiceMsg>, target: LinkTarget) {
        match target {
            LinkTarget::Local(doc) => {
                if self.machine.apply(AppEvent::FollowLocalLink).is_err() {
                    return;
                }
                let Some((server, session)) = self.session else {
                    return;
                };
                self.presentation = None;
                self.note(api.now(), format!("follow local link → {doc}"));
                api.send_reliable(
                    self.node,
                    server,
                    ServiceMsg::DocRequest {
                        session,
                        document: doc,
                    },
                );
            }
            LinkTarget::Remote(server_id, doc) => {
                let Some(&new_node) = self.directory.get(&server_id) else {
                    self.errors.push(format!("unknown server {server_id}"));
                    return;
                };
                if self.machine.apply(AppEvent::FollowRemoteLink).is_err() {
                    return;
                }
                // "a suspend connection primitive is invoked and a request
                // for a new connection with a new server is performed" (§5).
                if let Some((old_server, old_session)) = self.session.take() {
                    api.send_reliable(
                        self.node,
                        old_server,
                        ServiceMsg::SuspendConnection {
                            session: old_session,
                        },
                    );
                    self.suspended = Some((old_server, old_session));
                }
                self.presentation = None;
                self.pending_request = Some(doc);
                self.note(api.now(), format!("migrate → {server_id} for {doc}"));
                api.send_reliable(
                    self.node,
                    new_node,
                    ServiceMsg::Connect {
                        user: self.user,
                        class: self.cfg.class,
                    },
                );
                self.session = Some((new_node, SessionId::new(0)));
            }
        }
    }

    /// User action: disable one media stream of the current presentation
    /// ("disable the presentation of a particular media involved in the
    /// selected document", §5). Stops local playout and tells the media
    /// server to stop transmitting it.
    pub fn disable_stream(&mut self, api: &mut SimApi<'_, ServiceMsg>, component: ComponentId) {
        let Some((server, session)) = self.session else {
            return;
        };
        if let Some(p) = &mut self.presentation {
            p.engine.disable(component);
        }
        self.note(api.now(), format!("disable {component}"));
        api.send_reliable(
            self.node,
            server,
            ServiceMsg::DisableStream { session, component },
        );
    }

    /// User action: search the service.
    pub fn search(&mut self, api: &mut SimApi<'_, ServiceMsg>, token: impl Into<String>) -> u64 {
        let Some((server, session)) = self.session else {
            return 0;
        };
        let query = self.next_query;
        self.next_query += 1;
        api.send_reliable(
            self.node,
            server,
            ServiceMsg::SearchRequest {
                session,
                token: token.into(),
                query,
            },
        );
        query
    }

    /// User action: annotate the current (or any) document with a remark.
    pub fn annotate(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        document: DocumentId,
        text: impl Into<String>,
    ) {
        let Some((server, session)) = self.session else {
            return;
        };
        api.send_reliable(
            self.node,
            server,
            ServiceMsg::Annotate {
                session,
                document,
                text: text.into(),
            },
        );
    }

    /// User action: fetch this user's annotations on a document.
    pub fn fetch_annotations(&mut self, api: &mut SimApi<'_, ServiceMsg>, document: DocumentId) {
        let Some((server, session)) = self.session else {
            return;
        };
        api.send_reliable(
            self.node,
            server,
            ServiceMsg::AnnotationsFetch { session, document },
        );
    }

    /// User action: send mail to the tutor.
    pub fn send_mail(&mut self, api: &mut SimApi<'_, ServiceMsg>, mail: MailMessage) {
        let Some((server, _)) = self.session else {
            return;
        };
        api.send_reliable(self.node, server, ServiceMsg::MailSend { mail });
    }

    /// User action: fetch a mailbox.
    pub fn fetch_mail(&mut self, api: &mut SimApi<'_, ServiceMsg>, address: impl Into<String>) {
        let Some((server, _)) = self.session else {
            return;
        };
        api.send_reliable(
            self.node,
            server,
            ServiceMsg::MailFetch {
                address: address.into(),
            },
        );
    }

    /// User action: disconnect.
    pub fn disconnect(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        // A connection left suspended by a migration (§5) must be released
        // too: the user is gone for good, and without this the old server
        // holds the admission reservation for the full suspend grace
        // period (found by the chaos harness's shrinker).
        if let Some((server, session)) = self.suspended.take() {
            api.send_reliable(self.node, server, ServiceMsg::Disconnect { session });
        }
        if let Some((server, session)) = self.session.take() {
            let _ = self.machine.apply(AppEvent::Disconnect);
            api.send_reliable(self.node, server, ServiceMsg::Disconnect { session });
            self.presentation = None;
            self.note(api.now(), "disconnect");
        }
        // Drop in-flight tracked requests: retrying a Connect or
        // ReconnectRequest on behalf of a user who just left would rebuild
        // a session nobody is behind.
        self.pending_reqs.clear();
        self.pending_request = None;
    }

    /// Handle an incoming message.
    pub fn on_message(&mut self, api: &mut SimApi<'_, ServiceMsg>, from: NodeId, msg: ServiceMsg) {
        // Any traffic from the session's server counts as liveness — the
        // heartbeat is "carried with" stream traffic and only fills gaps.
        if self.session.map(|(s, _)| s) == Some(from) {
            self.last_server_activity = api.now();
        }
        match msg {
            // A first-seen acknowledgement refills the retry budget
            // (duplicate acks of an already-settled id don't).
            ServiceMsg::Ack { req } if self.pending_reqs.remove(&req).is_some() => {
                self.retries.on_success();
            }
            ServiceMsg::Ack { .. } => {}
            ServiceMsg::Heartbeat { session, seq } => {
                // Activity already recorded above. Echo beats for our live
                // session so the server can tell we're still here. Session
                // ids are per-server counters, so the match must be on the
                // (server, session) pair — matching the id alone lets a
                // client that failed over to another server keep acking its
                // orphaned old session forever (found by the chaos
                // harness). A beat from a server we have no business with —
                // not our live session's server, not our suspended one, no
                // request in flight to it — means that server is keeping
                // state for a ghost of us: tell it to let go. The
                // in-flight guard matters: during a reconnect, beats for
                // the rebuilt session can overtake the ReconnectAck, and
                // answering those with Disconnect would kill the recovery.
                if self.session == Some((from, session)) {
                    api.send(self.node, from, ServiceMsg::HeartbeatAck { session, seq });
                } else {
                    let busy_with = self.session.map(|(s, _)| s) == Some(from)
                        || self.suspended.map(|(s, _)| s) == Some(from)
                        || self.pending_reqs.values().any(|p| p.server == from);
                    if !busy_with {
                        api.send_reliable(self.node, from, ServiceMsg::Disconnect { session });
                    }
                }
            }
            ServiceMsg::ReconnectAck {
                old_session,
                session,
            } if self.session.is_none() => {
                // We disconnected (or abandoned) while the reconnect was
                // still in flight: the server just rebuilt a session nobody
                // is behind. Adopting it would keep heartbeat acks flowing
                // and pin the reservation forever (found by the chaos
                // harness's shrinker) — release it instead.
                let _ = old_session;
                api.send_reliable(self.node, from, ServiceMsg::Disconnect { session });
            }
            ServiceMsg::ReconnectAck {
                old_session,
                session,
            } => {
                let now = api.now();
                self.session = Some((from, session));
                self.arm_liveness(api);
                if old_session != session {
                    // The server rebuilt the session from scratch: its media
                    // senders restart their RTP sequence spaces, so reset
                    // the receivers to match. Any shared-group attachment
                    // died with the old session; the server re-announces it.
                    self.shared_group = None;
                    if let Some(p) = &mut self.presentation {
                        p.patch_receivers.clear();
                        for c in &p.scenario.components {
                            if let ComponentContent::Stored { encoding, .. } = &c.content {
                                if c.is_continuous() && p.receivers.contains_key(&c.id) {
                                    p.receivers.insert(c.id, RtpReceiver::new(*encoding));
                                }
                            }
                        }
                    }
                }
                if let Some(detected) = self.recovering.take() {
                    self.recoveries.push((detected, now));
                    if self.liveness_paused {
                        self.liveness_paused = false;
                        if let Some(p) = &mut self.presentation {
                            if let Some(paused_at) = p.paused_at.take() {
                                if old_session != session {
                                    // Rebuilt session: the server resumes
                                    // from our reported position, so account
                                    // the outage like a pause/resume.
                                    p.engine.shift_clock(now - paused_at);
                                }
                                // In-place ack (false alarm): the server
                                // never stopped streaming on the original
                                // timeline — resume without shifting to
                                // stay aligned with it.
                            }
                        }
                    }
                    self.note(now, format!("session recovered as {session}"));
                }
            }
            ServiceMsg::ConnectAck {
                session,
                must_subscribe,
            } if self.session.is_none() => {
                // Same late-ack race as ReconnectAck above: the user left
                // while the Connect was in flight.
                let _ = must_subscribe;
                api.send_reliable(self.node, from, ServiceMsg::Disconnect { session });
            }
            ServiceMsg::ConnectAck {
                session,
                must_subscribe,
            } => {
                self.session = Some((from, session));
                self.arm_liveness(api);
                if must_subscribe {
                    if self.machine.apply(AppEvent::AuthUnknownUser).is_ok() {
                        let form = self.cfg.form.clone();
                        api.send_reliable(self.node, from, ServiceMsg::Subscribe { session, form });
                    }
                } else {
                    // Known subscriber — or a migration completing.
                    let ev = if self.suspended.is_some() {
                        AppEvent::MigrationComplete
                    } else {
                        AppEvent::AuthOk
                    };
                    let _ = self.machine.apply(ev);
                    if ev == AppEvent::MigrationComplete {
                        if let Some(doc) = self.pending_request.take() {
                            api.send_reliable(
                                self.node,
                                from,
                                ServiceMsg::DocRequest {
                                    session,
                                    document: doc,
                                },
                            );
                        }
                    }
                }
            }
            ServiceMsg::ConnectReject { reason } => {
                self.errors.push(reason);
                let _ = self.machine.apply(AppEvent::AdmissionRejected);
                self.session = None;
            }
            ServiceMsg::SubscribeAck { user, .. } => {
                self.user = Some(user);
                let _ = self.machine.apply(AppEvent::SubscriptionAccepted);
            }
            ServiceMsg::TopicList { topics, .. } => {
                self.topics = topics;
                if let Some(doc) = self.pending_request.take() {
                    self.request_document(api, doc);
                }
            }
            ServiceMsg::ScenarioResponse {
                document,
                markup,
                lead_micros,
                ..
            } => self.on_scenario(api, document, &markup, lead_micros),
            ServiceMsg::DocError { reason, .. } => {
                self.errors.push(reason);
                let _ = self.machine.apply(AppEvent::RequestFailed);
            }
            ServiceMsg::RtpData {
                session,
                component,
                packet,
                sent_at,
            } => self.on_rtp(api, session, component, packet, sent_at),
            ServiceMsg::StreamJoin {
                group,
                epoch,
                offset_micros,
                ..
            } => {
                let now = api.now();
                self.shared_group = Some((group, epoch));
                if offset_micros >= 0 {
                    // The shared flow already started: set up dedicated
                    // receivers for the patch streams and ask for the
                    // missed prefix.
                    if let Some(p) = &mut self.presentation {
                        for c in &p.scenario.components {
                            if let ComponentContent::Stored { encoding, .. } = &c.content {
                                if c.is_continuous() {
                                    p.patch_receivers.insert(c.id, RtpReceiver::new(*encoding));
                                }
                            }
                        }
                    }
                    if let Some((server, session)) = self.session {
                        api.send_reliable(
                            self.node,
                            server,
                            ServiceMsg::PatchRequest { session, group },
                        );
                    }
                    self.note(
                        now,
                        format!("joined shared group {group} — patching {offset_micros}µs"),
                    );
                } else {
                    self.note(now, format!("joined shared group {group} before start"));
                }
            }
            ServiceMsg::GroupEpoch { group, epoch } => {
                if let Some((g, e)) = &mut self.shared_group {
                    if *g == group && *e != epoch {
                        *e = epoch;
                        self.note(api.now(), format!("shared group {group} epoch → {epoch}"));
                    }
                }
            }
            ServiceMsg::DiscreteData {
                component,
                size,
                total,
                last,
                sent_at,
                ..
            } => {
                let now = api.now();
                self.qos.stream_mut(component).on_packet(now - sent_at);
                if let Some(p) = &mut self.presentation {
                    // Accumulate segments; deliver the object on the last.
                    let got = p.discrete_partial.entry(component).or_insert(0);
                    *got += size;
                    if last {
                        let assembled = (*got).min(total);
                        p.discrete_partial.remove(&component);
                        let delivered = p.engine.deliver(MediaFrame {
                            component,
                            seq: 0,
                            pts: MediaTime::ZERO,
                            size: assembled,
                            key: true,
                            level: hermes_core::GradeLevel::NOMINAL,
                            last: true,
                        });
                        if delivered {
                            *p.frames_received.entry(component).or_insert(0) += 1;
                        }
                    }
                }
            }
            ServiceMsg::RtcpSenderReport {
                session,
                component,
                packet: hermes_rtp::RtcpPacket::SenderReport { ntp_timestamp, .. },
            } => {
                let now = api.now();
                let mine = self.session.map(|(_, s)| s) == Some(session);
                if let Some(p) = &mut self.presentation {
                    // Reports from our own patch sender sync the patch
                    // receiver; shared-flow reports sync the main one.
                    let rx = if mine && p.patch_receivers.contains_key(&component) {
                        p.patch_receivers.get_mut(&component)
                    } else {
                        p.receivers.get_mut(&component)
                    };
                    if let Some(rx) = rx {
                        rx.on_sender_report(ntp_timestamp, now);
                    }
                }
            }
            ServiceMsg::StreamStopped { component, .. } => {
                let now = api.now();
                if let Some(p) = &mut self.presentation {
                    p.engine.finish_stream(component, now);
                }
                let session = self.session.map(|(_, s)| s.raw()).unwrap_or(0);
                api.emit(
                    self.node,
                    Severity::Warn,
                    "stream_stopped",
                    Labels::session(session).stream(component.raw()),
                );
                self.note(now, format!("server stopped {component}"));
            }
            ServiceMsg::StreamRegraded {
                component, level, ..
            } => {
                let now = api.now();
                // An upgrade may restart a stream the server had stopped.
                if let Some(p) = &mut self.presentation {
                    p.engine.restart_stream(component, now);
                }
                let session = self.session.map(|(_, s)| s.raw()).unwrap_or(0);
                api.emit_val(
                    self.node,
                    Severity::Info,
                    "stream_regraded",
                    Labels::session(session).stream(component.raw()),
                    level as i64,
                );
                self.note(now, format!("{component} regraded to level {level}"));
            }
            ServiceMsg::SuspendExpired { .. } => {
                self.suspended = None;
                self.note(api.now(), "suspended connection expired");
            }
            ServiceMsg::SearchResponse { query, hits, .. } => {
                self.search_results.insert(query, hits);
            }
            ServiceMsg::MailBox { messages } => {
                self.mailbox = messages;
            }
            ServiceMsg::Annotations { document, notes } => {
                self.annotations.insert(document, notes);
            }
            _ => {}
        }
    }

    fn on_scenario(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        document: DocumentId,
        markup: &str,
        lead_micros: i64,
    ) {
        let Some((server, _)) = self.session else {
            return;
        };
        let _ = server;
        if self.machine.apply(AppEvent::ScenarioReceived).is_err() {
            return;
        }
        // The client re-derives the server id from the directory; relative
        // sources were resolved server-side before storage, so any ServerId
        // works for parsing — use the one from the directory reverse map.
        let home = self
            .directory
            .iter()
            .find(|(_, n)| **n == self.session.unwrap().0)
            .map(|(s, _)| *s)
            .unwrap_or(ServerId::new(0));
        let scenario = match hermes_hml::scenario_from_markup(markup, document, home) {
            Ok(s) => s,
            Err(e) => {
                self.errors.push(e.to_string());
                let _ = self.machine.apply(AppEvent::RequestFailed);
                return;
            }
        };
        let schedule = PlayoutSchedule::from_scenario(&scenario);
        // Frame periods per component from the codec models.
        let mut periods = BTreeMap::new();
        let mut receivers = BTreeMap::new();
        for c in &scenario.components {
            if let ComponentContent::Stored { encoding, .. } = &c.content {
                let model = hermes_media::CodecModel::for_encoding(*encoding);
                periods.insert(
                    c.id,
                    model.level(hermes_core::GradeLevel::NOMINAL).frame_period(),
                );
                if c.is_continuous() {
                    receivers.insert(c.id, RtpReceiver::new(*encoding));
                }
                self.qos.track(c.id);
            }
        }
        let engine = PlayoutEngine::new(
            &scenario,
            &schedule,
            self.cfg.buffer,
            &periods,
            self.cfg.playout,
        );
        let now = api.now();
        if self.history_nav {
            self.history_nav = false;
        } else {
            // A fresh navigation truncates any forward entries.
            self.history.truncate(self.history_cursor);
            self.history.push(document);
            self.history_cursor = self.history.len();
        }
        self.shared_group = None;
        let session = self.session.map(|(_, s)| s.raw()).unwrap_or(0);
        let root = api.session_span(session, self.node);
        let obs_prefill = api.span_start(self.node, "prefill", Labels::session(session), root);
        api.emit(
            self.node,
            Severity::Info,
            "scenario_received",
            Labels::session(session),
        );
        self.presentation = Some(Presentation {
            document,
            scenario,
            schedule,
            engine,
            receivers,
            patch_receivers: BTreeMap::new(),
            frames_received: BTreeMap::new(),
            discrete_partial: BTreeMap::new(),
            lead: MediaDuration::from_micros(lead_micros),
            scenario_at: now,
            started_at: None,
            paused_at: None,
            ticking: false,
            auto_link_fired: false,
            obs_prefill,
            obs_playout: SpanId::NONE,
            obs_glitches: 0,
            obs_ticks: 0,
        });
        self.note(now, format!("scenario for {document} received"));
        api.set_timer(
            self.node,
            MediaDuration::from_millis(20),
            timers::TK_PRIME,
            0,
        );
    }

    fn on_rtp(
        &mut self,
        api: &mut SimApi<'_, ServiceMsg>,
        session: SessionId,
        component: ComponentId,
        packet: hermes_rtp::RtpPacket,
        sent_at: MediaTime,
    ) {
        let now = api.now();
        self.qos.stream_mut(component).on_packet(now - sent_at);
        // A unicast patch stream is addressed to *this* session while a
        // shared flow carries the group leader's; each sender has its own
        // RTP sequence space, so route to the matching receiver. Delivered
        // frames from both merge into one playout buffer by pts.
        let mine = self.session.map(|(_, s)| s) == Some(session);
        let Some(p) = &mut self.presentation else {
            return;
        };
        let rx = if mine && p.patch_receivers.contains_key(&component) {
            p.patch_receivers.get_mut(&component)
        } else {
            p.receivers.get_mut(&component)
        };
        let Some(rx) = rx else {
            return;
        };
        rx.on_packet(&packet, now);
        let frames: Vec<ReceivedFrame> = rx.take_frames();
        for f in frames {
            let n = p.frames_received.entry(component).or_insert(0);
            p.engine.deliver(MediaFrame {
                component,
                seq: *n,
                pts: f.pts,
                size: f.size,
                key: true,
                level: hermes_core::GradeLevel::NOMINAL,
                last: false,
            });
            *n += 1;
        }
    }

    /// Handle a timer.
    pub fn on_timer(&mut self, api: &mut SimApi<'_, ServiceMsg>, key: u64, payload: u64) {
        match key {
            timers::TK_PRIME => self.check_prime(api),
            timers::TK_TICK => self.tick(api),
            timers::TK_FEEDBACK => self.send_feedback(api),
            timers::TK_RETRY => self.retry_tracked(api, payload),
            timers::TK_LIVENESS => self.check_liveness(api),
            _ => {}
        }
    }

    fn check_prime(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        let now = api.now();
        let Some(p) = &mut self.presentation else {
            return;
        };
        if p.started_at.is_some() {
            return;
        }
        let waited = now - p.scenario_at;
        // Streams starting within `lead` of the presentation start must be
        // primed; later ones keep filling while earlier media plays.
        let ready = p.engine.buffers_primed_for_start(p.lead) || waited >= self.cfg.max_start_delay;
        if ready {
            p.started_at = Some(now);
            p.engine.start(now);
            p.ticking = true;
            let session = self.session.map(|(_, s)| s.raw()).unwrap_or(0);
            let prefill = std::mem::replace(&mut p.obs_prefill, SpanId::NONE);
            api.span_end(prefill);
            let root = api.session_span(session, self.node);
            p.obs_playout = api.span_start(self.node, "playout", Labels::session(session), root);
            api.emit_val(
                self.node,
                Severity::Info,
                "presentation_start",
                Labels::session(session),
                waited.as_micros(),
            );
            self.note(now, "presentation started");
            api.set_timer(self.node, self.cfg.tick_interval, timers::TK_TICK, 0);
            api.set_timer(
                self.node,
                self.cfg.feedback.interval,
                timers::TK_FEEDBACK,
                0,
            );
        } else {
            api.set_timer(
                self.node,
                MediaDuration::from_millis(20),
                timers::TK_PRIME,
                0,
            );
        }
    }

    fn tick(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        let now = api.now();
        let mut finished: Option<(DocumentId, MediaDuration, MediaDuration)> = None;
        {
            let Some(p) = &mut self.presentation else {
                return;
            };
            if !p.ticking {
                return;
            }
            let session = self.session.map(|(_, s)| s.raw()).unwrap_or(0);
            if p.paused_at.is_none() {
                p.engine.tick(now);
                // Mirror buffer occupancy into the QoS trackers (and the
                // flight rings: occupancy history is the context a
                // playout-gap dump needs). The trace emission is sampled —
                // every third tick keeps the enabled-tracing overhead a
                // third of per-tick cost and stretches the bounded ring's
                // history window 3× without losing the starvation shape.
                p.obs_ticks = p.obs_ticks.wrapping_add(1);
                let sample = p.obs_ticks % 3 == 0;
                for s in p.engine.streams() {
                    if let Some(b) = &s.buffer {
                        self.qos.stream_mut(s.component).buffer_occupancy = b.occupancy().min(1.0);
                        if sample {
                            api.emit_val(
                                self.node,
                                Severity::Debug,
                                "buffer_occupancy",
                                Labels::session(session).stream(s.component.raw()),
                                (b.occupancy() * 1000.0) as i64,
                            );
                        }
                    }
                }
                let glitches = p.engine.total_stats().glitches;
                if glitches > p.obs_glitches {
                    api.emit_val(
                        self.node,
                        Severity::Warn,
                        "playout_gap",
                        Labels::session(session),
                        (glitches - p.obs_glitches) as i64,
                    );
                    api.flight_dump(self.node, "playout_gap", Labels::session(session));
                    p.obs_glitches = glitches;
                }
            }
            if p.engine.is_complete() {
                p.ticking = false;
                let playout = std::mem::replace(&mut p.obs_playout, SpanId::NONE);
                api.span_end(playout);
                api.emit(
                    self.node,
                    Severity::Info,
                    "presentation_complete",
                    Labels::session(session),
                );
                finished = Some((
                    p.document,
                    p.startup_delay().unwrap_or(MediaDuration::ZERO),
                    p.engine.max_skew_observed,
                ));
            } else {
                api.set_timer(self.node, self.cfg.tick_interval, timers::TK_TICK, 0);
            }
        }
        if finished.is_none() && self.cfg.auto_follow_links {
            // Timed (`AT`) hyperlink on a still-running presentation: "a
            // specific link will be automatically followed after the
            // expiration of a time period ... the activation of a hyperlink
            // ... will interrupt the presentation" (§3). Runs after the
            // engine tick so a link timed exactly at the presentation end
            // counts as completion, not interruption.
            let fire = self.presentation.as_ref().and_then(|p| {
                if p.auto_link_fired || p.paused_at.is_some() || !p.ticking {
                    return None;
                }
                let t0 = p.engine.presentation_start?;
                let elapsed = now - t0;
                let link = p.scenario.next_auto_link()?;
                let at = link.auto_at?;
                if elapsed >= (at - MediaTime::ZERO) && !p.engine.is_complete() {
                    Some(link.target.clone())
                } else {
                    None
                }
            });
            if let Some(target) = fire {
                if let Some(p) = &mut self.presentation {
                    p.auto_link_fired = true;
                    p.ticking = false;
                }
                self.note(now, "timed link fired — interrupting presentation");
                self.follow_link(api, target);
                return;
            }
        }
        if let Some((doc, delay, skew)) = finished {
            self.completed.push((doc, delay, skew));
            self.note(now, format!("presentation of {doc} complete"));
            let _ = self.machine.apply(AppEvent::PresentationEnded);
            if self.cfg.auto_follow_links {
                let link = self
                    .presentation
                    .as_ref()
                    .and_then(|p| p.scenario.next_auto_link().cloned());
                if let Some(l) = link {
                    // Auto-follow preserves "the sequential nature or
                    // 'writer's way' of presentation" (§3).
                    let _ = self.machine.apply(AppEvent::RequestDocument);
                    let target = l.target.clone();
                    // Undo the RequestDocument if follow_link path needs a
                    // different event; local links re-request directly.
                    match target {
                        LinkTarget::Local(doc) => {
                            if let Some((server, session)) = self.session {
                                self.presentation = None;
                                api.send_reliable(
                                    self.node,
                                    server,
                                    ServiceMsg::DocRequest {
                                        session,
                                        document: doc,
                                    },
                                );
                            }
                        }
                        LinkTarget::Remote(_, _) => {
                            // Remote auto-follow uses the interactive path.
                        }
                    }
                }
            }
        }
    }

    /// Snapshot this client's playout/QoS counters into the unified metrics
    /// registry, labelled with the client's node id (`peer`).
    pub fn publish_metrics(&self, obs: &mut Obs) {
        let l = Labels::for_peer(self.node.raw());
        if let Some(p) = &self.presentation {
            let t = p.engine.total_stats();
            obs.registry
                .counter_set("client.frames_played", l, t.frames_played);
            obs.registry
                .counter_set("client.duplicates_played", l, t.duplicates_played);
            obs.registry
                .counter_set("client.stale_frames", l, t.stale_frames);
            obs.registry.counter_set("client.glitches", l, t.glitches);
            obs.registry
                .counter_set("client.frames_dropped", l, t.frames_dropped);
            obs.registry.gauge_set(
                "client.max_skew_us",
                l,
                p.engine.max_skew_observed.as_micros() as f64,
            );
        }
        obs.registry
            .counter_set("client.completed", l, self.completed.len() as u64);
        obs.registry
            .counter_set("client.recoveries", l, self.recoveries.len() as u64);
        obs.registry
            .counter_set("client.errors", l, self.errors.len() as u64);
    }

    fn send_feedback(&mut self, api: &mut SimApi<'_, ServiceMsg>) {
        let Some((server, session)) = self.session else {
            return;
        };
        let now = api.now();
        let still_active = match &self.presentation {
            Some(p) => p.ticking || p.started_at.is_none(),
            None => false,
        };
        // Build measurements: delays/jitter from the QoS trackers, loss from
        // the RTP receiver statistics.
        let mut measurements: Vec<(ComponentId, QosMeasurement)> = self.qos.make_report(now);
        let mut rtcp = Vec::new();
        if let Some(p) = &mut self.presentation {
            for (id, m) in &mut measurements {
                if let Some(rx) = p.receivers.get_mut(id) {
                    m.loss_fraction = rx.stats.take_interval_loss();
                    rtcp.push(rx.receiver_report(self.node.raw() as u32, now));
                }
            }
        }
        api.send(
            self.node,
            server,
            ServiceMsg::Feedback {
                session,
                measurements,
                rtcp,
            },
        );
        if still_active {
            api.set_timer(
                self.node,
                self.cfg.feedback.interval,
                timers::TK_FEEDBACK,
                0,
            );
        }
    }
}

#![allow(clippy::field_reassign_with_default)]
//! EXP-ADMIT — claim: admission combines the network condition, the
//! requested QoS and the pricing contract; "a user who pays more should be
//! serviced, even though it affects the other users".
//!
//! Offer Poisson-arriving lesson requests from a mixed population of
//! Economy / Standard / Premium clients over one shared 10 Mbps server
//! uplink, sweeping the offered load, and report per-class admission rates.

use hermes_bench::{ExpOpts, Table};
use hermes_core::{MediaTime, PricingClass, ServerId};
use hermes_service::{install_course, ClientConfig, LessonShape, ServerConfig, WorldBuilder};
use hermes_simnet::{LinkSpec, SimRng};

/// One sweep point: `n_clients` clients each requesting a ~2.25 Mbps lesson,
/// arrivals spread over the first `spread_s` seconds.
fn run_point(n_clients: usize, seed: u64) -> Vec<(PricingClass, u64, u64)> {
    let mut b = WorldBuilder::new(seed);
    // The server's uplink is the shared bottleneck.
    let server = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let mut clients = Vec::new();
    for i in 0..n_clients {
        let class = match i % 3 {
            0 => PricingClass::Economy,
            1 => PricingClass::Standard,
            _ => PricingClass::Premium,
        };
        let mut cfg = ClientConfig::default();
        cfg.class = class;
        cfg.form.class = class;
        clients.push((b.add_client(LinkSpec::lan(100_000_000), cfg), class));
    }
    let mut sim = b.build(seed);
    let mut rng = SimRng::seed_from_u64(seed ^ 0xABCD);
    let lessons = install_course(
        sim.app_mut().server_mut(server),
        "Popular",
        &["demand"],
        1,
        1,
        LessonShape {
            images: 0,
            image_secs: 0,
            narrated_clip_secs: Some(25),
            closing_audio_secs: None,
        },
        &mut rng,
    );
    // Poisson-ish arrivals over the first 5 seconds.
    let mut at = 0.0f64;
    for (node, _) in &clients {
        at += rng.exponential(5.0 / n_clients as f64);
        let node = *node;
        let doc = lessons[0];
        let when = MediaTime::from_micros((at * 1e6) as i64);
        sim.run_until(when);
        sim.with_api(|w, api| {
            w.client_mut(node).connect(api, server, Some(doc));
        });
    }
    sim.run_until(MediaTime::from_secs(40));
    let srv = sim.app().server(server);
    PricingClass::ALL
        .iter()
        .map(|c| {
            let s = srv.admission.stats.get(c).copied().unwrap_or_default();
            (*c, s.admitted, s.requests)
        })
        .collect()
}

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let seeds = opts.seeds(&[1, 2, 3]);
    out.line(
        "population: equal thirds Economy/Standard/Premium; each request needs\n\
         ~2.25 Mbps of a shared 10 Mbps server uplink (≈4 fit at full quality)",
    );
    let mut t = Table::new(vec![
        "offered sessions",
        "class",
        "admitted/requests",
        "admit rate",
    ]);
    for &n in &[3usize, 6, 9, 12, 18] {
        // Aggregate over three seeds.
        let mut agg: std::collections::BTreeMap<PricingClass, (u64, u64)> = Default::default();
        for &seed in &seeds {
            for (c, a, r) in run_point(n, seed) {
                let e = agg.entry(c).or_default();
                e.0 += a;
                e.1 += r;
            }
        }
        for c in PricingClass::ALL {
            let (a, r) = agg[&c];
            t.row(vec![
                n.to_string(),
                format!("{c:?}"),
                format!("{a}/{r}"),
                if r > 0 {
                    format!("{:.0}%", a as f64 * 100.0 / r as f64)
                } else {
                    "-".into()
                },
            ]);
        }
    }
    out.table(
        "EXP-ADMIT — admission rate per pricing class vs offered load (3 seeds)",
        &t,
    );
    out.line(
        "expected shape: at low load everyone is admitted; as offered load grows the\n\
         Economy class (70% utilization ceiling) is rejected first, Standard (85%)\n\
         second, Premium (97%) last — 'a user who pays more should be serviced'.",
    );
}

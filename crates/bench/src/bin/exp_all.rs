//! Run every experiment binary in sequence (the full EXPERIMENTS.md
//! regeneration). Exits non-zero if any experiment fails.

use hermes_bench::ExpOpts;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_tab1",
    "exp_fig1",
    "exp_fig2",
    "exp_fig3",
    "exp_fig4",
    "exp_fig5",
    "exp_skew",
    "exp_window",
    "exp_grade",
    "exp_admit",
    "exp_search",
    "exp_migrate",
    "exp_ablate",
    "exp_concur",
    "exp_faults",
    "exp_overload",
    "exp_placement",
    "exp_scale",
    "exp_obs",
    "exp_chaos",
];

fn main() {
    let opts = ExpOpts::parse();
    let mut sink = opts.sink();
    let forwarded = opts.forwarded_args();
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for name in EXPERIMENTS {
        sink.line(&format!("\n################ {name} ################"));
        let status = Command::new(dir.join(name))
            .args(&forwarded)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            failed.push(*name);
        }
    }
    sink.line("\n################ summary ################");
    if failed.is_empty() {
        sink.line(&format!("all {} experiments passed ✓", EXPERIMENTS.len()));
    } else {
        sink.line(&format!("FAILED: {failed:?}"));
        std::process::exit(1);
    }
}

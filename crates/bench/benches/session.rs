//! Criterion bench: a complete end-to-end service session (the quickstart
//! scenario) — the headline "whole system" number.

use criterion::{criterion_group, criterion_main, Criterion};
use hermes_core::{DocumentId, MediaTime, ServerId};
use hermes_service::{install_figure2, ClientConfig, ServerConfig, WorldBuilder};
use hermes_simnet::{LinkSpec, SimRng};

fn full_session() -> u64 {
    let mut b = WorldBuilder::new(42);
    let server = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let client = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(42);
    let mut rng = SimRng::seed_from_u64(7);
    install_figure2(
        sim.app_mut().server_mut(server),
        DocumentId::new(1),
        &mut rng,
    );
    sim.with_api(|w, api| {
        w.client_mut(client)
            .connect(api, server, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(25));
    let c = sim.app().client(client);
    assert_eq!(c.completed.len(), 1);
    sim.stats().delivered
}

fn bench_session(c: &mut Criterion) {
    let mut g = c.benchmark_group("session");
    g.sample_size(20);
    g.bench_function("figure2_end_to_end_19s", |b| b.iter(full_session));
    g.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);

//! Recursive-descent parser for the markup language, following the BNF
//! grammar of paper Fig. 1.
//!
//! `<Hdocument> ::= TITLE STRING END_TITLE <HSentence>` where each
//! `<HSentence>` is headings + main body + separator. The parser is strict
//! about element structure (unknown attributes for an element, mismatched
//! close tags and missing mandatory attributes are errors) but tolerant
//! about ordering of attributes inside an element.

use crate::ast::*;
use crate::keywords::{AttrKeyword, TagKeyword};
use crate::lexer::{tokenize, LexError, Pos, Token, TokenKind};
use crate::values::{
    parse_dimension, parse_doc_target, parse_duration, parse_host, parse_id, parse_link_kind,
    parse_source, parse_time, parse_where, region_from_parts, SourceRef,
};
use hermes_core::{HeadingLevel, LinkKind, MediaTime, TextStyle};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// Position of the offending token (or end of input).
    pub pos: Option<Pos>,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "parse error at {}: {}", p, self.message),
            None => write!(f, "parse error at end of input: {}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            pos: Some(e.pos),
        }
    }
}

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

type PResult<T> = Result<T, ParseError>;
/// The attribute set of an element plus its `NOTE` annotation.
type AttrSet = (Vec<(AttrKeyword, String, Pos)>, Option<String>);
/// The parsed attribute bundle shared by `<AU>`-like elements.
type AudioAttrs = (
    Option<SourceRef>,
    Timing,
    Option<u64>,
    Option<String>,
    Option<String>,
);

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.i)
    }
    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }
    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            pos: self.peek().map(|t| t.pos),
        }
    }
    fn expect_open(&mut self, kw: TagKeyword) -> PResult<()> {
        match self.bump() {
            Some(Token {
                kind: TokenKind::Open(k),
                ..
            }) if k == kw => Ok(()),
            Some(t) => Err(ParseError {
                message: format!("expected <{kw}>, found {:?}", t.kind),
                pos: Some(t.pos),
            }),
            None => Err(ParseError {
                message: format!("expected <{kw}>"),
                pos: None,
            }),
        }
    }
    fn expect_close(&mut self, kw: TagKeyword) -> PResult<()> {
        match self.bump() {
            Some(Token {
                kind: TokenKind::Close(k),
                ..
            }) if k == kw => Ok(()),
            Some(t) => Err(ParseError {
                message: format!("expected </{kw}>, found {:?}", t.kind),
                pos: Some(t.pos),
            }),
            None => Err(ParseError {
                message: format!("unclosed <{kw}>"),
                pos: None,
            }),
        }
    }
    fn take_text(&mut self) -> PResult<String> {
        match self.bump() {
            Some(Token {
                kind: TokenKind::Text(s),
                ..
            }) => Ok(s),
            Some(t) => Err(ParseError {
                message: format!("expected text, found {:?}", t.kind),
                pos: Some(t.pos),
            }),
            None => Err(ParseError {
                message: "expected text".into(),
                pos: None,
            }),
        }
    }

    fn document(&mut self) -> PResult<HmlDocument> {
        self.expect_open(TagKeyword::Title)?;
        let title = self.take_text()?;
        self.expect_close(TagKeyword::Title)?;
        let mut sentences = Vec::new();
        while self.peek().is_some() {
            sentences.push(self.sentence()?);
        }
        Ok(HmlDocument { title, sentences })
    }

    fn sentence(&mut self) -> PResult<HSentence> {
        let mut headings = Vec::new();
        while let Some(Token {
            kind: TokenKind::Open(kw),
            ..
        }) = self.peek()
        {
            let level = match kw {
                TagKeyword::H1 => HeadingLevel::H1,
                TagKeyword::H2 => HeadingLevel::H2,
                TagKeyword::H3 => HeadingLevel::H3,
                _ => break,
            };
            let kw = *kw;
            self.bump();
            let text = self.take_text()?;
            self.expect_close(kw)?;
            headings.push(Heading { level, text });
        }
        let mut body = Vec::new();
        let mut separator = false;
        loop {
            match self.peek() {
                None => break,
                Some(Token {
                    kind: TokenKind::Open(kw),
                    ..
                }) => match kw {
                    // A heading starts the next sentence — but only if this
                    // sentence already has content; otherwise it was consumed
                    // above.
                    TagKeyword::H1 | TagKeyword::H2 | TagKeyword::H3 => break,
                    TagKeyword::Sep => {
                        self.bump();
                        separator = true;
                        break;
                    }
                    TagKeyword::Par => {
                        self.bump();
                        body.push(BodyItem::Paragraph);
                    }
                    TagKeyword::Text => body.push(BodyItem::Text(self.text_elem()?)),
                    TagKeyword::Img => body.push(BodyItem::Image(self.image_elem()?)),
                    TagKeyword::Au => body.push(BodyItem::Audio(self.audio_elem()?)),
                    TagKeyword::Vi => body.push(BodyItem::Video(self.video_elem()?)),
                    TagKeyword::AuVi => body.push(BodyItem::AudioVideo(self.au_vi_elem()?)),
                    TagKeyword::Hlink => body.push(BodyItem::Link(self.link_elem()?)),
                    TagKeyword::Title => {
                        return Err(self.err_here("duplicate <TITLE> — only one per document"))
                    }
                    TagKeyword::Bold | TagKeyword::Italic | TagKeyword::Underline => {
                        return Err(self.err_here("style span outside <TEXT>"))
                    }
                },
                Some(t) => {
                    return Err(ParseError {
                        message: format!("unexpected {:?} in sentence body", t.kind),
                        pos: Some(t.pos),
                    })
                }
            }
        }
        Ok(HSentence {
            headings,
            body,
            separator,
        })
    }

    fn text_elem(&mut self) -> PResult<TextElem> {
        self.expect_open(TagKeyword::Text)?;
        let mut runs = Vec::new();
        let mut timing = Timing::default();
        let mut id = None;
        self.styled_runs(TextStyle::PLAIN, &mut runs, &mut timing, &mut id)?;
        self.expect_close(TagKeyword::Text)?;
        Ok(TextElem { runs, timing, id })
    }

    /// Collect styled runs until the matching close of the *enclosing* tag is
    /// visible (we stop before any Close token and let the caller consume it).
    fn styled_runs(
        &mut self,
        style: TextStyle,
        runs: &mut Vec<AstTextRun>,
        timing: &mut Timing,
        id: &mut Option<u64>,
    ) -> PResult<()> {
        loop {
            match self.peek() {
                Some(Token {
                    kind: TokenKind::Text(_),
                    ..
                }) => {
                    let text = self.take_text()?;
                    runs.push(AstTextRun { text, style });
                }
                Some(Token {
                    kind: TokenKind::Attr(a, v),
                    pos,
                }) => {
                    let (a, v, pos) = (*a, v.clone(), *pos);
                    self.bump();
                    match a {
                        AttrKeyword::Startime => {
                            timing.start = Some(parse_time(&v).map_err(|e| ParseError {
                                message: e.to_string(),
                                pos: Some(pos),
                            })?)
                        }
                        AttrKeyword::Duration => {
                            timing.duration = Some(parse_duration(&v).map_err(|e| ParseError {
                                message: e.to_string(),
                                pos: Some(pos),
                            })?)
                        }
                        AttrKeyword::Id => {
                            *id = Some(parse_id(&v).map_err(|e| ParseError {
                                message: e.to_string(),
                                pos: Some(pos),
                            })?)
                        }
                        other => {
                            return Err(ParseError {
                                message: format!("attribute {other} not allowed in <TEXT>"),
                                pos: Some(pos),
                            })
                        }
                    }
                }
                Some(Token {
                    kind: TokenKind::Open(kw),
                    ..
                }) if kw.is_style() => {
                    let kw = *kw;
                    self.bump();
                    let inner = match kw {
                        TagKeyword::Bold => TextStyle {
                            bold: true,
                            ..style
                        },
                        TagKeyword::Italic => TextStyle {
                            italic: true,
                            ..style
                        },
                        TagKeyword::Underline => TextStyle {
                            underline: true,
                            ..style
                        },
                        _ => unreachable!(),
                    };
                    self.styled_runs(inner, runs, timing, id)?;
                    self.expect_close(kw)?;
                }
                _ => return Ok(()),
            }
        }
    }

    /// Collect the attribute set of a media/link element until its close tag.
    fn attrs_until_close(&mut self, kw: TagKeyword) -> PResult<AttrSet> {
        self.expect_open(kw)?;
        let mut attrs = Vec::new();
        let mut note: Option<String> = None;
        loop {
            match self.peek() {
                Some(Token {
                    kind: TokenKind::Attr(a, v),
                    pos,
                }) => {
                    let item = (*a, v.clone(), *pos);
                    self.bump();
                    if item.0 == AttrKeyword::Note {
                        note = Some(item.1);
                    } else {
                        attrs.push(item);
                    }
                }
                Some(Token {
                    kind: TokenKind::Close(k),
                    ..
                }) if *k == kw => {
                    self.bump();
                    return Ok((attrs, note));
                }
                Some(t) => {
                    return Err(ParseError {
                        message: format!("unexpected {:?} inside <{kw}>", t.kind),
                        pos: Some(t.pos),
                    })
                }
                None => {
                    return Err(ParseError {
                        message: format!("unclosed <{kw}>"),
                        pos: None,
                    })
                }
            }
        }
    }

    fn image_elem(&mut self) -> PResult<ImageElem> {
        let (attrs, note) = self.attrs_until_close(TagKeyword::Img)?;
        let mut source = None;
        let mut timing = Timing::default();
        let (mut at, mut w, mut h) = (None, None, None);
        let mut id = None;
        let mut encoding = None;
        for (a, v, pos) in attrs {
            let map = |e: crate::values::ValueError| ParseError {
                message: e.to_string(),
                pos: Some(pos),
            };
            match a {
                AttrKeyword::Source => source = Some(parse_source(&v).map_err(map)?),
                AttrKeyword::Startime => timing.start = Some(parse_time(&v).map_err(map)?),
                AttrKeyword::Duration => timing.duration = Some(parse_duration(&v).map_err(map)?),
                AttrKeyword::Where => at = Some(parse_where(&v).map_err(map)?),
                AttrKeyword::Width => w = Some(parse_dimension(&v).map_err(map)?),
                AttrKeyword::Height => h = Some(parse_dimension(&v).map_err(map)?),
                AttrKeyword::Id => id = Some(parse_id(&v).map_err(map)?),
                AttrKeyword::EncodingAttr => encoding = Some(v),
                other => {
                    return Err(ParseError {
                        message: format!("attribute {other} not allowed in <IMG>"),
                        pos: Some(pos),
                    })
                }
            }
        }
        Ok(ImageElem {
            source: source.ok_or_else(|| ParseError {
                message: "<IMG> requires SOURCE".into(),
                pos: None,
            })?,
            timing,
            region: region_from_parts(at, w, h),
            id,
            note,
            encoding,
        })
    }

    fn audio_attrs(
        &mut self,
        attrs: Vec<(AttrKeyword, String, Pos)>,
        ctx: &str,
    ) -> PResult<AudioAttrs> {
        let mut source = None;
        let mut timing = Timing::default();
        let mut id = None;
        let mut encoding = None;
        let mut sync = None;
        for (a, v, pos) in attrs {
            let map = |e: crate::values::ValueError| ParseError {
                message: e.to_string(),
                pos: Some(pos),
            };
            match a {
                AttrKeyword::Source => source = Some(parse_source(&v).map_err(map)?),
                AttrKeyword::Startime => timing.start = Some(parse_time(&v).map_err(map)?),
                AttrKeyword::Duration => timing.duration = Some(parse_duration(&v).map_err(map)?),
                AttrKeyword::Id => id = Some(parse_id(&v).map_err(map)?),
                AttrKeyword::EncodingAttr => encoding = Some(v),
                AttrKeyword::Sync => sync = Some(v),
                other => {
                    return Err(ParseError {
                        message: format!("attribute {other} not allowed in <{ctx}>"),
                        pos: Some(pos),
                    })
                }
            }
        }
        Ok((source, timing, id, encoding, sync))
    }

    fn audio_elem(&mut self) -> PResult<AudioElem> {
        let (attrs, note) = self.attrs_until_close(TagKeyword::Au)?;
        let (source, timing, id, encoding, sync) = self.audio_attrs(attrs, "AU")?;
        Ok(AudioElem {
            source: source.ok_or_else(|| ParseError {
                message: "<AU> requires SOURCE".into(),
                pos: None,
            })?,
            timing,
            id,
            note,
            encoding,
            sync,
        })
    }

    fn video_elem(&mut self) -> PResult<VideoElem> {
        let (attrs, note) = self.attrs_until_close(TagKeyword::Vi)?;
        let mut source = None;
        let mut timing = Timing::default();
        let (mut at, mut w, mut h) = (None, None, None);
        let mut id = None;
        let mut encoding = None;
        let mut sync = None;
        for (a, v, pos) in attrs {
            let map = |e: crate::values::ValueError| ParseError {
                message: e.to_string(),
                pos: Some(pos),
            };
            match a {
                AttrKeyword::Source => source = Some(parse_source(&v).map_err(map)?),
                AttrKeyword::Startime => timing.start = Some(parse_time(&v).map_err(map)?),
                AttrKeyword::Duration => timing.duration = Some(parse_duration(&v).map_err(map)?),
                AttrKeyword::Where => at = Some(parse_where(&v).map_err(map)?),
                AttrKeyword::Width => w = Some(parse_dimension(&v).map_err(map)?),
                AttrKeyword::Height => h = Some(parse_dimension(&v).map_err(map)?),
                AttrKeyword::Id => id = Some(parse_id(&v).map_err(map)?),
                AttrKeyword::EncodingAttr => encoding = Some(v),
                AttrKeyword::Sync => sync = Some(v),
                other => {
                    return Err(ParseError {
                        message: format!("attribute {other} not allowed in <VI>"),
                        pos: Some(pos),
                    })
                }
            }
        }
        Ok(VideoElem {
            source: source.ok_or_else(|| ParseError {
                message: "<VI> requires SOURCE".into(),
                pos: None,
            })?,
            timing,
            region: region_from_parts(at, w, h),
            id,
            note,
            encoding,
            sync,
        })
    }

    /// `<AU_VI>`: per the grammar the element carries paired attributes —
    /// audio's first, video's second: `STARTIME= STARTIME= SOURCE= SOURCE=
    /// ID= ID=`. A single `STARTIME`/`DURATION` applies to both halves.
    /// If two start times are given they must be equal ("the two media
    /// should start and stop playing at the same time").
    fn au_vi_elem(&mut self) -> PResult<AudioVideoElem> {
        let (attrs, note) = self.attrs_until_close(TagKeyword::AuVi)?;
        let mut starts: Vec<MediaTime> = Vec::new();
        let mut durations = Vec::new();
        let mut sources: Vec<SourceRef> = Vec::new();
        let mut ids: Vec<u64> = Vec::new();
        let mut encodings: Vec<String> = Vec::new();
        for (a, v, pos) in attrs {
            let map = |e: crate::values::ValueError| ParseError {
                message: e.to_string(),
                pos: Some(pos),
            };
            match a {
                AttrKeyword::Startime => starts.push(parse_time(&v).map_err(map)?),
                AttrKeyword::Duration => durations.push(parse_duration(&v).map_err(map)?),
                AttrKeyword::Source => sources.push(parse_source(&v).map_err(map)?),
                AttrKeyword::Id => ids.push(parse_id(&v).map_err(map)?),
                AttrKeyword::EncodingAttr => encodings.push(v),
                other => {
                    return Err(ParseError {
                        message: format!("attribute {other} not allowed in <AU_VI>"),
                        pos: Some(pos),
                    })
                }
            }
        }
        if sources.len() != 2 {
            return Err(ParseError {
                message: format!(
                    "<AU_VI> requires exactly two SOURCE attributes, got {}",
                    sources.len()
                ),
                pos: None,
            });
        }
        if starts.len() > 2 || durations.len() > 2 || ids.len() > 2 {
            return Err(ParseError {
                message: "<AU_VI> allows at most two of each timing/id attribute".into(),
                pos: None,
            });
        }
        if starts.len() == 2 && starts[0] != starts[1] {
            return Err(ParseError {
                message: "<AU_VI> start times must be equal (the pair starts together)".into(),
                pos: None,
            });
        }
        if durations.len() == 2 && durations[0] != durations[1] {
            return Err(ParseError {
                message: "<AU_VI> durations must be equal (the pair stops together)".into(),
                pos: None,
            });
        }
        let start = starts.first().copied();
        let duration = durations.first().copied();
        let timing = Timing { start, duration };
        let mut src_it = sources.into_iter();
        let a_src = src_it.next().unwrap();
        let v_src = src_it.next().unwrap();
        let audio = AudioElem {
            source: a_src,
            timing,
            id: ids.first().copied(),
            note: None,
            encoding: encodings.first().cloned(),
            sync: None,
        };
        let video = VideoElem {
            source: v_src,
            timing,
            region: None,
            id: ids.get(1).copied(),
            note: None,
            encoding: encodings.get(1).cloned(),
            sync: None,
        };
        Ok(AudioVideoElem { audio, video, note })
    }

    fn link_elem(&mut self) -> PResult<LinkElem> {
        let (attrs, note) = self.attrs_until_close(TagKeyword::Hlink)?;
        let mut kind = LinkKind::Sequential;
        let mut to = None;
        let mut host = None;
        let mut at = None;
        for (a, v, pos) in attrs {
            let map = |e: crate::values::ValueError| ParseError {
                message: e.to_string(),
                pos: Some(pos),
            };
            match a {
                AttrKeyword::Kind => kind = parse_link_kind(&v).map_err(map)?,
                AttrKeyword::To => to = Some(parse_doc_target(&v).map_err(map)?),
                AttrKeyword::Host => host = Some(parse_host(&v).map_err(map)?),
                AttrKeyword::At => at = Some(parse_time(&v).map_err(map)?),
                other => {
                    return Err(ParseError {
                        message: format!("attribute {other} not allowed in <HLINK>"),
                        pos: Some(pos),
                    })
                }
            }
        }
        Ok(LinkElem {
            kind,
            to: to.ok_or_else(|| ParseError {
                message: "<HLINK> requires TO".into(),
                pos: None,
            })?,
            host,
            at,
            note,
        })
    }
}

/// Parse a complete markup source text into a document AST.
pub fn parse(src: &str) -> Result<HmlDocument, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, i: 0 };
    let doc = p.document()?;
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::MediaDuration;

    #[test]
    fn minimal_document() {
        let doc = parse("<TITLE> Hello </TITLE>").unwrap();
        assert_eq!(doc.title, "Hello");
        assert!(doc.sentences.is_empty());
    }

    #[test]
    fn paper_layout_example() {
        // The exact example from §3.1 of the paper.
        let src = r#"
<TITLE> This is a title </TITLE>
<H1> This is a heading 1 </H1>
<TEXT> This is a text segment </TEXT>
<PAR>
<TEXT> This is another text segment. <B> This is boldface. </B> <I> And this is in italics. </I> </TEXT>
"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.title, "This is a title");
        assert_eq!(doc.sentences.len(), 1);
        let s = &doc.sentences[0];
        assert_eq!(s.headings.len(), 1);
        assert_eq!(s.headings[0].level, HeadingLevel::H1);
        assert_eq!(s.body.len(), 3); // TEXT, PAR, TEXT
        match &s.body[2] {
            BodyItem::Text(t) => {
                assert_eq!(t.runs.len(), 3);
                assert!(t.runs[1].style.bold);
                assert!(t.runs[2].style.italic);
                assert!(!t.runs[0].style.bold);
            }
            other => panic!("expected text, got {other:?}"),
        }
    }

    #[test]
    fn image_with_all_attributes() {
        let src = r#"<TITLE>t</TITLE>
<IMG> SOURCE=srv0:imgs/a.jpg STARTIME=0s DURATION=5s WHERE=10,20 WIDTH=320 HEIGHT=200 ID=1 NOTE="logo" </IMG>"#;
        let doc = parse(src).unwrap();
        match &doc.sentences[0].body[0] {
            BodyItem::Image(img) => {
                assert_eq!(img.timing.start, Some(MediaTime::ZERO));
                assert_eq!(img.timing.duration, Some(MediaDuration::from_secs(5)));
                assert_eq!(img.region.unwrap().width, 320);
                assert_eq!(img.id, Some(1));
                assert_eq!(img.note.as_deref(), Some("logo"));
            }
            other => panic!("expected image, got {other:?}"),
        }
    }

    #[test]
    fn au_vi_pair_shares_timing() {
        let src = r#"<TITLE>t</TITLE>
<AU_VI> STARTIME=6s DURATION=8s SOURCE=a1.pcm SOURCE=v1.mpg ID=3 ID=4 </AU_VI>"#;
        let doc = parse(src).unwrap();
        match &doc.sentences[0].body[0] {
            BodyItem::AudioVideo(av) => {
                assert_eq!(av.audio.timing.start, Some(MediaTime::from_secs(6)));
                assert_eq!(av.video.timing.start, Some(MediaTime::from_secs(6)));
                assert_eq!(av.audio.id, Some(3));
                assert_eq!(av.video.id, Some(4));
            }
            other => panic!("expected au_vi, got {other:?}"),
        }
    }

    #[test]
    fn au_vi_mismatched_starts_rejected() {
        let src = r#"<TITLE>t</TITLE>
<AU_VI> STARTIME=6s STARTIME=7s SOURCE=a SOURCE=v </AU_VI>"#;
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("start times must be equal"));
    }

    #[test]
    fn au_vi_requires_two_sources() {
        let src = "<TITLE>t</TITLE> <AU_VI> SOURCE=a </AU_VI>";
        assert!(parse(src).is_err());
    }

    #[test]
    fn hlink_with_timed_activation() {
        let src = r#"<TITLE>t</TITLE>
<HLINK> AT=19s TO=doc2 KIND=SEQ NOTE="next lesson" </HLINK>
<HLINK> TO=doc9 HOST=srv3 KIND=EXP </HLINK>"#;
        let doc = parse(src).unwrap();
        match (&doc.sentences[0].body[0], &doc.sentences[0].body[1]) {
            (BodyItem::Link(a), BodyItem::Link(b)) => {
                assert_eq!(a.at, Some(MediaTime::from_secs(19)));
                assert_eq!(a.kind, LinkKind::Sequential);
                assert_eq!(b.kind, LinkKind::Explorational);
                assert!(b.host.is_some());
                assert_eq!(b.at, None);
            }
            other => panic!("expected links, got {other:?}"),
        }
    }

    #[test]
    fn separator_splits_sentences() {
        let src = r#"<TITLE>t</TITLE>
<H1> one </H1> <TEXT> a </TEXT> <SEP>
<H2> two </H2> <TEXT> b </TEXT>"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.sentences.len(), 2);
        assert!(doc.sentences[0].separator);
        assert!(!doc.sentences[1].separator);
        assert_eq!(doc.sentences[1].headings[0].level, HeadingLevel::H2);
    }

    #[test]
    fn heading_starts_new_sentence() {
        let src = r#"<TITLE>t</TITLE>
<TEXT> a </TEXT>
<H1> fresh </H1> <TEXT> b </TEXT>"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.sentences.len(), 2);
        assert!(doc.sentences[0].headings.is_empty());
        assert_eq!(doc.sentences[1].headings.len(), 1);
    }

    #[test]
    fn missing_source_rejected() {
        assert!(parse("<TITLE>t</TITLE> <IMG> ID=1 </IMG>").is_err());
        assert!(parse("<TITLE>t</TITLE> <AU> ID=1 </AU>").is_err());
        assert!(parse("<TITLE>t</TITLE> <VI> ID=1 </VI>").is_err());
        assert!(parse("<TITLE>t</TITLE> <HLINK> KIND=SEQ </HLINK>").is_err());
    }

    #[test]
    fn wrong_attribute_for_element_rejected() {
        let e = parse("<TITLE>t</TITLE> <AU> SOURCE=a WIDTH=3 </AU>").unwrap_err();
        assert!(e.message.contains("not allowed"));
    }

    #[test]
    fn mismatched_close_rejected() {
        assert!(parse("<TITLE>t</TITLE> <TEXT> x </IMG>").is_err());
    }

    #[test]
    fn missing_title_rejected() {
        assert!(parse("<TEXT> x </TEXT>").is_err());
    }

    #[test]
    fn duplicate_title_rejected() {
        assert!(parse("<TITLE>a</TITLE><TITLE>b</TITLE>").is_err());
    }

    #[test]
    fn nested_styles_compose() {
        let doc =
            parse("<TITLE>t</TITLE> <TEXT> <B> bold <I> bold-italic </I> </B> </TEXT>").unwrap();
        match &doc.sentences[0].body[0] {
            BodyItem::Text(t) => {
                assert!(t.runs[0].style.bold && !t.runs[0].style.italic);
                assert!(t.runs[1].style.bold && t.runs[1].style.italic);
            }
            other => panic!("expected text, got {other:?}"),
        }
    }

    #[test]
    fn style_outside_text_rejected() {
        assert!(parse("<TITLE>t</TITLE> <B> x </B>").is_err());
    }

    #[test]
    fn timed_text_component() {
        let doc = parse("<TITLE>t</TITLE> <TEXT> STARTIME=2s DURATION=3s caption </TEXT>").unwrap();
        match &doc.sentences[0].body[0] {
            BodyItem::Text(t) => {
                assert_eq!(t.timing.start, Some(MediaTime::from_secs(2)));
                assert_eq!(t.timing.duration, Some(MediaDuration::from_secs(3)));
                assert_eq!(t.runs[0].text, "caption");
            }
            other => panic!("expected text, got {other:?}"),
        }
    }
}

//! Deterministic fault injection: node crashes/restarts, link partitions and
//! link flapping, scheduled as ordinary events on the simulator's timer
//! wheel.
//!
//! A [`FaultPlan`] is a declarative schedule built with the combinators
//! below and installed with [`crate::Sim::install_faults`]. Every fault is
//! applied at a deterministic simulation instant, so a run with a given
//! (topology seed, sim seed, fault plan) triple is exactly reproducible —
//! including runs that also use jitter/loss/congestion models, which keep
//! drawing from their own per-link RNG streams. Optional timing jitter on
//! the plan itself draws from a [`SimRng`], keeping perturbed schedules
//! seeded too.
//!
//! Semantics:
//!
//! * **Node crash** — the node's "process" dies: queued deliveries and
//!   timers addressed to it are discarded when they fire, and reliable
//!   channels touching the node are torn down (outstanding segments are
//!   abandoned rather than wedging the in-order release gate).
//! * **Node restart** — the node comes back with a fresh incarnation:
//!   timers and retransmission chains belonging to the crashed incarnation
//!   stay dead; the application is told so it can rebuild volatile state.
//! * **Link partition** — both directions of a link go down; packets
//!   offered to a down link are dropped (the reliable transport keeps
//!   retrying with backoff, so short partitions heal transparently).
//! * **Link flap** — a periodic down/up cycle, expanded at install time
//!   into plain partition/heal events.

use crate::rng::SimRng;
use hermes_core::{MediaDuration, MediaTime, NodeId};
use std::fmt;

/// A structural defect found by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// An event is scheduled before simulation time zero.
    NegativeTime(FaultEvent),
    /// A crash and its restart (or a `LinkDown`/`LinkUp`, or a
    /// `NodeSlow`/`NodeNominal`) share the same instant for the same
    /// subject: the fault window has zero length and the pair is pure
    /// schedule noise.
    ZeroLengthWindow(FaultEvent),
    /// A `NodeSlow` with `factor < 2`: factor 1 is nominal speed and
    /// factor 0 would *speed the node up* at apply time (the engine clamps
    /// to 1) — either way the event does nothing.
    UselessSlowdown(FaultEvent),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NegativeTime(e) => write!(f, "fault scheduled before t=0: {e:?}"),
            PlanError::ZeroLengthWindow(e) => {
                write!(f, "zero-length fault window closed by {e:?}")
            }
            PlanError::UselessSlowdown(e) => write!(f, "slowdown factor < 2 does nothing: {e:?}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node's process dies; volatile state and in-flight work are lost.
    NodeCrash {
        /// The crashing node.
        node: NodeId,
    },
    /// The node's process comes back (a fresh incarnation).
    NodeRestart {
        /// The restarting node.
        node: NodeId,
    },
    /// Both directions of the `a`–`b` link go down.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Both directions of the `a`–`b` link come back up.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The node stays alive but serves `factor`× slower (a brownout:
    /// overloaded CPU, thrashing disk). The engine itself delivers and fires
    /// timers normally; the *application* is told and inflates its service
    /// times, so breakers and hedging — not the transport — must cover it.
    NodeSlow {
        /// The slowed node.
        node: NodeId,
        /// Service-time multiplier (≥ 1).
        factor: u32,
    },
    /// The node returns to nominal service speed (ends a `NodeSlow`).
    NodeNominal {
        /// The recovering node.
        node: NodeId,
    },
}

/// A fault scheduled at an absolute simulation instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault is applied.
    pub at: MediaTime,
    /// What happens.
    pub kind: FaultKind,
}

/// The *subject* a fault acts on: a node's process, a node's service speed,
/// or a link. Window validation and order-preserving jitter pair an opening
/// fault with the closing fault of the same subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Subject {
    Process(NodeId),
    Speed(NodeId),
    Link(NodeId, NodeId),
}

impl FaultKind {
    fn subject(&self) -> Subject {
        match *self {
            FaultKind::NodeCrash { node } | FaultKind::NodeRestart { node } => {
                Subject::Process(node)
            }
            FaultKind::NodeSlow { node, .. } | FaultKind::NodeNominal { node } => {
                Subject::Speed(node)
            }
            FaultKind::LinkDown { a, b } | FaultKind::LinkUp { a, b } => {
                Subject::Link(a.min(b), a.max(b))
            }
        }
    }

    /// True for the faults that *close* a window opened by their
    /// counterpart (restart closes crash, up closes down, nominal closes
    /// slow).
    fn is_repair(&self) -> bool {
        matches!(
            self,
            FaultKind::NodeRestart { .. }
                | FaultKind::LinkUp { .. }
                | FaultKind::NodeNominal { .. }
        )
    }

    /// Render as a ready-to-paste Rust expression.
    fn rust_literal(&self) -> String {
        fn n(id: NodeId) -> String {
            format!("NodeId::new({})", id.raw())
        }
        match *self {
            FaultKind::NodeCrash { node } => {
                format!("FaultKind::NodeCrash {{ node: {} }}", n(node))
            }
            FaultKind::NodeRestart { node } => {
                format!("FaultKind::NodeRestart {{ node: {} }}", n(node))
            }
            FaultKind::LinkDown { a, b } => {
                format!("FaultKind::LinkDown {{ a: {}, b: {} }}", n(a), n(b))
            }
            FaultKind::LinkUp { a, b } => {
                format!("FaultKind::LinkUp {{ a: {}, b: {} }}", n(a), n(b))
            }
            FaultKind::NodeSlow { node, factor } => format!(
                "FaultKind::NodeSlow {{ node: {}, factor: {factor} }}",
                n(node)
            ),
            FaultKind::NodeNominal { node } => {
                format!("FaultKind::NodeNominal {{ node: {} }}", n(node))
            }
        }
    }
}

/// A declarative, deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule a raw fault.
    pub fn at(mut self, at: MediaTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Crash `node` at `at` (no restart).
    pub fn crash(self, node: NodeId, at: MediaTime) -> Self {
        self.at(at, FaultKind::NodeCrash { node })
    }

    /// Restart `node` at `at`.
    pub fn restart(self, node: NodeId, at: MediaTime) -> Self {
        self.at(at, FaultKind::NodeRestart { node })
    }

    /// Crash `node` at `at` and restart it `down_for` later.
    pub fn crash_for(self, node: NodeId, at: MediaTime, down_for: MediaDuration) -> Self {
        self.crash(node, at).restart(node, at + down_for)
    }

    /// Partition the `a`–`b` link during `[from, until)`.
    pub fn partition(self, a: NodeId, b: NodeId, from: MediaTime, until: MediaTime) -> Self {
        self.at(from, FaultKind::LinkDown { a, b })
            .at(until, FaultKind::LinkUp { a, b })
    }

    /// Slow `node` down by `factor`× starting at `at` (no recovery).
    pub fn slow(self, node: NodeId, at: MediaTime, factor: u32) -> Self {
        self.at(at, FaultKind::NodeSlow { node, factor })
    }

    /// Brownout: slow `node` by `factor`× during `[at, at + lasting)`, then
    /// return it to nominal speed — alive throughout, never crashed.
    pub fn brownout(
        self,
        node: NodeId,
        at: MediaTime,
        lasting: MediaDuration,
        factor: u32,
    ) -> Self {
        self.slow(node, at, factor)
            .at(at + lasting, FaultKind::NodeNominal { node })
    }

    /// Flap the `a`–`b` link: starting at `start`, `cycles` periods of
    /// `period` each beginning with `down_for` of outage.
    pub fn flap(
        mut self,
        a: NodeId,
        b: NodeId,
        start: MediaTime,
        period: MediaDuration,
        down_for: MediaDuration,
        cycles: u32,
    ) -> Self {
        let down_for = down_for.min(period);
        for i in 0..cycles {
            let t = start + period * i as i64;
            self = self.partition(a, b, t, t + down_for);
        }
        self
    }

    /// Perturb every event time by a uniform draw from `[0, max_jitter)`.
    /// The draw comes from the supplied seeded RNG, so a jittered plan is
    /// still fully reproducible. Relative order *within one subject* (a
    /// node's crash/restart pair, a link's down/up pair) is preserved: a
    /// repair drawn to land before its fault is clamped just after it, so
    /// jitter can never invert a window into a permanent outage.
    pub fn jittered(mut self, rng: &mut SimRng, max_jitter: MediaDuration) -> Self {
        let span = max_jitter.as_micros().max(0) as u64;
        if span > 0 {
            let mut floor: Vec<(Subject, MediaTime)> = Vec::new();
            for ev in &mut self.events {
                ev.at += MediaDuration::from_micros(rng.range_u64(0, span) as i64);
                let subject = ev.kind.subject();
                match floor.iter_mut().find(|(s, _)| *s == subject) {
                    Some((_, t)) => {
                        if ev.at <= *t {
                            ev.at = *t + MediaDuration::from_micros(1);
                        }
                        *t = ev.at;
                    }
                    None => floor.push((subject, ev.at)),
                }
            }
        }
        self
    }

    /// The scheduled events, sorted by time.
    ///
    /// **Same-tick ordering guarantee:** the sort is stable, so events at
    /// the same instant apply in *plan order* (the order the builder calls
    /// appended them). A `crash` followed by a `restart` at the same
    /// instant crashes first; [`crate::Sim::install_faults`] preserves this
    /// order on the timer wheel via the engine's FIFO sequence numbers.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at);
        evs
    }

    /// Borrow the raw events in plan (builder) order, unsorted.
    pub fn raw_events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Rebuild a plan from an explicit event list (plan order = list
    /// order). The shrinker uses this to re-assemble candidate subsets.
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// Structural validation: rejects events scheduled before t=0,
    /// zero-length fault windows (a repair at the same instant as the fault
    /// it closes), and useless slowdown factors. Returns the first defect
    /// found in time order.
    pub fn validate(&self) -> Result<(), PlanError> {
        let mut open: Vec<(Subject, MediaTime)> = Vec::new();
        for ev in self.events() {
            if ev.at < MediaTime::ZERO {
                return Err(PlanError::NegativeTime(ev));
            }
            if let FaultKind::NodeSlow { factor, .. } = ev.kind {
                if factor < 2 {
                    return Err(PlanError::UselessSlowdown(ev));
                }
            }
            let subject = ev.kind.subject();
            if ev.kind.is_repair() {
                if let Some(pos) = open.iter().position(|(s, _)| *s == subject) {
                    let (_, opened_at) = open.remove(pos);
                    if opened_at == ev.at {
                        return Err(PlanError::ZeroLengthWindow(ev));
                    }
                }
            } else {
                match open.iter_mut().find(|(s, _)| *s == subject) {
                    Some((_, t)) => *t = ev.at,
                    None => open.push((subject, ev.at)),
                }
            }
        }
        Ok(())
    }

    /// A cleaned copy: events sorted by time (stable, keeping plan order
    /// within a tick) with *identical* adjacent events — same instant, same
    /// kind — deduplicated. Duplicates are idempotent at apply time, so
    /// dropping them changes nothing except schedule size.
    pub fn normalized(&self) -> FaultPlan {
        let mut evs = self.events();
        evs.dedup();
        FaultPlan { events: evs }
    }

    /// Render the plan as a ready-to-paste `FaultPlan` builder expression
    /// (the shrinker's minimal-repro output format).
    pub fn to_rust_literal(&self) -> String {
        let mut s = String::from("FaultPlan::new()");
        for ev in self.events() {
            s.push_str(&format!(
                "\n    .at(MediaTime::from_micros({}), {})",
                ev.at.as_micros(),
                ev.kind.rust_literal()
            ));
        }
        s
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u64) -> NodeId {
        NodeId::new(id)
    }

    #[test]
    fn builders_expand_to_events() {
        let plan = FaultPlan::new()
            .crash_for(n(1), MediaTime::from_secs(5), MediaDuration::from_secs(2))
            .partition(n(0), n(1), MediaTime::from_secs(1), MediaTime::from_secs(3));
        let evs = plan.events();
        assert_eq!(evs.len(), 4);
        // Sorted by time.
        assert!(evs.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(evs[0].kind, FaultKind::LinkDown { a: n(0), b: n(1) },);
        assert_eq!(evs[2].kind, FaultKind::NodeCrash { node: n(1) });
        assert_eq!(evs[3].at, MediaTime::from_secs(7));
    }

    #[test]
    fn flap_expands_cycles() {
        let plan = FaultPlan::new().flap(
            n(0),
            n(1),
            MediaTime::from_secs(1),
            MediaDuration::from_secs(10),
            MediaDuration::from_secs(2),
            3,
        );
        let evs = plan.events();
        assert_eq!(evs.len(), 6);
        assert_eq!(evs[0].at, MediaTime::from_secs(1));
        assert_eq!(evs[1].at, MediaTime::from_secs(3));
        assert_eq!(evs[4].at, MediaTime::from_secs(21));
        // Down/up alternate.
        assert!(matches!(evs[4].kind, FaultKind::LinkDown { .. }));
        assert!(matches!(evs[5].kind, FaultKind::LinkUp { .. }));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let base =
            FaultPlan::new().crash_for(n(2), MediaTime::from_secs(10), MediaDuration::from_secs(1));
        let j1 = base.clone().jittered(
            &mut SimRng::seed_from_u64(7),
            MediaDuration::from_millis(500),
        );
        let j2 = base.clone().jittered(
            &mut SimRng::seed_from_u64(7),
            MediaDuration::from_millis(500),
        );
        assert_eq!(j1, j2, "same seed, same perturbation");
        for (b, j) in base.events().iter().zip(j1.events()) {
            assert!(j.at >= b.at && j.at < b.at + MediaDuration::from_millis(500));
        }
    }

    #[test]
    fn brownout_expands_to_slow_then_nominal() {
        let plan = FaultPlan::new().brownout(
            n(3),
            MediaTime::from_secs(2),
            MediaDuration::from_secs(5),
            8,
        );
        let evs = plan.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[0].kind,
            FaultKind::NodeSlow {
                node: n(3),
                factor: 8
            }
        );
        assert_eq!(evs[1].at, MediaTime::from_secs(7));
        assert_eq!(evs[1].kind, FaultKind::NodeNominal { node: n(3) });
    }

    #[test]
    fn same_instant_keeps_plan_order() {
        let t = MediaTime::from_secs(4);
        let plan = FaultPlan::new().restart(n(1), t).crash(n(1), t);
        let evs = plan.events();
        assert!(matches!(evs[0].kind, FaultKind::NodeRestart { .. }));
        assert!(matches!(evs[1].kind, FaultKind::NodeCrash { .. }));
    }

    #[test]
    fn validate_rejects_zero_length_windows() {
        let t = MediaTime::from_secs(2);
        let plan = FaultPlan::new().crash_for(n(1), t, MediaDuration::ZERO);
        assert!(matches!(
            plan.validate(),
            Err(PlanError::ZeroLengthWindow(_))
        ));
        let plan = FaultPlan::new().partition(n(0), n(2), t, t);
        assert!(matches!(
            plan.validate(),
            Err(PlanError::ZeroLengthWindow(_))
        ));
        // A healthy window passes; so does a crash with no restart.
        assert!(FaultPlan::new()
            .crash_for(n(1), t, MediaDuration::from_millis(1))
            .validate()
            .is_ok());
        assert!(FaultPlan::new().crash(n(1), t).validate().is_ok());
    }

    #[test]
    fn validate_rejects_negative_time_and_useless_slowdown() {
        let plan = FaultPlan::new().crash(n(1), MediaTime::from_micros(-1));
        assert!(matches!(plan.validate(), Err(PlanError::NegativeTime(_))));
        let plan = FaultPlan::new().slow(n(1), MediaTime::from_secs(1), 1);
        assert!(matches!(
            plan.validate(),
            Err(PlanError::UselessSlowdown(_))
        ));
    }

    #[test]
    fn normalized_dedups_identical_events() {
        let t = MediaTime::from_secs(3);
        let plan = FaultPlan::new()
            .crash(n(1), t)
            .crash(n(1), t)
            .crash(n(2), t);
        let norm = plan.normalized();
        assert_eq!(norm.len(), 2);
        // Distinct events at the same tick survive.
        assert_eq!(norm.events()[1].kind, FaultKind::NodeCrash { node: n(2) });
    }

    #[test]
    fn jitter_preserves_per_subject_order() {
        // A tight crash window under heavy jitter: the restart must never
        // land at or before the crash, whatever the draws.
        for seed in 0..50 {
            let plan = FaultPlan::new()
                .crash_for(n(2), MediaTime::from_secs(1), MediaDuration::from_millis(5))
                .jittered(
                    &mut SimRng::seed_from_u64(seed),
                    MediaDuration::from_secs(1),
                );
            let evs = plan.raw_events();
            assert!(
                evs[0].at < evs[1].at,
                "seed {seed}: restart at {:?} not after crash at {:?}",
                evs[1].at,
                evs[0].at
            );
            assert!(plan.validate().is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn rust_literal_is_ready_to_paste() {
        let plan = FaultPlan::new()
            .crash(n(3), MediaTime::from_millis(1500))
            .slow(n(4), MediaTime::from_secs(2), 8);
        let lit = plan.to_rust_literal();
        assert!(lit.starts_with("FaultPlan::new()"));
        assert!(lit.contains(
            ".at(MediaTime::from_micros(1500000), FaultKind::NodeCrash { node: NodeId::new(3) })"
        ));
        assert!(lit.contains("FaultKind::NodeSlow { node: NodeId::new(4), factor: 8 }"));
    }

    #[test]
    fn from_events_round_trips() {
        let plan =
            FaultPlan::new().crash_for(n(1), MediaTime::from_secs(5), MediaDuration::from_secs(2));
        let rebuilt = FaultPlan::from_events(plan.raw_events().to_vec());
        assert_eq!(plan, rebuilt);
    }
}

//! Hermetic replacement for the subset of the `bytes` crate used by the RTP
//! layer: an immutable, cheaply-cloneable `Bytes` with a consuming read
//! cursor (`Buf`), and a growable `BytesMut` with big-endian writers
//! (`BufMut`) that freezes into `Bytes`.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Immutable shared byte buffer with a read offset.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
        }
    }

    /// Borrow a static slice (copied — the stub keeps one representation).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::new(s.to_vec()),
            start: 0,
        }
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the remaining bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "Bytes: advance past end");
        let s = &self.data[self.start..self.start + n];
        self.start += n;
        s
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::new(v),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.len())
    }
}

/// Growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Convert into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Consuming big-endian readers (subset of `bytes::Buf`).
pub trait Buf {
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16;
    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32;
    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64;
}

impl Buf for Bytes {
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().unwrap())
    }
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }
}

/// Appending big-endian writers (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Write one byte.
    fn put_u8(&mut self, v: u8);
    /// Write a big-endian u16.
    fn put_u16(&mut self, v: u16);
    /// Write a big-endian u32.
    fn put_u32(&mut self, v: u32);
    /// Write a big-endian u64.
    fn put_u64(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_readers_writers() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0x0304_0506);
        b.put_u64(0x0708_090A_0B0C_0D0E);
        b.extend_from_slice(&[1, 2, 3]);
        let mut r = b.freeze();
        assert_eq!(r.len(), 18);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x0304_0506);
        assert_eq!(r.get_u64(), 0x0708_090A_0B0C_0D0E);
        assert_eq!(r.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn indexing_and_mutation() {
        let mut b = BytesMut::new();
        b.put_u32(0);
        b[2..4].copy_from_slice(&0xBEEFu16.to_be_bytes());
        let f = b.freeze();
        assert_eq!(f[2], 0xBE);
        assert_eq!(f[3], 0xEF);
    }

    #[test]
    fn clone_shares_and_cursor_is_per_handle() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        a.get_u8();
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
        assert_ne!(a, b);
    }
}

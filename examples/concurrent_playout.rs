//! The paper's §3.1 playout algorithm on real threads:
//!
//! ```text
//! for i = 0 to number of structures E_i
//!     Create a playout thread (i.e. a playout process)
//!     wait until current relative time = t_i
//!     Play incoming stream S_i in nominal rate for duration d_i
//! end
//! ```
//!
//! ```sh
//! cargo run --example concurrent_playout
//! ```
//!
//! Parses the Fig. 2 markup, derives the playout structures `E_i`, and plays
//! the scenario with one thread per stream at 100× speed, printing each
//! thread's scheduled vs. actual start.

use hermes_od::client::concurrent::run_threaded_playout;
use hermes_od::core::{DocumentId, PlayoutSchedule, ServerId};
use hermes_od::hml::{scenario_from_markup, FIGURE2_MARKUP};

fn main() {
    let scenario =
        scenario_from_markup(FIGURE2_MARKUP, DocumentId::new(1), ServerId::new(0)).unwrap();
    let schedule = PlayoutSchedule::from_scenario(&scenario);
    println!(
        "scenario '{}' — {} playout structures E_i:",
        scenario.title,
        schedule.entries.len()
    );
    println!("{}", schedule.timeline_table());

    // 100× speed: the 19 s scenario plays in ~190 ms of wall time.
    println!("spawning one playout thread per stream (100x speed)...\n");
    let records = run_threaded_playout(&schedule, 0.01);

    println!("component  scheduled t_i   actual start    actual end");
    for r in &records {
        println!(
            "{:<10} {:>12}  {:>13}  {:>11}",
            r.component.to_string(),
            r.scheduled_start.to_string(),
            r.actual_start.to_string(),
            r.actual_end.to_string()
        );
    }

    // The synchronized AU_VI pair started together.
    let a1 = records.iter().find(|r| r.component.raw() == 3).unwrap();
    let v = records.iter().find(|r| r.component.raw() == 4).unwrap();
    let pair_skew = (a1.actual_start - v.actual_start).abs();
    println!("\nAU_VI pair start skew: {pair_skew} (scenario-time units)");
}

//! EXP-WINDOW — claim: the media time window (buffer prefill) smooths
//! delay variation inserted by the network, at the cost of startup delay.
//!
//! The disturbance is a periodic near-outage (congestion burst at 90% load)
//! of varying length — the "times of network congestion" the paper's buffer
//! layer targets. Sweep the media time window against the outage length and
//! report startup delay and presentation disruptions (duplicates played +
//! glitches + late-dropped frames). Averaged over three seeds per point.

use hermes_bench::harness::run_seeds;
use hermes_bench::mean_of;
use hermes_bench::{ExpOpts, StreamingParams, Table};
use hermes_core::{MediaDuration, MediaTime};
use hermes_simnet::{CongestionEpoch, CongestionProfile};

/// A periodic outage profile: every `period_ms`, `outage_ms` of 98% load.
fn outages(outage_ms: i64, period_ms: i64, horizon_s: i64) -> CongestionProfile {
    if outage_ms == 0 {
        return CongestionProfile::idle();
    }
    let mut epochs = Vec::new();
    let mut t = 3_000i64; // first outage after the session is established
    while t < horizon_s * 1_000 {
        epochs.push(CongestionEpoch {
            start: MediaTime::from_millis(t),
            end: MediaTime::from_millis(t + outage_ms),
            load: 0.90,
            extra_loss: 0.0,
        });
        t += period_ms;
    }
    CongestionProfile::new(epochs)
}

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let windows_ms = [100i64, 250, 500, 1_000, 2_000, 3_000];
    let outages_ms = [0i64, 250, 450];
    let seeds = opts.seeds(&[5, 6, 7]);
    let mut t = Table::new(vec![
        "window (ms)",
        "outage (ms)",
        "startup (ms)",
        "disruptions",
        "underflow events",
        "frames played",
    ]);
    out.line(
        "workload: 15 s synchronized A/V clip, 4 Mbps access link, a 90%-load\n\
         congestion burst every 4 s (the outage length varies per column)",
    );
    for &w in &windows_ms {
        for &o in &outages_ms {
            let p = StreamingParams {
                time_window: MediaDuration::from_millis(w),
                queue_bytes: 512 << 10,
                congestion: outages(o, 4_000, 40),
                grading: false,
                clip_secs: 15,
                horizon: MediaTime::from_secs(40),
                ..Default::default()
            };
            let runs = run_seeds(&p, &seeds);
            t.row(vec![
                w.to_string(),
                o.to_string(),
                format!("{:.0}", mean_of(&runs, |m| m.startup.as_millis() as f64)),
                format!(
                    "{:.1}",
                    mean_of(&runs, |m| (m.duplicates + m.glitches + m.dropped) as f64)
                ),
                format!("{:.1}", mean_of(&runs, |m| m.underflows as f64)),
                format!("{:.0}", mean_of(&runs, |m| m.frames_played as f64)),
            ]);
        }
    }
    out.table(
        "EXP-WINDOW — media time window vs congestion-burst length (3 seeds)",
        &t,
    );
    out.line(
        "expected shape: startup delay grows linearly with the window; disruptions\n\
         vanish once the window comfortably exceeds the burst (and its queue-drain\n\
         tail) — the paper's smoothing trade-off: the intentional initial delay\n\
         buys immunity to bursts. Note the mid-window hump on long bursts: tiny\n\
         windows recover by overflow-dropping the stale backlog (fewer frames,\n\
         fewer stalls), mid windows replay/drop stale content frame by frame,\n\
         large windows absorb the burst entirely.",
    );
}
